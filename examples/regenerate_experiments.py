#!/usr/bin/env python3
"""Regenerate every experiment table behind EXPERIMENTS.md.

Runs all experiments (E1–E21) at study scale and prints a markdown-ish
report.  Deterministic in its seeds — the randomized studies all route
through :mod:`repro.engine`, so ``--workers N`` fans them out over N
processes with bit-identical output; ``--artifacts DIR`` additionally
persists each sweep's raw per-run JSON.

Run:  python examples/regenerate_experiments.py [--runs N] [--workers N]
"""

import argparse

from repro.engine import ResultStore
from repro.experiments.ablations import pairing_ablation, timeout_ablation
from repro.experiments.examples import (
    run_example1,
    run_example2,
    run_example3,
    run_example4,
)
from repro.experiments.figures import run_decision_matrix, run_fig4
from repro.experiments.flows import format_flow, latency_sweep, measure_commit
from repro.experiments.sweeps import (
    availability_sweep,
    modelcheck,
    reenterability_storm,
    wan_partition_storm,
)
from repro.experiments.vote_study import vote_assignment_study
from repro.experiments.workload_study import heavy_traffic_study, workload_study


def section(title: str) -> None:
    print(f"\n## {title}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=60)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--artifacts", type=str, default=None)
    args = parser.parse_args()
    runs = args.runs
    workers = args.workers
    store = ResultStore(args.artifacts) if args.artifacts else None

    print("# Regenerated experiment report")

    section("E1/E2 — Fig. 1 and Fig. 2 message flows")
    for protocol in ("2pc", "3pc"):
        print(format_flow(measure_commit(protocol, n_sites=5)))

    section("E3 — Example 1: Skeen's protocol blocks every partition")
    v1 = run_example1()
    print(f"matches paper: {v1.matches_paper}")
    print(v1.availability_table)

    section("E8 — Example 2: 3PC terminates inconsistently")
    v2 = run_example2()
    print(
        f"matches paper: {v2.matches_paper}  "
        f"(C={v2.committed_sites}, A={v2.aborted_sites})"
    )

    section("E5 — Fig. 4 derived concurrency sets + impossibility")
    print(run_fig4().format())

    section("E6/E9 — termination decision matrix")
    print(run_decision_matrix().format())

    section("E7 — Example 3: two coordinators (ablation D2)")
    for enforce in (False, True):
        v3 = run_example3(enforce)
        print(
            f"ignore rules {'enforced' if enforce else 'relaxed '}: "
            f"outcome={v3.outcome:<7} atomic={v3.atomic} matches={v3.matches_paper}"
        )

    section("E4 — Example 4: TP1 restores availability")
    v4 = run_example4()
    print(f"matches paper: {v4.matches_paper}")
    print(v4.availability_table)

    section("E10/E12 — Fig. 9 commit latency (n=7, r=2, w=6)")
    for row in latency_sweep(n_sites=7, runs=runs, r=2, w=6):
        print(row.format_row())

    section(f"E11 — availability sweep ({runs} scenarios/protocol)")
    for row in availability_sweep(runs=runs, workers=workers, store=store):
        print(row.format_row())

    section("E13 — reenterability storms")
    for protocol in ("qtp1", "qtp2"):
        print(reenterability_storm(protocol, runs=10, workers=workers).format_row())

    section(f"E14 — Theorem 1 model-check ({runs} schedules/protocol)")
    for protocol in ("2pc", "3pc", "skq", "qtp1", "qtp2", "qtpp"):
        print(modelcheck(protocol, runs=runs, workers=workers).format_row())

    section("A-PAIR / A-TIMEOUT ablations (D1, D4)")
    for r in pairing_ablation():
        print(
            f"{r.commit_protocol} + {r.termination_rule:<18} -> "
            f"{r.outcome:<8} atomic={r.atomic}"
        )
    for row in timeout_ablation(runs=15):
        print(
            f"T-estimate x{row.timeout_scale:<5} violations={row.violations} "
            f"mean-attempts={row.mean_term_attempts:.2f}"
        )

    section("E17 — live workload across a partition episode")
    for row in workload_study(runs=4, workers=workers, store=store):
        print(row.format_row())

    section("E18 — heavy traffic through repeated partition episodes")
    for row in heavy_traffic_study(runs=3, workers=workers, store=store):
        print(row.format_row())

    section("E19 — vote assignment policies")
    for row in vote_assignment_study(runs=30, workers=workers, store=store):
        print(row.format_row())

    section("E21 — WAN partition storm (32 sites, 4 regions)")
    for row in wan_partition_storm(runs=10, workers=workers, store=store):
        print(row.format_row())

    print("\n(done)")


if __name__ == "__main__":
    main()
