#!/usr/bin/env python3
"""The open-loop tail-latency service, end to end.

Every closed-loop experiment asks "what happened to these N
transactions".  A service asks the open-loop question: at a sustained
arrival rate, what do clients experience — tail latency, shed traffic,
sustainable throughput — while partitions come and go.  Three short
demonstrations on the default 9-site service cluster:

1. **One service interval** — sustained arrivals through a mid-service
   partition episode, with per-site admission control and streaming
   p50/p99/p999 latency percentiles.
2. **Protocol comparison** — the same offered stream (same seed, same
   arrival draws) served under 2PC vs the quorum protocols.
3. **Ceiling discovery** — the SLO ramp: step the arrival rate across
   fresh service intervals until the p99 knee or the abort-rate
   threshold trips; the last untripped rate is the installation's
   throughput ceiling.

Run:  python examples/open_loop_service.py
"""

from repro.experiments.service_study import discover_ceiling, run_open_loop_service


def one_interval() -> None:
    print("== 1. One open-loop service interval (9 sites, partition mid-service)")
    result = run_open_loop_service("qtp1", seed=0, rate=1.5, duration=120.0)
    print(f"  {result.format_row()}")
    print(
        f"  offered={result.offered} = admitted({result.admitted}) "
        f"+ backpressure({result.shed_backpressure}) "
        f"+ unreachable({result.shed_unreachable})"
    )
    latency = result.latency
    print(
        f"  latency over {latency['n']:.0f} decided updates: "
        f"p50={latency['p50']:.2f}s p99={latency['p99']:.2f}s "
        f"p999={latency['p999']:.2f}s (max={latency['max']:.2f}s)"
    )


def protocol_comparison() -> None:
    print("== 2. The same offered stream under each commit protocol")
    for protocol in ("2pc", "3pc", "qtp1", "qtp2"):
        result = run_open_loop_service(protocol, seed=0, rate=1.5, duration=120.0)
        print(f"  {result.format_row()}")


def ceiling_discovery() -> None:
    print("== 3. SLO ramp: stepping the arrival rate until the ceiling trips")
    result = discover_ceiling("qtp1", seed=0)
    for step in result.steps:
        print(
            f"  rate={step.rate:<4g} committed={step.committed:<4} "
            f"abort-rate={step.abort_rate:.2f} p99={step.latency.get('p99', 0.0):.2f}s"
        )
    print(f"  ceiling: {result.ceiling}/s (tripped: {result.tripped or 'never'})")


def main() -> None:
    one_interval()
    protocol_comparison()
    ceiling_discovery()


if __name__ == "__main__":
    main()
