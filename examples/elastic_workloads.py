#!/usr/bin/env python3
"""Declarative workloads and elastic membership, end to end.

Three short demonstrations of the `WorkloadSpec` subsystem:

1. **Skew opens contention** — the same heavy-traffic harness under
   uniform vs Zipf item popularity: the skewed stream collides on the
   hot items and the no-wait locking policy shows it immediately.
2. **Read-mostly mixes** — most of the stream rides the read-only
   client-side fast path while the update tail pays the full commit
   protocol.
3. **Elastic join under a storm** — a cluster partitions mid-run, two
   fresh sites join *inside the active partition* (`FailurePlan.join`),
   receive a component-local state transfer, and serve as participants
   of later transactions.

Run:  python examples/elastic_workloads.py
"""

from repro.db.cluster import Cluster
from repro.experiments.workload_scenarios import run_elastic_join
from repro.experiments.workload_study import run_heavy_workload
from repro.replication.catalog import CatalogBuilder
from repro.sim.failures import FailurePlan
from repro.workload.spec import WorkloadSpec


def skew_vs_uniform() -> None:
    print("== 1. Zipf skew vs uniform popularity (same harness, same seed)")
    for label, spec in [
        ("uniform", WorkloadSpec(n_txns=60, mean_spacing=1.2)),
        ("zipf1.6", WorkloadSpec(n_txns=60, mean_spacing=1.2, popularity="zipf", zipf_s=1.6)),
    ]:
        result = run_heavy_workload("qtp1", seed=0, workload=spec)
        print(
            f"  {label:<8} committed={result.committed:<3} "
            f"lock-conflict-aborts={result.client_aborted:<3} "
            f"1SR={result.serializable}"
        )


def read_mostly() -> None:
    print("== 2. A read-mostly mix (80% read-only)")
    spec = WorkloadSpec(n_txns=60, read_fraction=0.8, mean_spacing=1.0)
    result = run_heavy_workload("qtp1", seed=0, workload=spec)
    print(
        f"  reads-committed={result.reads_committed} updates-committed={result.committed} "
        f"client-aborted={result.client_aborted} 1SR={result.serializable}"
    )


def elastic_join() -> None:
    print("== 3. Sites joining through an active partition")
    catalog = (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3], r=2, w=2)
        .replicated_item("y", sites=[2, 3, 4], r=2, w=2)
        .build()
    )
    cluster = Cluster(catalog, protocol="qtp1", seed=0)
    txn = cluster.update(origin=1, writes={"x": 42})
    plan = (
        FailurePlan()
        .partition(5.0, [1, 2], [3, 4])
        .join(6.0, 7, copies={"x": 1}, near=1)  # lands in {1, 2}
        .heal(10.0)
    )
    cluster.arm_failures(plan)
    cluster.run()
    joined = cluster.sites[7]
    print(f"  join traced: {cluster.tracer.where(category='join')[0].detail}")
    print(f"  x at joined site after state transfer: {joined.store.read('x')}")
    print(f"  catalog votes for x now: v={cluster.catalog.v('x')} w={cluster.catalog.w('x')}")
    follow_up = cluster.update(origin=1, writes={"x": 43})
    cluster.run()
    print(
        f"  follow-up txn participants include joined site: "
        f"{7 in follow_up.participants} "
        f"(outcome={cluster.outcome(follow_up.txn).outcome})"
    )
    print(f"  storm summary: {run_elastic_join('qtp1', seed=0)}")


def main() -> None:
    skew_vs_uniform()
    read_mostly()
    elastic_join()


if __name__ == "__main__":
    main()
