#!/usr/bin/env python3
"""A parallel experiment sweep in three lines.

The engine (``repro.engine``) turns any module-level function taking a
``seed=`` keyword into a fan-out-able sweep: declare the grid, pick a
worker count, aggregate.  Per-run seeds come from the spec — never from
execution order — so the results below are bit-identical at every
``workers`` value (try changing it).

Run:  python examples/parallel_sweep.py
"""

from repro.engine import ResultStore, SweepSpec, fraction_of, group_by, mean_of, run_sweep
from repro.experiments.sweeps import availability_run, modelcheck_run


def main() -> None:
    # --- the three-line version -----------------------------------------
    spec = SweepSpec("demo-e11", availability_run, grid={"protocol": ["skq", "qtp1"]}, runs=30, seeding="offset")
    outcome = run_sweep(spec, workers=4)
    print({p: round(mean_of(rows, lambda v: v[0]), 3) for p, rows in group_by(outcome.results, "protocol").items()})

    # --- with persistence and aggregation helpers -----------------------
    # Theorem-1 model-check across two protocol families, 50 schedules
    # each, fanned out and saved as a schema-versioned JSON artifact.
    store = ResultStore("results")
    spec = SweepSpec(
        "demo-modelcheck",
        modelcheck_run,
        grid={"protocol": ["qtp1", "3pc"]},
        runs=50,
        seeding="offset",
    )
    outcome = run_sweep(spec, workers=4, store=store)
    for protocol, rows in group_by(outcome.results, "protocol").items():
        atomic = fraction_of(rows, lambda atomic: atomic)
        print(f"{protocol:<5} atomic in {atomic:6.1%} of runs")
    print(f"\nartifact: {store.path_for('demo-modelcheck')}")

    # study-level drivers take the same workers= argument:
    #   availability_sweep(runs=200, workers=8)
    #   modelcheck("qtp1", runs=1000, workers=8)
    #   wan_partition_storm(runs=50, workers=8)


if __name__ == "__main__":
    main()
