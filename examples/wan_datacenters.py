#!/usr/bin/env python3
"""Three datacenters on a WAN: where replica placement meets quorums.

Nine sites in three datacenters (0.1 time units apart inside a DC,
1.0 across).  Two placements of the same item are compared under the
paper's protocol 1:

* **spread** — one copy per DC triple, quorums span DCs: decisions pay
  WAN latency, but any single DC can be lost without losing the item.
* **local** — all copies in DC A with quorums inside it: commits run at
  LAN speed, but isolating DC A takes the item down everywhere else.

Then a DC gets cut off mid-commit and the termination protocol cleans
up — in the spread placement the surviving majority keeps the item
readable and writable.

Run:  python examples/wan_datacenters.py
"""

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.net.delays import GroupedDelay

DC_A, DC_B, DC_C = [1, 2, 3], [4, 5, 6], [7, 8, 9]
GROUPS = {s: 0 for s in DC_A} | {s: 1 for s in DC_B} | {s: 2 for s in DC_C}


def delay_model():
    return GroupedDelay(GROUPS, intra=0.1, inter=1.0, jitter=0.1)


ALL_SITES = DC_A + DC_B + DC_C


def commit_latency(catalog, origin) -> float:
    cluster = Cluster(
        catalog, protocol="qtp1", delay_model=delay_model(), seed=5, extra_sites=ALL_SITES
    )
    txn = cluster.update(origin=origin, writes={"ledger": 1})
    cluster.run()
    decision = cluster.tracer.where(category="coord-decision", txn=txn.txn)[0]
    return decision.time


def main() -> None:
    spread = (
        CatalogBuilder()
        .replicated_item("ledger", sites=[1, 4, 7], r=2, w=2)
        .build()
    )
    local = (
        CatalogBuilder()
        .replicated_item("ledger", sites=DC_A, r=2, w=2)
        .build()
    )

    print("failure-free commit latency (virtual time, T = worst-case WAN delay):")
    print(f"  spread placement (one copy per DC): {commit_latency(spread, 1):6.2f}")
    print(f"  local placement (all copies in A) : {commit_latency(local, 1):6.2f}")

    print("\nnow DC C is cut off while a spread-placement commit is in flight:")
    cluster = Cluster(
        spread, protocol="qtp1", delay_model=delay_model(), seed=5, extra_sites=ALL_SITES
    )
    txn = cluster.update(origin=1, writes={"ledger": 2})
    cluster.arm_failures(FailurePlan().partition(1.5, DC_A + DC_B, DC_C))
    cluster.run()
    report = cluster.outcome(txn.txn)
    print(f"  outcome: {report.outcome} (atomic={report.atomic})")
    row = cluster.availability().row(frozenset(DC_A + DC_B), "ledger")
    print(f"  ledger in A+B: readable={row.readable} writable={row.writable} "
          f"({row.usable_votes}/{row.total_votes} votes)")
    row_c = cluster.availability().row(frozenset(DC_C), "ledger")
    print(f"  ledger in C  : readable={row_c.readable} writable={row_c.writable}")
    print("\nthe spread placement pays ~WAN latency per commit but survives the "
          "loss of any one datacenter with full read/write availability.")


if __name__ == "__main__":
    main()
