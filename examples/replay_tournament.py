#!/usr/bin/env python3
"""Record one heavy-traffic run, then ask "what if?".

Records the full op + failure stream of an E18 run under the paper's
QTP protocol, fixed-point checks the replay (same config → identical
deterministic counters), and then replays the *same* recorded stream
across the default what-if matrix: classic 2PC, 3PC, and a
read-one-write-all quorum assignment.

Run:  python examples/replay_tournament.py [--seed N] [--txns N]
"""

import argparse

from repro.replay import (
    fixed_point_ok,
    format_diff_table,
    record_heavy_workload,
    replay_trace,
    run_tournament,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0, help="recorded run seed")
    parser.add_argument("--txns", type=int, default=60, help="stream length")
    args = parser.parse_args()

    print("=" * 72)
    print(f"recording E18 heavy traffic: qtp1, seed={args.seed}, {args.txns} txns")
    print("=" * 72)
    trace = record_heavy_workload("qtp1", seed=args.seed, n_txns=args.txns)
    print(
        f"harvested {len(trace.ops)} ops, {len(trace.updates)} updates, "
        f"{len(trace.actions)} fault actions"
    )

    row = replay_trace(trace)
    verdict = "holds" if fixed_point_ok(trace, row) else "VIOLATED"
    print(f"record→replay fixed point: {verdict}")

    print()
    print("=" * 72)
    print("tournament: one recorded stream, four configurations")
    print("=" * 72)
    print(format_diff_table(run_tournament(trace)))


if __name__ == "__main__":
    main()
