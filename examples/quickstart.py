#!/usr/bin/env python3
"""Quickstart: a replicated item, one transaction, one partition.

Builds a four-site database with one item under Gifford voting, commits
an update through the paper's quorum commit protocol 1, then replays the
same update with a coordinator crash and partition to show the
termination protocol freeing the majority side.

Run:  python examples/quickstart.py
"""

from repro import CatalogBuilder, Cluster, FailurePlan


def main() -> None:
    # --- a replicated database -----------------------------------------
    # item x has one copy at each of sites 1-4 (one vote per copy);
    # reads need r=2 votes, writes w=3  (r+w>4 and 2w>4 hold).
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()

    # --- the happy path -------------------------------------------------
    cluster = Cluster(catalog, protocol="qtp1", seed=1)
    txn = cluster.update(origin=1, writes={"x": 42})
    cluster.run()
    report = cluster.outcome(txn.txn)
    print("happy path :", report.describe())
    print("read x     :", cluster.read(2, "x"))

    # --- coordinator crash + partition mid-commit -----------------------
    cluster = Cluster(catalog, protocol="qtp1", seed=1)
    txn = cluster.update(origin=1, writes={"x": 99})
    plan = (
        FailurePlan()
        .crash(2.5, 1)                 # coordinator dies after the votes
        .partition(2.5, [2, 3], [4])   # and the survivors split
    )
    cluster.arm_failures(plan)
    cluster.run()
    report = cluster.outcome(txn.txn)
    print("\nafter crash + partition:", report.describe())
    print("local states:", cluster.states(txn.txn))

    # sites 2,3 hold r(x)=2 votes: termination protocol 1 aborts there,
    # releasing the locks — x is readable again in that partition.
    print("\navailability by partition:")
    print(cluster.availability().describe())
    print("\nread x from site 2:", cluster.read(2, "x"))


if __name__ == "__main__":
    main()
