#!/usr/bin/env python3
"""Walk through the paper's Examples 1-4, printing each verdict.

Each example replays the exact scenario from the paper's text (the
Fig. 3 / Fig. 7 databases and failures) and prints the claim it makes
next to what the simulation measured.

Run:  python examples/paper_examples.py
"""

from repro.experiments.examples import (
    run_example1,
    run_example2,
    run_example3,
    run_example4,
)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("EXAMPLE 1 - Skeen's site-quorum protocol blocks every partition")
    v1 = run_example1()
    print(f"paper: TR blocked in all partitions       -> {v1.blocked_in_all_partitions}")
    print(f"paper: x unreadable in G1 despite r-votes -> {not v1.x_readable_in_g1}")
    print(f"paper: y unwritable in G3 despite w-votes -> {not v1.y_writable_in_g3}")
    print(f"matches paper: {v1.matches_paper}")
    print("\n" + v1.availability_table)

    banner("EXAMPLE 2 - 3PC termination is inconsistent under partitioning")
    v2 = run_example2()
    print(f"G2 committed TR : sites {v2.committed_sites}")
    print(f"G1, G3 aborted  : sites {v2.aborted_sites}")
    print(f"outcome = {v2.outcome}  (atomicity violated)")
    print(f"matches paper: {v2.matches_paper}")

    banner("EXAMPLE 3 - two coordinators and the PC/PA ignore rules")
    broken = run_example3(enforce_ignore_rules=False)
    enforced = run_example3(enforce_ignore_rules=True)
    print(f"rules relaxed : outcome={broken.outcome:<7} atomic={broken.atomic}")
    print(f"rules enforced: outcome={enforced.outcome:<7} atomic={enforced.atomic} "
          f"(ignored {enforced.ignored_messages} prepare message(s))")
    print(f"matches paper: {broken.matches_paper and enforced.matches_paper}")

    banner("EXAMPLE 4 - termination protocol 1 restores availability")
    v4 = run_example4()
    print(f"TR aborted in G1: {v4.g1_aborted}   in G3: {v4.g3_aborted}   "
          f"G2 still blocked: {v4.g2_blocked}")
    print(f"x now readable in G1: {v4.x_readable_in_g1} "
          f"(writable: {v4.x_writable_in_g1} - site 1 is down)")
    print(f"y now updatable in G3: {v4.y_writable_in_g3}")
    print(f"matches paper: {v4.matches_paper}")
    print("\n" + v4.availability_table)


if __name__ == "__main__":
    main()
