#!/usr/bin/env python3
"""Watch termination protocol 1 work, message by message.

Renders the full message sequence chart of a run where the coordinator
crashes mid-commit and the network splits: votes, the partial prepare
round, the crash, elections in each partition, the state polls, the
PREPARE-TO-ABORT round, and the final decisions.

Run:  python examples/termination_walkthrough.py
"""

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.sim.msc import message_sequence_chart


def main() -> None:
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    cluster = Cluster(catalog, protocol="qtp1")
    txn = cluster.update(origin=1, writes={"x": 42})
    # coordinator dies after collecting votes; sites {2,3} split from {4}
    cluster.arm_failures(FailurePlan().crash(2.5, 1).partition(2.5, [2, 3], [4]))
    cluster.run()

    print("scenario: coordinator crash at t=2.5 + partition {2,3} | {4}")
    print("protocol: qtp1 (commit protocol 1 + termination protocol 1)")
    print("=" * 64)
    print(message_sequence_chart(cluster.tracer, txn.txn))
    print("=" * 64)
    report = cluster.outcome(txn.txn)
    print(f"outcome: {report.describe()}")
    print(
        "\nsites 2,3 hold r(x)=2 votes, so their partition runs the\n"
        "PREPARE-TO-ABORT round and frees x; site 4 alone has neither\n"
        "quorum and blocks until connectivity returns."
    )


if __name__ == "__main__":
    main()
