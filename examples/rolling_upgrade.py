#!/usr/bin/env python3
"""Graceful degradation, end to end: upgrades, crowds, gray failures.

Fail-stop faults (crashes, partitions) are the easy case — something
is *down* and the counters say so.  Real installations mostly live in
the gray zone: planned membership churn, load surges, and sites that
are slow rather than dead.  Three short demonstrations:

1. **Rolling upgrade** — waves of sites gracefully leave (drain,
   hand their quorum votes off, deregister) and rejoin upgraded,
   under live closed-loop traffic with a retrying client.
2. **Flash crowd** — an open-loop service whose arrival rate spikes
   6x mid-run while the adaptive admission controller narrows the
   per-site window to protect the tail.
3. **Gray failure** — one site serves 6x slow and one link flaps,
   but nothing is ever down: the damage shows up only as timed-out
   decisions and a fatter latency tail.

Run:  python examples/rolling_upgrade.py
"""

from repro.experiments.resilience_study import (
    run_flash_crowd,
    run_gray_failure,
    run_rolling_upgrade,
)


def rolling_upgrade() -> None:
    print("== 1. Rolling upgrade: 3 waves of leave -> upgrade -> rejoin")
    for protocol in ("qtp1", "qtp2"):
        r = run_rolling_upgrade(protocol, seed=0)
        print(
            f"  {protocol:<5} committed={r['committed']:<4} "
            f"waves={r['leaves_applied']}/{r['joins_applied']} "
            f"restored={r['sites_restored']} retries={r['retry_attempts']} "
            f"serializable={r['serializable']}"
        )


def flash_crowd() -> None:
    print("== 2. Flash crowd: 6x surge through the adaptive admission window")
    r = run_flash_crowd("qtp2", seed=0)
    print(
        f"  offered={r['offered']} admitted={r['admitted']} "
        f"shed={r['shed_backpressure']}"
    )
    print(
        f"  controller: narrowed x{r['window_narrowed']} "
        f"widened x{r['window_widened']} final window={r['window_final']}"
    )


def gray_failure() -> None:
    print("== 3. Gray failure: slow site + flapping link, nothing ever down")
    quiet = run_gray_failure("qtp2", seed=0, factor=1.0)
    gray = run_gray_failure("qtp2", seed=0, factor=6.0)
    print(
        f"  factor=1 committed={quiet['committed']:<4} "
        f"protocol_aborted={quiet['protocol_aborted']}"
    )
    print(
        f"  factor=6 committed={gray['committed']:<4} "
        f"protocol_aborted={gray['protocol_aborted']} "
        f"(unreachable-shed unchanged: {gray['shed_unreachable']})"
    )


def main() -> None:
    rolling_upgrade()
    flash_crowd()
    gray_failure()


if __name__ == "__main__":
    main()
