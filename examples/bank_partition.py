#!/usr/bin/env python3
"""A replicated bank ledger riding out a messy network incident.

Domain scenario: six sites replicate two account balances under
Gifford voting (r=2, w=5).  A transfer is in flight when the
coordinator crashes and the network splits into a small fragment
{2, 3} and a large one {4, 5, 6}.  The same story runs under 2PC,
Skeen's site-quorum protocol [16] and the paper's protocol 1, and the
script reports which fragment can still serve which account:

* 2PC    — both fragments blocked; every teller frozen.
* [16]   — the large fragment reaches its site-vote abort quorum and
           unblocks; the small one (2 of 6 site votes) stays frozen.
* QTP1   — *both* fragments hold r=2 data-item votes, so termination
           protocol 1 aborts the transfer everywhere reachable and
           every teller can read again.

Run:  python examples/bank_partition.py
"""

from repro import CatalogBuilder, Cluster, FailurePlan, QuorumUnreachableError

SITES = [1, 2, 3, 4, 5, 6]
SMALL, LARGE = [2, 3], [4, 5, 6]


def build_catalog():
    return (
        CatalogBuilder()
        .replicated_item("alice", sites=SITES, r=2, w=5)
        .replicated_item("bob", sites=SITES, r=2, w=5)
        .build()
    )


def teller_read(cluster, site, account) -> str:
    try:
        value = cluster.read(site, account).value
        return f"reads {account} = {value}"
    except QuorumUnreachableError as exc:
        return f"FROZEN ({exc.gathered}/{exc.needed} votes for {account})"


def run_story(protocol: str) -> None:
    cluster = Cluster(build_catalog(), protocol=protocol, seed=11)

    # establish balances, then start the doomed transfer
    cluster.update(origin=1, writes={"alice": 1000, "bob": 500})
    cluster.run()
    t0 = cluster.scheduler.now
    transfer = cluster.update(origin=1, writes={"alice": 900, "bob": 600})
    incident = (
        FailurePlan()
        .crash(t0 + 1.5, 1)                      # coordinator dies mid-vote
        .partition(t0 + 1.5, [1] + SMALL, LARGE)  # and the network splits
    )
    cluster.arm_failures(incident)
    cluster.run()

    report = cluster.outcome(transfer.txn)
    print(f"\n--- {protocol} ---")
    print(f"transfer outcome: {report.outcome}"
          + (f" (still blocked at sites {report.blocked_sites})" if report.blocked_sites else ""))
    print(f"teller at site 2 (small fragment): {teller_read(cluster, 2, 'alice')}")
    print(f"teller at site 5 (large fragment): {teller_read(cluster, 5, 'alice')}")


def main() -> None:
    print("incident: coordinator crash + split {2,3} | {4,5,6} during a transfer")
    for protocol in ("2pc", "skq", "qtp1"):
        run_story(protocol)
    print(
        "\nThe gradient is the paper's point: site-vote quorums [16] free only\n"
        "fragments holding a site majority-ish share, while the paper's\n"
        "data-item-vote termination frees every fragment that could legally\n"
        "read the data anyway."
    )


if __name__ == "__main__":
    main()
