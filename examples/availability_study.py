#!/usr/bin/env python3
"""The quantitative study: availability, blocking and latency.

Regenerates the library's three comparison tables (experiments E11 and
E12 plus the Fig. 4 analysis of E5) at study scale.  This is the
script behind EXPERIMENTS.md's measured numbers.

Run:  python examples/availability_study.py [--runs N]
"""

import argparse

from repro.experiments.figures import run_decision_matrix, run_fig4
from repro.experiments.flows import latency_sweep
from repro.experiments.sweeps import availability_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=100, help="samples per protocol")
    args = parser.parse_args()

    print("=" * 72)
    print(f"E11  post-failure availability over {args.runs} random fault scenarios")
    print("     (identical scenarios per protocol; writeset items only)")
    print("=" * 72)
    for row in availability_sweep(runs=args.runs):
        print(row.format_row())

    print()
    print("=" * 72)
    print("E12  commit decision latency, jittered delays (n=7, r=2, w=6)")
    print("=" * 72)
    for row in latency_sweep(n_sites=7, runs=args.runs, r=2, w=6):
        print(row.format_row())

    print()
    print("=" * 72)
    print("E5   Fig. 4 - derived concurrency sets and the impossibility chain")
    print("=" * 72)
    print(run_fig4().format())

    print()
    print("=" * 72)
    print("E6/E9  termination decision matrix (Fig. 5 vs Fig. 8 vs [16])")
    print("=" * 72)
    print(run_decision_matrix().format())


if __name__ == "__main__":
    main()
