"""Data availability accounting (S17) — the paper's target metric.

Availability of a data item in a partition is reduced by two factors
(paper §1):

1. **blocking** — copies locked by a transaction the termination
   protocol left blocked are unusable;
2. **the voting strategy** — even with unlocked copies, the partition
   needs ``r(x)`` of the item's votes to read and ``w(x)`` to write.

:func:`availability_snapshot` evaluates both factors for every
(partition component, item) pair at one instant of a run, which is how
the library turns the paper's Example 1 / Example 4 prose into
numbers: after Skeen's protocol blocks TR everywhere, x is unreadable
in G1; after termination protocol 1 aborts TR in G1, x becomes
readable there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrency.locks import LockManager
    from repro.net.partitions import PartitionView
    from repro.replication.catalog import ReplicaCatalog


@dataclass(frozen=True)
class ItemAvailability:
    """Availability of one item in one partition component."""

    component: frozenset[int]
    item: str
    usable_votes: int
    total_votes: int
    readable: bool
    writable: bool
    blocked_sites: tuple[int, ...]

    def describe(self) -> str:
        """One aligned line: component, item, votes, R/W flags."""
        comp = "{" + ",".join(map(str, sorted(self.component))) + "}"
        flags = ("R" if self.readable else "-") + ("W" if self.writable else "-")
        return (
            f"{comp:<14} {self.item:<6} votes {self.usable_votes}/{self.total_votes}"
            f"  [{flags}]"
            + (f"  blocked at {list(self.blocked_sites)}" if self.blocked_sites else "")
        )


@dataclass
class AvailabilityReport:
    """Per-(component, item) availability plus aggregates."""

    rows: list[ItemAvailability]

    def row(self, component: frozenset[int] | set[int], item: str) -> ItemAvailability:
        """The row for one (component, item) pair."""
        component = frozenset(component)
        for row in self.rows:
            if row.component == component and row.item == item:
                return row
        raise KeyError(f"no availability row for {sorted(component)} / {item!r}")

    @property
    def readable_fraction(self) -> float:
        """Fraction of (component, item) pairs that are readable."""
        if not self.rows:
            return 0.0
        return sum(r.readable for r in self.rows) / len(self.rows)

    @property
    def writable_fraction(self) -> float:
        """Fraction of (component, item) pairs that are writable."""
        if not self.rows:
            return 0.0
        return sum(r.writable for r in self.rows) / len(self.rows)

    def describe(self) -> str:
        """Header plus one line per (component, item) row."""
        header = (
            f"availability: {self.readable_fraction:.0%} readable, "
            f"{self.writable_fraction:.0%} writable over {len(self.rows)} "
            "(partition, item) pairs"
        )
        return "\n".join([header] + [row.describe() for row in self.rows])


def availability_snapshot(
    catalog: "ReplicaCatalog",
    partition: "PartitionView",
    lock_managers: Mapping[int, "LockManager"],
    blocked_txns: Mapping[int, set[str]],
    active_sites: set[int] | None = None,
) -> AvailabilityReport:
    """Evaluate both availability factors for every (component, item).

    Args:
        catalog: the replica catalog (placement + quorums).
        partition: current connectivity.
        lock_managers: per-site lock managers.
        blocked_txns: per-site set of transaction ids currently blocked
            there (locks held by these make a copy unusable).
        active_sites: sites currently up; defaults to all.

    Returns:
        An :class:`AvailabilityReport`; one row per (component, item).
    """
    if active_sites is None:
        active_sites = set(partition.sites)
    rows = []
    for component in partition.components:
        live = sorted(set(component) & active_sites)
        for item in catalog.item_names:
            hosting = [s for s in live if s in catalog.item(item).copies]
            blocked = tuple(
                sorted(
                    s
                    for s in hosting
                    if s in lock_managers
                    and lock_managers[s].is_locked(item, blocked_txns.get(s, set()))
                )
            )
            usable = [s for s in hosting if s not in blocked]
            usable_votes = catalog.votes(item, usable)
            rows.append(
                ItemAvailability(
                    component=frozenset(component),
                    item=item,
                    usable_votes=usable_votes,
                    total_votes=catalog.v(item),
                    readable=usable_votes >= catalog.r(item),
                    writable=usable_votes >= catalog.w(item),
                    blocked_sites=blocked,
                )
            )
    return AvailabilityReport(rows)
