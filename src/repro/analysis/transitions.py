"""Observed-transition extraction — Fig. 6 checked against real runs.

The state-machine module declares the legal transition relation; this
module closes the loop by extracting every transition that *actually
occurred* in a run (sites trace each state change) and comparing the
observed set against Fig. 6.  The benchmark for experiment E18 runs
the whole model-check corpus through this: the union of observed
transitions must be a subset of the legal relation and must cover the
interesting edges (W->PC, W->PA, PC->C, PA->A, the early-commit W->C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.states import (
    FORBIDDEN_TRANSITIONS,
    LEGAL_TRANSITIONS,
    TxnState,
)
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class TransitionAudit:
    """Observed transitions of one or many runs vs the Fig. 6 relation."""

    observed: frozenset[tuple[TxnState, TxnState]]
    illegal: frozenset[tuple[TxnState, TxnState]]

    @property
    def conforms(self) -> bool:
        """True when nothing outside Fig. 6 was observed."""
        return not self.illegal

    def covers(self, *edges: tuple[TxnState, TxnState]) -> bool:
        """Did the corpus exercise all the given edges?"""
        return all(edge in self.observed for edge in edges)

    def format_table(self) -> str:
        """One line per observed transition, flagging illegal ones."""
        lines = ["observed transitions (vs Fig. 6):"]
        for src, dst in sorted(self.observed, key=lambda e: (e[0].name, e[1].name)):
            marker = "ILLEGAL" if (src, dst) in self.illegal else "ok"
            lines.append(f"  {src.name:>2} -> {dst.name:<2}  {marker}")
        return "\n".join(lines)


def observed_transitions(tracer: Tracer, txn: str | None = None) -> set[tuple[TxnState, TxnState]]:
    """Every (src, dst) state transition recorded in a trace."""
    out = set()
    for rec in tracer.where(category="state", txn=txn):
        out.add((TxnState[rec.detail["src"]], TxnState[rec.detail["dst"]]))
    return out


def audit_transitions(tracers: list[Tracer]) -> TransitionAudit:
    """Union the observed transitions of many runs and audit them."""
    observed: set[tuple[TxnState, TxnState]] = set()
    for tracer in tracers:
        observed |= observed_transitions(tracer)
    illegal = {
        edge
        for edge in observed
        if edge not in LEGAL_TRANSITIONS and edge[0] != edge[1]
    }
    # sanity: nothing can be both observed-legal and forbidden
    assert not (observed - illegal) & FORBIDDEN_TRANSITIONS
    return TransitionAudit(frozenset(observed), frozenset(illegal))
