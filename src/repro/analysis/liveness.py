"""Liveness metrics: how fast does termination actually terminate?

Safety (Theorem 1) says nothing about *when* a partition decides.  The
paper's §5 argues protocol 2's commit runs faster; operators also care
how long an in-doubt transaction holds its locks once failures strike.
This module extracts those times from the trace:

* **decision latency** — virtual time from ``begin_commit`` to the
  coordinator's decision (failure-free performance; experiment E12);
* **termination latency** — virtual time from the first fault to the
  last decision among live participants (how long blocking lasted in
  partitions that could decide at all);
* **attempt counts** — elections and termination phase-1 polls, a
  proxy for the message cost of re-entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.trace import Tracer


@dataclass(frozen=True)
class TerminationTimeline:
    """Liveness summary for one transaction in one run."""

    txn: str
    begin_time: float
    first_fault_time: float
    last_decision_time: float
    elections: int
    term_attempts: int

    @property
    def decision_latency(self) -> float:
        """begin -> last decision (NaN when nothing ever decided)."""
        return self.last_decision_time - self.begin_time

    @property
    def termination_latency(self) -> float:
        """first fault -> last decision; NaN without fault or decision."""
        return self.last_decision_time - self.first_fault_time

    @property
    def ever_decided(self) -> bool:
        """True when at least one participant decided."""
        return not math.isnan(self.last_decision_time)


def termination_timeline(tracer: Tracer, txn: str) -> TerminationTimeline:
    """Extract the liveness timeline of one transaction from a trace."""
    begins = tracer.where(category="coord-begin", txn=txn)
    begin_time = begins[0].time if begins else 0.0
    # two indexed category lookups instead of one full-trace scan
    faults = [
        r.time
        for category in ("crash", "partition")
        for r in tracer.where(category=category)
    ]
    first_fault = min(faults) if faults else math.nan
    decisions = tracer.where(category="decision", txn=txn)
    last_decision = max((r.time for r in decisions), default=math.nan)
    return TerminationTimeline(
        txn=txn,
        begin_time=begin_time,
        first_fault_time=first_fault,
        last_decision_time=last_decision,
        elections=tracer.count("election", txn=txn),
        term_attempts=tracer.count("term-phase1", txn=txn),
    )
