"""Atomic-commitment checking over run traces (S18).

The checker reads the flight recorder, never protocol internals, so it
holds for any engine — including the deliberately broken variants used
in the counterexample experiments, which is the point: Examples 2 and
3 are *demonstrated* by this checker reporting violations.

Checked properties:

* **atomicity** — the commit set and abort set of sites are never both
  non-empty, and no site records conflicting decisions;
* **Fig. 6 conformance** — no illegal state transition was traced
  (in particular no PC <-> PA move);
* **Lemmas 1 and 2** — every decision after the first agrees with the
  first (the per-transaction form of the two lemmas: later terminators
  either match the first terminator or stay blocked).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import Tracer


@dataclass
class ConsistencyReport:
    """Verdict for one transaction in one run."""

    txn: str
    committed_sites: list[int] = field(default_factory=list)
    aborted_sites: list[int] = field(default_factory=list)
    undecided_sites: list[int] = field(default_factory=list)
    blocked_sites: list[int] = field(default_factory=list)
    conflicts: int = 0
    illegal_transitions: int = 0

    @property
    def atomic(self) -> bool:
        """True when no atomicity violation was observed."""
        mixed = bool(self.committed_sites) and bool(self.aborted_sites)
        return not mixed and self.conflicts == 0

    @property
    def outcome(self) -> str:
        """"commit" / "abort" / "blocked" / "mixed" summary."""
        if self.committed_sites and self.aborted_sites:
            return "mixed"
        if self.committed_sites:
            return "commit"
        if self.aborted_sites:
            return "abort"
        return "blocked"

    @property
    def fully_terminated(self) -> bool:
        """True when every participant reached a decision."""
        return not self.undecided_sites

    def describe(self) -> str:
        """One-line human-readable verdict."""
        return (
            f"{self.txn}: outcome={self.outcome} atomic={self.atomic} "
            f"C={self.committed_sites} A={self.aborted_sites} "
            f"undecided={self.undecided_sites} blocked={self.blocked_sites} "
            f"conflicts={self.conflicts} illegal={self.illegal_transitions}"
        )


def check_atomicity(
    tracer: Tracer,
    txn: str,
    participants: list[int],
) -> ConsistencyReport:
    """Build the consistency verdict for one transaction.

    Args:
        tracer: the run's trace.
        txn: transaction to check.
        participants: the transaction's participant sites (undecided =
            participants without a decision record).
    """
    decisions: dict[int, str] = {}
    conflicts = 0
    for rec in tracer.where(category="decision", txn=txn):
        prior = decisions.get(rec.site)
        outcome = rec.detail["outcome"]
        if prior is not None and prior != outcome:
            conflicts += 1
        decisions.setdefault(rec.site, outcome)
    conflicts += tracer.count("decision-conflict", txn=txn)
    illegal = tracer.count("illegal-transition", txn=txn)
    committed = sorted(s for s, o in decisions.items() if o == "commit" and s in participants)
    aborted = sorted(s for s, o in decisions.items() if o == "abort" and s in participants)
    undecided = sorted(s for s in participants if s not in decisions)
    blocked = sorted(
        {rec.site for rec in tracer.where(category="blocked", txn=txn)} & set(undecided)
    )
    return ConsistencyReport(
        txn=txn,
        committed_sites=committed,
        aborted_sites=aborted,
        undecided_sites=undecided,
        blocked_sites=blocked,
        conflicts=conflicts,
        illegal_transitions=illegal,
    )


def first_decision_consistency(tracer: Tracer, txn: str) -> bool:
    """The Lemma 1/2 property: all decisions agree with the first one."""
    records = tracer.where(category="decision", txn=txn)
    if not records:
        return True
    first = records[0].detail["outcome"]
    return all(rec.detail["outcome"] == first for rec in records)
