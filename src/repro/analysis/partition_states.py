"""Partition-state theory of Fig. 4 — computed, not transcribed (S16).

The paper's §2 argument proceeds from a small taxonomy: when a commit
procedure is interrupted, each partition's *partition state* (the set
of local states of its active participants) falls into exactly one of
six classes PS1–PS6, and each class has a *concurrency set* — the
classes that other partitions may simultaneously occupy.

This module reproduces the taxonomy and then **derives** the
concurrency sets by enumerating the global states reachable under an
interrupted three-phase commit, instead of copying Fig. 4's table.
The test suite asserts the derived sets match the paper's, and the
benchmark for experiment E5 prints the derived table next to the
paper's rows.

Finally, :func:`impossibility_argument` mechanizes §2's negative
result: no termination protocol working with any commit protocol can
guarantee that every partition holding enough votes for some written
item terminates the transaction.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.protocols.states import TxnState


class PartitionState(enum.Enum):
    """The six mutually-exclusive partition states of Fig. 4."""

    PS1 = "at least one participant in Q, none in A"
    PS2 = "all participants in W"
    PS3 = "at least one participant in A"
    PS4 = "some participants in PC, some in W"
    PS5 = "all participants in PC"
    PS6 = "at least one participant in C"

    def __str__(self) -> str:
        return self.name


def classify_partition(states: list[TxnState]) -> PartitionState:
    """Classify a non-empty multiset of local states per Fig. 4.

    Classification order makes the classes exclusive and exhaustive for
    the 3PC state alphabet {Q, W, PC, A, C}: terminal evidence first
    (C, then A), then initial evidence (Q), then the PC/W splits.

    Raises:
        ValueError: for an empty partition or a PA state — Fig. 4
            predates the PA state; it describes the situation *any*
            commit protocol leaves behind, i.e. 3PC's alphabet.
    """
    if not states:
        raise ValueError("a partition state needs at least one participant")
    present = set(states)
    if TxnState.PA in present:
        raise ValueError("Fig. 4 classifies 3PC states; PA is out of alphabet")
    if TxnState.C in present:
        return PartitionState.PS6
    if TxnState.A in present:
        return PartitionState.PS3
    if TxnState.Q in present:
        return PartitionState.PS1
    if present == {TxnState.W}:
        return PartitionState.PS2
    if present == {TxnState.PC}:
        return PartitionState.PS5
    return PartitionState.PS4  # PC mixed with W


def reachable_global_states(n_sites: int) -> list[tuple[TxnState, ...]]:
    """Global participant-state vectors reachable under interrupted 3PC.

    The reachable set, derived from the 3PC flow (Fig. 2):

    * **voting era** — every site in {Q, W, A}: votes are still being
      cast, or the coordinator aborted / a site voted no (A can coexist
      with Q and W).
    * **prepared era** — every site in {W, PC, C} with at least one
      site past W: prepare requires a unanimous yes (so no Q, no A),
      and the coordinator may command commit while some sites' PREPARE
      messages are still lost in flight (so W can coexist with C).

    The two eras overlap in the all-W vector.
    """
    voting_alphabet = (TxnState.Q, TxnState.W, TxnState.A)
    prepared_alphabet = (TxnState.W, TxnState.PC, TxnState.C)
    reachable: set[tuple[TxnState, ...]] = set()
    for vector in itertools.product(voting_alphabet, repeat=n_sites):
        reachable.add(vector)
    for vector in itertools.product(prepared_alphabet, repeat=n_sites):
        reachable.add(vector)
    return sorted(reachable, key=lambda v: [s.name for s in v])


def concurrency_sets(n_sites: int = 5) -> dict[PartitionState, set[PartitionState]]:
    """Derive C(PS) for every partition state by enumeration.

    For every reachable global vector and every two-way split of the
    sites into non-empty groups, classify both groups; each observed
    pair (X, Y) contributes Y to C(X) and X to C(Y).

    ``n_sites = 5`` is enough for the table to stabilize: every class
    needs at most two witnesses per group (e.g. PS4 needs a PC and a W)
    and there are two groups.
    """
    sets: dict[PartitionState, set[PartitionState]] = {ps: set() for ps in PartitionState}
    sites = range(n_sites)
    for vector in reachable_global_states(n_sites):
        for r in range(1, n_sites):
            for group in itertools.combinations(sites, r):
                inside = [vector[i] for i in group]
                outside = [vector[i] for i in sites if i not in group]
                ps_in = classify_partition(inside)
                ps_out = classify_partition(outside)
                sets[ps_in].add(ps_out)
                sets[ps_out].add(ps_in)
    return sets


@dataclass(frozen=True)
class ImpossibilityStep:
    """One step of the §2 impossibility chain (printed by benchmark E5)."""

    claim: str
    because: str


def impossibility_argument(
    sets: dict[PartitionState, set[PartitionState]] | None = None,
) -> list[ImpossibilityStep]:
    """Mechanize the paper's proof that a vote-respecting, never-blocking
    termination protocol cannot exist.

    Desired property: "if a partition has enough votes for a data item
    in W(TR), the termination protocol should either commit or abort
    the transaction in the partition" (never block it).

    The chain (each step checked against the *derived* concurrency
    sets, so the function doubles as a verification of Fig. 4):

    1. PS3 (an abort exists) must abort; PS6 (a commit exists) must
       commit — decisions are irrevocable (Rule 1).
    2. PS3 ∈ C(PS2): a partition of waiters can coexist with an
       aborted partition, so PS2 may only block or abort (Rule 1).
    3. PS6 ∈ C(PS5): an all-PC partition can coexist with a committed
       partition, so PS5 may only block or commit (Rule 1).
    4. PS2 ∈ C(PS5) and PS5 ∈ C(PS2): the two can coexist.  If neither
       may block, PS2 must abort while PS5 must commit — inconsistent
       termination (violates Rule 2).
    5. Both partitions can each hold enough votes for *some* (different)
       item in W(TR) — e.g. Example 1's G1 (votes for x) and G3 (votes
       for y).  Hence the desired property is unattainable; blocking
       can only be *minimized*, which is what the paper's protocols do.

    Returns:
        The verified steps, in order.

    Raises:
        AssertionError: if the derived concurrency sets contradict any
            step (they do not; the tests pin this).
    """
    if sets is None:
        sets = concurrency_sets()
    steps = []
    assert PartitionState.PS3 in sets[PartitionState.PS2]
    steps.append(
        ImpossibilityStep(
            "PS2 (all waiting) may only block or abort",
            "PS3 is in C(PS2): some other partition may already have aborted",
        )
    )
    assert PartitionState.PS6 in sets[PartitionState.PS5]
    steps.append(
        ImpossibilityStep(
            "PS5 (all prepared-to-commit) may only block or commit",
            "PS6 is in C(PS5): some other partition may already have committed",
        )
    )
    assert PartitionState.PS5 in sets[PartitionState.PS2]
    assert PartitionState.PS2 in sets[PartitionState.PS5]
    steps.append(
        ImpossibilityStep(
            "PS2 and PS5 can occur concurrently",
            "an interrupted prepare round leaves some sites in W, others in PC",
        )
    )
    steps.append(
        ImpossibilityStep(
            "no protocol terminates both a PS2 and a PS5 partition",
            "PS2 could only abort, PS5 could only commit - inconsistent (Rule 2)",
        )
    )
    steps.append(
        ImpossibilityStep(
            "a vote-holding partition cannot always be unblocked",
            "each of the two partitions may hold enough votes for a different "
            "item of W(TR), as in Example 1's G1 (x) and G3 (y)",
        )
    )
    return steps


def format_concurrency_table(
    sets: dict[PartitionState, set[PartitionState]] | None = None,
) -> str:
    """Render the derived Fig. 4 table for benches and examples."""
    if sets is None:
        sets = concurrency_sets()
    lines = ["PS   definition                                         C(PS)"]
    for ps in PartitionState:
        members = ", ".join(sorted(m.name for m in sets[ps]))
        lines.append(f"{ps.name:<4} {ps.value:<50} {{{members}}}")
    return "\n".join(lines)
