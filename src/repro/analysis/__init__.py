"""Analysis layer (systems S16–S18).

Everything here *observes* runs — none of it participates in them:

* :mod:`repro.analysis.partition_states` — the Fig. 4 theory: partition
  states PS1–PS6, machine-computed concurrency sets, Rules 1–2, and the
  paper's §2 impossibility argument, all derived by enumeration rather
  than transcribed.
* :mod:`repro.analysis.availability` — the paper's target metric: which
  data items are readable / writable in which partition, accounting for
  both factors of §1 (locks held by blocked transactions, and the
  voting partition-processing strategy).
* :mod:`repro.analysis.consistency` — atomic-commitment checking over
  traces (no mixed commit/abort, no per-site conflicts, no illegal
  Fig. 6 transitions, Lemma 1/2 conformance).
"""

from repro.analysis.availability import AvailabilityReport, ItemAvailability
from repro.analysis.consistency import ConsistencyReport, check_atomicity
from repro.analysis.liveness import TerminationTimeline, termination_timeline
from repro.analysis.partition_states import (
    PartitionState,
    classify_partition,
    concurrency_sets,
    impossibility_argument,
    reachable_global_states,
)
from repro.analysis.transitions import TransitionAudit, audit_transitions, observed_transitions

__all__ = [
    "AvailabilityReport",
    "ConsistencyReport",
    "ItemAvailability",
    "PartitionState",
    "TerminationTimeline",
    "TransitionAudit",
    "audit_transitions",
    "check_atomicity",
    "classify_partition",
    "concurrency_sets",
    "impossibility_argument",
    "observed_transitions",
    "reachable_global_states",
    "termination_timeline",
]
