"""Conflict-serializability checking over committed histories.

The paper's correctness story has two halves: atomic commitment (the
protocols) and serializability (the voting partition-processing
strategy).  This module checks the second half *after the fact*: given
the committed transactions of a run — each with its read set (item ->
version read) and write set (item -> version written) — build the
version-order conflict graph and test acyclicity.

Because Gifford quorums force any two writes, and any read/write pair,
on the same item to intersect in at least one copy, the version numbers
give a total order per item; an acyclic graph over those orders is
exactly one-copy serializability for this replication scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


@dataclass(frozen=True)
class CommittedTxn:
    """The footprint of one committed transaction.

    Attributes:
        txn: transaction id.
        reads: item -> version number the transaction read.
        writes: item -> version number the transaction installed.
    """

    txn: str
    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)


class ConflictGraph:
    """Builds and tests the conflict graph of a committed history."""

    def __init__(self, history: list[CommittedTxn]) -> None:
        self._history = list(history)
        self._graph = self._build()

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying digraph (nodes: txn ids)."""
        return self._graph

    def _build(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for txn in self._history:
            graph.add_node(txn.txn)
        by_item_writes: dict[str, list[tuple[int, str]]] = {}
        for txn in self._history:
            for item, version in txn.writes.items():
                by_item_writes.setdefault(item, []).append((version, txn.txn))
        for writes in by_item_writes.values():
            writes.sort()
        # ww edges: version order per item
        for writes in by_item_writes.values():
            for (_, earlier), (_, later) in zip(writes, writes[1:]):
                if earlier != later:
                    graph.add_edge(earlier, later, kind="ww")
        # wr and rw edges relative to the read version
        for txn in self._history:
            for item, read_version in txn.reads.items():
                for write_version, writer in by_item_writes.get(item, []):
                    if writer == txn.txn:
                        continue
                    if write_version <= read_version:
                        graph.add_edge(writer, txn.txn, kind="wr")
                    else:
                        graph.add_edge(txn.txn, writer, kind="rw")
        return graph

    def is_serializable(self) -> bool:
        """True when the conflict graph is acyclic."""
        return nx.is_directed_acyclic_graph(self._graph)

    def cycle(self) -> list[str] | None:
        """One conflict cycle (txn ids), or None when serializable."""
        try:
            return [e[0] for e in nx.find_cycle(self._graph)]
        except nx.NetworkXNoCycle:
            return None

    def serial_order(self) -> list[str]:
        """A witness serial order (topological sort).

        Raises:
            networkx.NetworkXUnfeasible: when the history is not
                serializable.
        """
        return list(nx.topological_sort(self._graph))
