"""Concurrency control substrate (system S5).

Within a site, strict two-phase locking guards the hosted copies; the
lock manager is what turns a *blocked* transaction into *unavailable
data* — the effect the paper's availability argument is about.  The
package also provides a conflict-graph serializability checker used by
the analysis layer to validate whole runs (including cross-partition
runs under the voting strategy).

* :class:`~repro.concurrency.locks.LockManager` — shared/exclusive
  locks with FIFO queuing per item.
* :func:`~repro.concurrency.deadlock.find_deadlock` — waits-for-graph
  cycle detection across sites.
* :class:`~repro.concurrency.serializability.ConflictGraph` — conflict
  serializability check over committed transaction histories.
"""

from repro.concurrency.deadlock import build_waits_for, find_deadlock
from repro.concurrency.locks import LockManager, LockMode, LockRequest
from repro.concurrency.serializability import CommittedTxn, ConflictGraph

__all__ = [
    "CommittedTxn",
    "ConflictGraph",
    "LockManager",
    "LockMode",
    "LockRequest",
    "build_waits_for",
    "find_deadlock",
]
