"""Global deadlock detection over per-site lock managers.

The simulator runs an omniscient detector (a union of every site's
waits-for edges, cycle search via networkx).  A real system would run a
distributed detector or timeouts; for reproducing the paper, deadlock
handling only needs to exist so random workloads cannot wedge — the
victim with the lexicographically greatest transaction id is aborted,
a deterministic choice that keeps sweeps reproducible.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.concurrency.locks import LockManager


def build_waits_for(managers: Iterable[LockManager]) -> nx.DiGraph:
    """Union the waits-for edges of many lock managers into one digraph."""
    graph = nx.DiGraph()
    for manager in managers:
        for waiter, holder in manager.waits_edges():
            graph.add_edge(waiter, holder)
    return graph


def find_deadlock(managers: Iterable[LockManager]) -> list[str] | None:
    """Find one deadlock cycle, if any.

    Returns:
        The transactions on one cycle (in cycle order), or None.  When
        several cycles exist the one found first by networkx is
        returned; callers re-run detection after aborting a victim.
    """
    graph = build_waits_for(managers)
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def choose_victim(cycle: list[str]) -> str:
    """Deterministic victim: the greatest transaction id on the cycle."""
    return max(cycle)
