"""Per-site lock manager (strict two-phase locking).

Lock compatibility is the classical matrix: shared locks are mutually
compatible; an exclusive lock is compatible with nothing.  Requests
queue FIFO per item; a released lock wakes the longest-waiting
compatible prefix of the queue.

Locks are held until the owning transaction's *decision* (strict 2PL):
the commit protocols release them on COMMIT / ABORT, and a transaction
blocked by the termination protocol keeps its locks — which is
precisely how blocking reduces data availability (paper §1, "locks will
be held on data items accessed by the transaction, rendering those data
items inaccessible").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable


class LockMode(enum.Enum):
    """Lock modes: shared (read) and exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """Classical compatibility: only S/S coexist."""
        return self is LockMode.SHARED and other is LockMode.SHARED

    def __str__(self) -> str:
        return self.value


@dataclass
class LockRequest:
    """A queued lock request with an optional grant callback."""

    txn: str
    item: str
    mode: LockMode
    granted: bool = False
    on_grant: Callable[[], None] | None = None


@dataclass
class _ItemLocks:
    holders: dict[str, LockMode] = field(default_factory=dict)
    queue: list[LockRequest] = field(default_factory=list)
    #: count of EXCLUSIVE entries in ``holders``, maintained at every
    #: holder mutation.  Compatibility is then two integer tests — S is
    #: grantable iff no exclusive holder, X iff no holder at all — so
    #: the vote-hook probe never allocates the generator the historical
    #: ``all(...)`` scan did.
    exclusive: int = 0


class LockManager:
    """Lock table for the copies hosted at one site.

    ``legacy_probe=True`` restores the historical allocating
    compatibility scan (``all(mode.compatible_with(h) ...)``) in
    :meth:`_grantable`; the A/B benchmark uses it to pin the speedup
    and the property suite uses it to prove grant-decision equality.
    """

    def __init__(self, site: int, *, legacy_probe: bool = False) -> None:
        self.site = site
        self._items: dict[str, _ItemLocks] = {}
        self._legacy_probe = legacy_probe

    def _entry(self, item: str) -> _ItemLocks:
        entry = self._items.get(item)
        if entry is None:
            entry = _ItemLocks()
            self._items[item] = entry
        return entry

    # ------------------------------------------------------------------
    # acquisition / release
    # ------------------------------------------------------------------

    def acquire(
        self,
        txn: str,
        item: str,
        mode: LockMode,
        on_grant: Callable[[], None] | None = None,
    ) -> bool:
        """Request a lock; returns True if granted immediately.

        Re-acquisition by the current holder is granted in place, with
        S -> X upgrade allowed when the transaction is the *sole* holder.
        If not immediately grantable the request queues and ``on_grant``
        fires when it is eventually granted.
        """
        entry = self._entry(item)
        held = entry.holders.get(txn)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True
            if len(entry.holders) == 1:  # sole holder: upgrade S -> X
                entry.holders[txn] = LockMode.EXCLUSIVE
                entry.exclusive += 1
                return True
            request = LockRequest(txn, item, mode, on_grant=on_grant)
            entry.queue.append(request)
            return False
        if self._grantable(entry, mode):
            entry.holders[txn] = mode
            entry.exclusive += mode is LockMode.EXCLUSIVE
            return True
        entry.queue.append(LockRequest(txn, item, mode, on_grant=on_grant))
        return False

    def _grantable(self, entry: _ItemLocks, mode: LockMode) -> bool:
        if entry.queue:  # FIFO fairness: nobody jumps the queue
            return False
        if self._legacy_probe:
            return all(mode.compatible_with(h) for h in entry.holders.values())
        if mode is LockMode.SHARED:
            return not entry.exclusive
        return not entry.holders

    def try_acquire(self, txn: str, item: str, mode: LockMode) -> bool:
        """Acquire only if immediately grantable; never queues.

        This is what the commit protocols' vote hook uses: a participant
        that cannot lock the writeset copies right now votes 'no' rather
        than waiting — waiting during the vote would let one in-doubt
        transaction stall another's commit procedure.

        This is the vote hot path: a refused probe allocates nothing —
        a table entry is only created when the lock is actually granted.
        """
        entry = self._items.get(item)
        if entry is None:  # unlocked item: grant installs the entry
            entry = _ItemLocks()
            entry.holders[txn] = mode
            entry.exclusive += mode is LockMode.EXCLUSIVE
            self._items[item] = entry
            return True
        held = entry.holders.get(txn)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True
            if len(entry.holders) == 1:
                entry.holders[txn] = LockMode.EXCLUSIVE
                entry.exclusive += 1
                return True
            return False
        if self._grantable(entry, mode):
            entry.holders[txn] = mode
            entry.exclusive += mode is LockMode.EXCLUSIVE
            return True
        return False

    def release_all(self, txn: str) -> list[str]:
        """Release every lock held by ``txn``; returns the items released.

        Queued requests that become grantable are granted (and their
        ``on_grant`` callbacks invoked) before returning.  Every item
        whose holder set *or* queue changed is woken: dropping an
        ungranted request from the head of a queue can unblock the
        waiters behind it (FIFO fairness kept them waiting on a request
        that will now never be granted), so waking only the items the
        transaction actually held would leave them blocked forever.
        """
        released = []
        touched = []
        for item, entry in self._items.items():
            changed = False
            held = entry.holders.pop(txn, None)
            if held is not None:
                entry.exclusive -= held is LockMode.EXCLUSIVE
                released.append(item)
                changed = True
            if entry.queue and any(r.txn == txn for r in entry.queue):
                entry.queue = [r for r in entry.queue if r.txn != txn]
                changed = True
            if changed:
                touched.append(item)
        for item in touched:
            self._wake(item)
        # drop entries left with neither holders nor waiters, so that
        # long sweeps probing many items do not grow the table forever
        for item in touched:
            entry = self._items[item]
            if not entry.holders and not entry.queue:
                del self._items[item]
        return released

    def _wake(self, item: str) -> None:
        entry = self._items[item]
        while entry.queue:
            head = entry.queue[0]
            upgrade_ok = (
                head.txn in entry.holders
                and head.mode is LockMode.EXCLUSIVE
                and len(entry.holders) == 1
            )
            fresh_ok = head.txn not in entry.holders and all(
                head.mode.compatible_with(h) for h in entry.holders.values()
            )
            if not (upgrade_ok or fresh_ok):
                break
            entry.queue.pop(0)
            if upgrade_ok:
                entry.exclusive += entry.holders[head.txn] is not LockMode.EXCLUSIVE
            else:
                entry.exclusive += head.mode is LockMode.EXCLUSIVE
            entry.holders[head.txn] = head.mode
            head.granted = True
            if head.on_grant is not None:
                head.on_grant()

    # ------------------------------------------------------------------
    # introspection (availability analysis reads these)
    # ------------------------------------------------------------------

    def holder_modes(self, item: str) -> dict[str, LockMode]:
        """Current holders of ``item`` (txn -> mode)."""
        entry = self._items.get(item)
        return dict(entry.holders) if entry is not None else {}

    def is_locked(self, item: str, blocking_txns: set[str] | None = None) -> bool:
        """Is ``item`` locked — optionally only by the given transactions?

        The availability metric asks "is this copy locked by a *blocked*
        transaction"; passing the blocked set implements that question.
        """
        entry = self._items.get(item)
        if entry is None or not entry.holders:
            return False
        if blocking_txns is None:
            return True
        return any(t in blocking_txns for t in entry.holders)

    def waiting(self, item: str) -> list[LockRequest]:
        """The queued (ungranted) requests for ``item``."""
        entry = self._items.get(item)
        return list(entry.queue) if entry is not None else []

    def held_by(self, txn: str) -> list[str]:
        """All items on which ``txn`` currently holds a lock."""
        return sorted(i for i, e in self._items.items() if txn in e.holders)

    def waits_edges(self) -> list[tuple[str, str]]:
        """(waiter, holder) pairs for the deadlock detector."""
        edges = []
        for entry in self._items.values():
            for request in entry.queue:
                for holder in entry.holders:
                    if holder != request.txn:
                        edges.append((request.txn, holder))
        return edges
