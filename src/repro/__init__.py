"""repro — a reproduction of Huang & Li's quorum-based commit and
termination protocols (ICDE 1988).

The library implements, from scratch, everything the paper describes or
depends on: a deterministic discrete-event simulator, a partitionable
lossy network, per-site durable storage with write-ahead logging,
strict two-phase locking, Gifford's weighted-voting replica control,
coordinator election, and five commit-protocol families — 2PC, 3PC,
Skeen's site-quorum protocol, and the paper's quorum-based commit and
termination protocols 1 and 2 — plus the analysis machinery (partition
states, concurrency sets, availability and atomicity checking) needed
to regenerate every figure and example in the paper.

Quickstart::

    from repro import CatalogBuilder, Cluster, FailurePlan

    catalog = (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
        .build()
    )
    cluster = Cluster(catalog, protocol="qtp1")
    txn = cluster.update(origin=1, writes={"x": 99})
    cluster.run()
    print(cluster.outcome(txn.txn).describe())
    print(cluster.read(2, "x").value)

See ``examples/`` for partition / failure scenarios and DESIGN.md for
the full system inventory.
"""

from repro.analysis.availability import AvailabilityReport, ItemAvailability
from repro.analysis.consistency import ConsistencyReport, check_atomicity
from repro.analysis.partition_states import (
    PartitionState,
    classify_partition,
    concurrency_sets,
    impossibility_argument,
)
from repro.common.errors import (
    ConfigurationError,
    QuorumUnreachableError,
    ReproError,
    TransactionAborted,
    TransactionBlocked,
)
from repro.db.cluster import PROTOCOL_NAMES, Cluster
from repro.db.txn import TxnHandle
from repro.net.delays import FixedDelay, UniformDelay
from repro.protocols.states import TxnState
from repro.replication.catalog import CatalogBuilder, ItemConfig, ReplicaCatalog
from repro.sim.failures import FailurePlan

__version__ = "1.0.0"

__all__ = [
    "AvailabilityReport",
    "CatalogBuilder",
    "Cluster",
    "ConfigurationError",
    "ConsistencyReport",
    "FailurePlan",
    "FixedDelay",
    "ItemAvailability",
    "ItemConfig",
    "PROTOCOL_NAMES",
    "PartitionState",
    "QuorumUnreachableError",
    "ReplicaCatalog",
    "ReproError",
    "TransactionAborted",
    "TransactionBlocked",
    "TxnHandle",
    "TxnState",
    "UniformDelay",
    "check_atomicity",
    "classify_partition",
    "concurrency_sets",
    "impossibility_argument",
    "__version__",
]
