"""Failure injection (system S3).

The paper's fault model is: arbitrary concurrent *site failures*, *lost
messages*, and *network partitioning*.  :class:`FailurePlan` describes a
schedule of such faults declaratively; :class:`FailureInjector` arms the
schedule on a scheduler and applies each fault to the network / site
registry at its virtual time.

The full fault model, fail-stop and gray:

=================  ==========  ====================================
action             class       effect
=================  ==========  ====================================
``CrashSite``      fail-stop   site down: volatile state lost,
                               timers cancelled, messages dropped
``RecoverSite``    fail-stop   site back up via WAL replay
``PartitionNetwork``  fail-stop  disjoint components; cross-component
                               messages dropped
``HealNetwork``    fail-stop   all partitions and link loss removed
``SetLinkLoss``    gray        directed link drops messages with
                               probability ``p`` (``p=1``: severed)
``DegradeSite``    gray        site slow-but-alive: a multiplicative
                               latency overlay on every message the
                               site sends or receives
``RestoreSite``    gray        degradation overlay removed
``FlapLink``       gray        deterministic sever/heal oscillation
                               of one directed link
``JoinSite``       membership  brand-new site registered, catalog
                               rebalanced (elastic scale-out)
``LeaveSite``      membership  graceful decommission: drain in-flight
                               txns, hand quorum votes off, deregister
=================  ==========  ====================================

Fail-stop actions silence a site or a cut entirely; gray actions keep
everything *alive but wrong* — slow sites, flapping links, lossy paths —
which is where commit protocols actually spend their bad days.
Membership actions need the database layer, so the injector delegates
them to a handler the cluster wires in.

Keeping the plan declarative (a list of timestamped actions) lets the
experiment harness generate random fault schedules from a seed, print
them alongside results, and replay any interesting one exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.sim.scheduler import Scheduler


@dataclass(frozen=True)
class CrashSite:
    """Crash ``site`` at ``time`` (volatile state lost, timers cancelled)."""

    time: float
    site: int


@dataclass(frozen=True)
class RecoverSite:
    """Recover ``site`` at ``time`` (WAL-based state reconstruction)."""

    time: float
    site: int


@dataclass(frozen=True)
class PartitionNetwork:
    """Partition the network into the given disjoint site groups at ``time``.

    Sites not listed in any group form an implicit extra group each (a
    fully isolated site), matching the usual "disjoint components"
    definition in the paper's introduction.
    """

    time: float
    groups: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class HealNetwork:
    """Remove all partitions at ``time`` (every site reachable again)."""

    time: float


@dataclass(frozen=True)
class SetLinkLoss:
    """From ``time`` on, drop messages ``src -> dst`` with probability ``p``.

    ``p=1.0`` models a severed directed link (used to reproduce Example 3
    where "all the messages between site2 and site3 ... are somehow lost").
    """

    time: float
    src: int
    dst: int
    p: float


@dataclass(frozen=True)
class JoinSite:
    """Register a brand-new site at ``time`` (elastic membership).

    ``copies`` lists the (item, votes) pairs the joining site
    contributes to the replica catalog (empty: a pure coordinator).
    ``near`` names an existing site whose partition component the new
    site is wired into; ``None`` leaves it wherever registration puts
    it — the universal component on a healed network, a singleton
    under an active partition.

    Unlike the fault actions, a join needs the *database* layer (WAL,
    store, lock manager, protocol engine, catalog), so the injector
    delegates it to a membership handler — the cluster wires one in.
    """

    time: float
    site: int
    copies: tuple[tuple[str, int], ...] = ()
    near: int | None = None


@dataclass(frozen=True)
class DegradeSite:
    """From ``time`` on, stretch ``site``'s message latency by ``factor``.

    A gray failure: the site stays alive and keeps voting, but every
    message it sends or receives samples its delivery delay as usual and
    is then multiplied by ``factor`` (factors compose multiplicatively
    when both endpoints are degraded).  ``factor=1.0`` is an exact no-op;
    local (self) deliveries stay immediate.
    """

    time: float
    site: int
    factor: float


@dataclass(frozen=True)
class RestoreSite:
    """Remove ``site``'s latency-degradation overlay at ``time``."""

    time: float
    site: int


@dataclass(frozen=True)
class FlapLink:
    """Oscillate the directed link ``src -> dst`` between severed and healed.

    Starting at ``time``, the link is severed for ``duty * period``
    virtual seconds of every ``period``-second cycle, for ``cycles``
    cycles, then left healed.  The oscillation rides handle-free
    ``call_fixed`` entries computed up front, so a replayed plan
    reproduces the exact same sever/heal edge times.
    """

    time: float
    src: int
    dst: int
    period: float
    duty: float = 0.5
    cycles: int = 3


@dataclass(frozen=True)
class LeaveSite:
    """Gracefully decommission ``site`` at ``time``.

    The dual of :class:`JoinSite`: the site drains its in-flight
    transactions, hands its quorum votes off through the catalog's
    rebalance machinery, then deregisters from the network.  Unlike a
    crash, no state is lost and counters record a *leave*, not a
    failure.  Needs the membership handler, like joins.
    """

    time: float
    site: int


FailureAction = (
    CrashSite
    | RecoverSite
    | PartitionNetwork
    | HealNetwork
    | SetLinkLoss
    | JoinSite
    | DegradeSite
    | RestoreSite
    | FlapLink
    | LeaveSite
)


@dataclass
class FailurePlan:
    """An ordered schedule of fault actions for one run."""

    actions: list[FailureAction] = field(default_factory=list)

    def crash(self, time: float, site: int) -> "FailurePlan":
        """Append a site crash; returns self for chaining."""
        self.actions.append(CrashSite(time, site))
        return self

    def recover(self, time: float, site: int) -> "FailurePlan":
        """Append a site recovery; returns self for chaining."""
        self.actions.append(RecoverSite(time, site))
        return self

    def partition(self, time: float, *groups: Sequence[int]) -> "FailurePlan":
        """Append a partition event; returns self for chaining."""
        frozen = tuple(tuple(g) for g in groups)
        self.actions.append(PartitionNetwork(time, frozen))
        return self

    def heal(self, time: float) -> "FailurePlan":
        """Append a heal event; returns self for chaining."""
        self.actions.append(HealNetwork(time))
        return self

    def sever(self, time: float, src: int, dst: int, p: float = 1.0) -> "FailurePlan":
        """Append a directed link-loss event; returns self for chaining."""
        self.actions.append(SetLinkLoss(time, src, dst, p))
        return self

    def sever_both(self, time: float, a: int, b: int, p: float = 1.0) -> "FailurePlan":
        """Sever the link in both directions."""
        return self.sever(time, a, b, p).sever(time, b, a, p)

    def join(
        self,
        time: float,
        site: int,
        copies: Mapping[str, int] | None = None,
        near: int | None = None,
    ) -> "FailurePlan":
        """Append an elastic-membership join; returns self for chaining.

        ``copies`` maps item name to the votes the joining copy holds;
        ``near`` places the new site into an existing site's partition
        component (it joins as a singleton otherwise while the network
        is partitioned).
        """
        frozen = tuple(sorted((copies or {}).items()))
        self.actions.append(JoinSite(time, site, frozen, near))
        return self

    def degrade(self, time: float, site: int, factor: float) -> "FailurePlan":
        """Append a gray slow-site degradation; returns self for chaining."""
        self.actions.append(DegradeSite(time, site, factor))
        return self

    def restore(self, time: float, site: int) -> "FailurePlan":
        """Append a degradation removal; returns self for chaining."""
        self.actions.append(RestoreSite(time, site))
        return self

    def flap(
        self,
        time: float,
        src: int,
        dst: int,
        period: float,
        duty: float = 0.5,
        cycles: int = 3,
    ) -> "FailurePlan":
        """Append a deterministic link flap; returns self for chaining."""
        self.actions.append(FlapLink(time, src, dst, period, duty, cycles))
        return self

    def leave(self, time: float, site: int) -> "FailurePlan":
        """Append a graceful site decommission; returns self for chaining."""
        self.actions.append(LeaveSite(time, site))
        return self

    def __len__(self) -> int:
        return len(self.actions)

    def describe(self) -> str:
        """One line per action, in schedule order (for experiment logs)."""
        return "\n".join(f"t={a.time:g}: {a}" for a in sorted(self.actions, key=lambda a: a.time))


class FailureInjector:
    """Arms a :class:`FailurePlan` on a scheduler against a network.

    The injector only talks to the :class:`~repro.net.network.Network`
    facade (which owns both connectivity and the site registry), so it is
    reusable by every protocol and experiment.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        network: "Network",
        membership: Callable[[JoinSite | LeaveSite], None] | None = None,
    ) -> None:
        """Wire the injector.

        Args:
            scheduler: the run's scheduler.
            network: the network facade faults apply to.
            membership: handler for :class:`JoinSite` / :class:`LeaveSite`
                actions (membership changes build or drain database
                state the network knows nothing about;
                :class:`~repro.db.cluster.Cluster` passes its
                dispatcher).  Plans containing membership actions fail
                to apply without one.
        """
        self._scheduler = scheduler
        self._network = network
        self._membership = membership
        self.applied: list[FailureAction] = []

    def arm(self, plan: FailurePlan) -> None:
        """Schedule every action in the plan at its virtual time.

        Armed actions are never cancelled — a plan is the run's destiny —
        so they ride the scheduler's handle-free ``call_fixed`` entries.
        """
        for action in plan.actions:
            self._scheduler.call_fixed(action.time, self._apply, action)

    def _apply(self, action: FailureAction) -> None:
        net = self._network
        if isinstance(action, CrashSite):
            net.crash_site(action.site)
        elif isinstance(action, RecoverSite):
            net.recover_site(action.site)
        elif isinstance(action, PartitionNetwork):
            # tuples pass through verbatim: the network interns views by
            # group signature, so a replayed plan action is a cache hit
            # with no per-event list copies.
            net.set_partition(action.groups)
        elif isinstance(action, HealNetwork):
            net.heal()
        elif isinstance(action, SetLinkLoss):
            net.set_link_loss(action.src, action.dst, action.p)
        elif isinstance(action, DegradeSite):
            net.degrade_site(action.site, action.factor)
        elif isinstance(action, RestoreSite):
            net.restore_site(action.site)
        elif isinstance(action, FlapLink):
            self._start_flap(action)
        elif isinstance(action, (JoinSite, LeaveSite)):
            if self._membership is None:
                raise TypeError(
                    f"{type(action).__name__} actions need a membership handler; "
                    "arm the plan through a Cluster (or pass membership= to "
                    "the injector)"
                )
            self._membership(action)
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown failure action {action!r}")
        self.applied.append(action)

    def _start_flap(self, action: FlapLink) -> None:
        """Schedule the whole sever/heal oscillation up front.

        All edges ride ``call_fixed`` at precomputed absolute times, so
        the flap is a pure function of the action — bounded (``cycles``
        cycles then healed for good) and byte-identical on replay.  The
        first sever fires via the scheduler too (never inline), keeping
        event ordering independent of when the plan was armed.
        """
        if action.period <= 0:
            raise ValueError(f"flap period must be positive, got {action.period}")
        if not 0.0 < action.duty <= 1.0:
            raise ValueError(f"flap duty must be in (0, 1], got {action.duty}")
        if action.cycles < 1:
            raise ValueError(f"flap cycles must be >= 1, got {action.cycles}")
        net = self._network
        for k in range(action.cycles):
            start = action.time + k * action.period
            self._scheduler.call_fixed(start, net.set_link_loss, action.src, action.dst, 1.0)
            self._scheduler.call_fixed(
                start + action.duty * action.period,
                net.set_link_loss,
                action.src,
                action.dst,
                0.0,
            )
