"""Failure injection (system S3).

The paper's fault model is: arbitrary concurrent *site failures*, *lost
messages*, and *network partitioning*.  :class:`FailurePlan` describes a
schedule of such faults declaratively; :class:`FailureInjector` arms the
schedule on a scheduler and applies each fault to the network / site
registry at its virtual time.

Keeping the plan declarative (a list of timestamped actions) lets the
experiment harness generate random fault schedules from a seed, print
them alongside results, and replay any interesting one exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.sim.scheduler import Scheduler


@dataclass(frozen=True)
class CrashSite:
    """Crash ``site`` at ``time`` (volatile state lost, timers cancelled)."""

    time: float
    site: int


@dataclass(frozen=True)
class RecoverSite:
    """Recover ``site`` at ``time`` (WAL-based state reconstruction)."""

    time: float
    site: int


@dataclass(frozen=True)
class PartitionNetwork:
    """Partition the network into the given disjoint site groups at ``time``.

    Sites not listed in any group form an implicit extra group each (a
    fully isolated site), matching the usual "disjoint components"
    definition in the paper's introduction.
    """

    time: float
    groups: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class HealNetwork:
    """Remove all partitions at ``time`` (every site reachable again)."""

    time: float


@dataclass(frozen=True)
class SetLinkLoss:
    """From ``time`` on, drop messages ``src -> dst`` with probability ``p``.

    ``p=1.0`` models a severed directed link (used to reproduce Example 3
    where "all the messages between site2 and site3 ... are somehow lost").
    """

    time: float
    src: int
    dst: int
    p: float


@dataclass(frozen=True)
class JoinSite:
    """Register a brand-new site at ``time`` (elastic membership).

    ``copies`` lists the (item, votes) pairs the joining site
    contributes to the replica catalog (empty: a pure coordinator).
    ``near`` names an existing site whose partition component the new
    site is wired into; ``None`` leaves it wherever registration puts
    it — the universal component on a healed network, a singleton
    under an active partition.

    Unlike the fault actions, a join needs the *database* layer (WAL,
    store, lock manager, protocol engine, catalog), so the injector
    delegates it to a membership handler — the cluster wires one in.
    """

    time: float
    site: int
    copies: tuple[tuple[str, int], ...] = ()
    near: int | None = None


FailureAction = (
    CrashSite | RecoverSite | PartitionNetwork | HealNetwork | SetLinkLoss | JoinSite
)


@dataclass
class FailurePlan:
    """An ordered schedule of fault actions for one run."""

    actions: list[FailureAction] = field(default_factory=list)

    def crash(self, time: float, site: int) -> "FailurePlan":
        """Append a site crash; returns self for chaining."""
        self.actions.append(CrashSite(time, site))
        return self

    def recover(self, time: float, site: int) -> "FailurePlan":
        """Append a site recovery; returns self for chaining."""
        self.actions.append(RecoverSite(time, site))
        return self

    def partition(self, time: float, *groups: Sequence[int]) -> "FailurePlan":
        """Append a partition event; returns self for chaining."""
        frozen = tuple(tuple(g) for g in groups)
        self.actions.append(PartitionNetwork(time, frozen))
        return self

    def heal(self, time: float) -> "FailurePlan":
        """Append a heal event; returns self for chaining."""
        self.actions.append(HealNetwork(time))
        return self

    def sever(self, time: float, src: int, dst: int, p: float = 1.0) -> "FailurePlan":
        """Append a directed link-loss event; returns self for chaining."""
        self.actions.append(SetLinkLoss(time, src, dst, p))
        return self

    def sever_both(self, time: float, a: int, b: int, p: float = 1.0) -> "FailurePlan":
        """Sever the link in both directions."""
        return self.sever(time, a, b, p).sever(time, b, a, p)

    def join(
        self,
        time: float,
        site: int,
        copies: Mapping[str, int] | None = None,
        near: int | None = None,
    ) -> "FailurePlan":
        """Append an elastic-membership join; returns self for chaining.

        ``copies`` maps item name to the votes the joining copy holds;
        ``near`` places the new site into an existing site's partition
        component (it joins as a singleton otherwise while the network
        is partitioned).
        """
        frozen = tuple(sorted((copies or {}).items()))
        self.actions.append(JoinSite(time, site, frozen, near))
        return self

    def __len__(self) -> int:
        return len(self.actions)

    def describe(self) -> str:
        """One line per action, in schedule order (for experiment logs)."""
        return "\n".join(f"t={a.time:g}: {a}" for a in sorted(self.actions, key=lambda a: a.time))


class FailureInjector:
    """Arms a :class:`FailurePlan` on a scheduler against a network.

    The injector only talks to the :class:`~repro.net.network.Network`
    facade (which owns both connectivity and the site registry), so it is
    reusable by every protocol and experiment.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        network: "Network",
        membership: Callable[[JoinSite], None] | None = None,
    ) -> None:
        """Wire the injector.

        Args:
            scheduler: the run's scheduler.
            network: the network facade faults apply to.
            membership: handler for :class:`JoinSite` actions (joins
                build database state the network knows nothing about;
                :class:`~repro.db.cluster.Cluster` passes its
                ``join_site``).  Plans containing joins fail to apply
                without one.
        """
        self._scheduler = scheduler
        self._network = network
        self._membership = membership
        self.applied: list[FailureAction] = []

    def arm(self, plan: FailurePlan) -> None:
        """Schedule every action in the plan at its virtual time.

        Armed actions are never cancelled — a plan is the run's destiny —
        so they ride the scheduler's handle-free ``call_fixed`` entries.
        """
        for action in plan.actions:
            self._scheduler.call_fixed(action.time, self._apply, action)

    def _apply(self, action: FailureAction) -> None:
        net = self._network
        if isinstance(action, CrashSite):
            net.crash_site(action.site)
        elif isinstance(action, RecoverSite):
            net.recover_site(action.site)
        elif isinstance(action, PartitionNetwork):
            # tuples pass through verbatim: the network interns views by
            # group signature, so a replayed plan action is a cache hit
            # with no per-event list copies.
            net.set_partition(action.groups)
        elif isinstance(action, HealNetwork):
            net.heal()
        elif isinstance(action, SetLinkLoss):
            net.set_link_loss(action.src, action.dst, action.p)
        elif isinstance(action, JoinSite):
            if self._membership is None:
                raise TypeError(
                    "JoinSite actions need a membership handler; arm the plan "
                    "through a Cluster (or pass membership= to the injector)"
                )
            self._membership(action)
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown failure action {action!r}")
        self.applied.append(action)
