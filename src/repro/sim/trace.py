"""Structured simulation trace — the flight recorder.

Every interesting action (message send/drop/delivery, state transition,
quorum evaluation, decision, crash, election) is appended to a
:class:`Tracer` as a :class:`TraceRecord`.  The analysis layer, the
tests and the experiment harness all *read the trace* rather than
poking protocol internals, which keeps the protocols honest: a claim
like "no partition aborted after a commit quorum formed" is checked
against the recorded history of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped event in a run.

    Attributes:
        time: virtual time the event occurred.
        site: site id the event is attributed to (-1 for global events
            such as partition changes).
        category: machine-readable kind, e.g. ``"state"``, ``"send"``,
            ``"drop"``, ``"deliver"``, ``"decision"``, ``"election"``,
            ``"crash"``, ``"recover"``, ``"partition"``, ``"quorum"``.
        txn: transaction id the event concerns ("" when not txn-scoped).
        detail: free-form payload (kept to plain dict/str/num values so
            traces can be serialized).
    """

    time: float
    site: int
    category: str
    txn: str = ""
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = [f"t={self.time:8.2f}", f"site={self.site:>3}", self.category]
        if self.txn:
            parts.append(self.txn)
        if self.detail:
            parts.append(str(self.detail))
        return "  ".join(parts)


class Tracer:
    """Append-only trace with query helpers.

    The helpers cover the questions the analysis layer asks most:
    "all decision records for txn", "did site s ever enter state PC",
    "how many messages of type m were sent".
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._records: list[TraceRecord] = []
        self._capacity = capacity
        self._dropped = 0

    def record(
        self,
        time: float,
        site: int,
        category: str,
        txn: str = "",
        **detail: Any,
    ) -> None:
        """Append one record (drops silently past ``capacity``)."""
        if self._capacity is not None and len(self._records) >= self._capacity:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, site, category, txn, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """The raw record list (do not mutate)."""
        return self._records

    @property
    def dropped(self) -> int:
        """Records discarded because capacity was reached."""
        return self._dropped

    def where(
        self,
        category: str | None = None,
        site: int | None = None,
        txn: str | None = None,
        pred: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Filter records by category / site / txn and an optional predicate."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if site is not None and rec.site != site:
                continue
            if txn is not None and rec.txn != txn:
                continue
            if pred is not None and not pred(rec):
                continue
            out.append(rec)
        return out

    def count(self, category: str, **kwargs: Any) -> int:
        """Count records matching :meth:`where` filters."""
        return len(self.where(category=category, **kwargs))

    def decisions(self, txn: str) -> dict[int, str]:
        """Map site -> final decision ("commit"/"abort") for a transaction.

        A site's final decision is its *last* decision record; decisions
        are irrevocable in all implemented protocols, and the consistency
        checker independently asserts that no site ever records two
        different decisions.
        """
        out: dict[int, str] = {}
        for rec in self.where(category="decision", txn=txn):
            out[rec.site] = rec.detail["outcome"]
        return out

    def message_counts(self) -> dict[str, int]:
        """Histogram of sent message types (for the Fig. 1 / Fig. 2 benches)."""
        counts: dict[str, int] = {}
        for rec in self.where(category="send"):
            mtype = rec.detail.get("mtype", "?")
            counts[mtype] = counts.get(mtype, 0) + 1
        return counts

    def dump(self, records: Iterable[TraceRecord] | None = None) -> str:
        """Human-readable multi-line rendering (used by examples)."""
        return "\n".join(str(r) for r in (records if records is not None else self._records))
