"""Structured simulation trace — the flight recorder.

Every interesting action (message send/drop/delivery, state transition,
quorum evaluation, decision, crash, election) is appended to a
:class:`Tracer` as a :class:`TraceRecord`.  The analysis layer, the
tests and the experiment harness all *read the trace* rather than
poking protocol internals, which keeps the protocols honest: a claim
like "no partition aborted after a commit quorum formed" is checked
against the recorded history of the run.

Hot-path notes: the tracer sits on every delivered message, so the
default store is **columnar** — parallel arrays for time / site /
category / txn plus a compact per-category detail encoding — instead
of a list of frozen dataclasses.  An append is five ``list.append``
calls and no object construction; :class:`TraceRecord` views are
materialized lazily (and memoized) only when somebody iterates or
filters.  Per-category and per-txn row indexes are built lazily on the
first query and extended incrementally, so :meth:`where` /
:meth:`count` / :meth:`decisions` / :meth:`message_counts` touch O(k)
matching rows instead of scanning all O(n).  ``columnar=False``
restores the legacy list-of-records store — kept for A/B measurement
by the ``trace_record`` bench case, whose committed baseline pins the
two stores producing byte-identical records and dumps.

``capacity`` bounds memory two ways: the default (truncate) mode drops
*new* records once full — exactly the legacy semantics — while
``ring=True`` keeps the *last* ``capacity`` records instead, evicting
the oldest; either way :attr:`dropped` counts what was discarded.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped event in a run.

    Attributes:
        time: virtual time the event occurred.
        site: site id the event is attributed to (-1 for global events
            such as partition changes).
        category: machine-readable kind, e.g. ``"state"``, ``"send"``,
            ``"drop"``, ``"deliver"``, ``"decision"``, ``"election"``,
            ``"crash"``, ``"recover"``, ``"partition"``, ``"quorum"``.
        txn: transaction id the event concerns ("" when not txn-scoped).
        detail: free-form payload (kept to plain dict/str/num values so
            traces can be serialized).
    """

    time: float
    site: int
    category: str
    txn: str = ""
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = [f"t={self.time:8.2f}", f"site={self.site:>3}", self.category]
        if self.txn:
            parts.append(self.txn)
        if self.detail:
            parts.append(str(self.detail))
        return "  ".join(parts)


def _expand_detail(category: str, detail: Any) -> dict[str, Any]:
    """Materialize a compact detail column entry into the dict form.

    Compact entries are tuples whose layout is fixed per category (the
    key order matches the historical ``record(...)`` keyword order, so
    ``str(record)`` and :meth:`Tracer.dump` stay byte-identical to the
    legacy store):

    * ``send``    -> ``(mtype, dst)``
    * ``deliver`` -> ``(mtype, src)``
    * ``drop``    -> ``(mtype, dst, reason)``
    """
    if type(detail) is not tuple:
        return detail
    if category == "send":
        return {"mtype": detail[0], "dst": detail[1]}
    if category == "deliver":
        return {"mtype": detail[0], "src": detail[1]}
    if category == "drop":
        return {"mtype": detail[0], "dst": detail[1], "reason": detail[2]}
    raise AssertionError(f"compact detail under unexpected category {category!r}")


class Tracer:
    """Append-only trace with query helpers.

    The helpers cover the questions the analysis layer asks most:
    "all decision records for txn", "did site s ever enter state PC",
    "how many messages of type m were sent".

    Args:
        capacity: record budget (``None`` = unbounded, ``0`` = record
            nothing).
        columnar: use the columnar/slotted store (default).  ``False``
            keeps the legacy list-of-dataclasses store for A/B benching.
        ring: with a capacity, keep the *newest* ``capacity`` records
            (a flight recorder for long runs) instead of dropping new
            ones once full.  Requires the columnar store.
    """

    def __init__(
        self,
        capacity: int | None = None,
        columnar: bool = True,
        ring: bool = False,
    ) -> None:
        if ring and capacity is None:
            raise ValueError("ring mode requires a capacity")
        if ring and not columnar:
            raise ValueError("ring mode requires the columnar store")
        self._capacity = capacity
        self._columnar = columnar
        self._ring = ring
        self._dropped = 0
        # string-interning table for repeated txn / mtype / category
        # keys: drivers build ids like f"T{n}" per record, so without
        # canonicalization a long trace stores thousands of duplicate
        # string objects.  Values are equal either way — dumps and all
        # queries are byte-identical — this is purely a memory win.
        self._strings: dict[str, str] = {}
        if columnar:
            # parallel columns; one logical record = one row across all five
            self._times: list[float] = []
            self._sites: list[int] = []
            self._cats: list[str] = []
            self._txns: list[str] = []
            self._details: list[Any] = []
            self._memo: dict[int, TraceRecord] = {}  # row -> materialized view
            self._by_cat: dict[str, list[int]] = {}
            self._by_txn: dict[str, list[int]] = {}
            self._indexed_upto = 0
            self._next = 0  # ring write slot
            self._full = False  # ring wrapped at least once
        else:
            self._records: list[TraceRecord] = []

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------

    def record(
        self,
        time: float,
        site: int,
        category: str,
        txn: str = "",
        **detail: Any,
    ) -> None:
        """Append one record (past ``capacity``: drop it, or the oldest)."""
        if not self._columnar:
            if self._capacity is not None and len(self._records) >= self._capacity:
                self._dropped += 1
                return
            self._records.append(TraceRecord(time, site, category, txn, detail))
            return
        self._append(time, site, category, txn, detail)

    def record_send(self, time: float, site: int, txn: str, mtype: str, dst: int) -> None:
        """Fast-path append of a ``send`` record (no detail dict built)."""
        if self._columnar:
            self._append(time, site, "send", txn, (self._intern(mtype), dst))
        else:
            self.record(time, site, "send", txn, mtype=mtype, dst=dst)

    def record_deliver(self, time: float, site: int, txn: str, mtype: str, src: int) -> None:
        """Fast-path append of a ``deliver`` record."""
        if self._columnar:
            self._append(time, site, "deliver", txn, (self._intern(mtype), src))
        else:
            self.record(time, site, "deliver", txn, mtype=mtype, src=src)

    def record_drop(
        self, time: float, site: int, txn: str, mtype: str, dst: int, reason: str
    ) -> None:
        """Fast-path append of a ``drop`` record (with its reason)."""
        if self._columnar:
            self._append(time, site, "drop", txn, (self._intern(mtype), dst, reason))
        else:
            self.record(time, site, "drop", txn, mtype=mtype, dst=dst, reason=reason)

    def _intern(self, s: str) -> str:
        """The canonical instance of a repeated key string (see __init__)."""
        canonical = self._strings.get(s)
        if canonical is None:
            canonical = self._strings[s] = s
        return canonical

    def _append(self, time: float, site: int, category: str, txn: str, detail: Any) -> None:
        cap = self._capacity
        if cap is not None and len(self._times) >= cap:
            if not self._ring or cap == 0:
                self._dropped += 1
                return
            # ring eviction: overwrite the oldest slot in place
            slot = self._next
            self._times[slot] = time
            self._sites[slot] = site
            self._cats[slot] = category
            self._txns[slot] = txn
            self._details[slot] = detail
            self._next = (slot + 1) % cap
            self._full = True
            self._dropped += 1
            self._memo.clear()  # row numbering shifted; views are stale
            self._indexed_upto = -1  # force index rebuild on next query
            return
        self._times.append(time)
        self._sites.append(site)
        self._cats.append(category)
        self._txns.append(txn)
        self._details.append(detail)

    # ------------------------------------------------------------------
    # row plumbing (columnar store)
    # ------------------------------------------------------------------

    def _slot(self, row: int) -> int:
        """Physical slot of logical ``row`` (identity until a ring wraps)."""
        if self._full:
            return (self._next + row) % self._capacity  # type: ignore[operator]
        return row

    def _rec(self, row: int) -> TraceRecord:
        """The (memoized) materialized view of logical row ``row``."""
        rec = self._memo.get(row)
        if rec is None:
            slot = self._slot(row)
            cat = self._cats[slot]
            rec = TraceRecord(
                self._times[slot],
                self._sites[slot],
                cat,
                self._txns[slot],
                _expand_detail(cat, self._details[slot]),
            )
            self._memo[row] = rec
        return rec

    def _ensure_index(self) -> None:
        """Build / extend the per-category and per-txn row indexes.

        Index maintenance is *off* the append hot path: rows appended
        since the last query are folded in here, so a run that never
        queries never pays.  A wrapped ring rebuilds wholesale (bounded
        by ``capacity``).
        """
        n = len(self._times)
        upto = self._indexed_upto
        if upto == n:
            return
        if upto < 0 or self._full:  # ring wrapped: renumber everything
            self._by_cat = {}
            self._by_txn = {}
            upto = 0
        by_cat = self._by_cat
        by_txn = self._by_txn
        cats = self._cats
        txns = self._txns
        for row in range(upto, n):
            slot = self._slot(row)
            cat = cats[slot]
            rows = by_cat.get(cat)
            if rows is None:
                rows = by_cat[cat] = []
            rows.append(row)
            txn = txns[slot]
            rows = by_txn.get(txn)
            if rows is None:
                rows = by_txn[txn] = []
            rows.append(row)
        self._indexed_upto = n

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times) if self._columnar else len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        if not self._columnar:
            return iter(self._records)
        return (self._rec(row) for row in range(len(self._times)))

    @property
    def records(self) -> list[TraceRecord]:
        """Materialized record list, in append order (do not mutate)."""
        if not self._columnar:
            return self._records
        return [self._rec(row) for row in range(len(self._times))]

    @property
    def dropped(self) -> int:
        """Records discarded: refused past capacity, or evicted (ring)."""
        return self._dropped

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def where(
        self,
        category: str | None = None,
        site: int | None = None,
        txn: str | None = None,
        pred: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Filter records by category / site / txn and an optional predicate."""
        if not self._columnar:
            out = []
            for rec in self._records:
                if category is not None and rec.category != category:
                    continue
                if site is not None and rec.site != site:
                    continue
                if txn is not None and rec.txn != txn:
                    continue
                if pred is not None and not pred(rec):
                    continue
                out.append(rec)
            return out
        rows = self._candidate_rows(category, txn)
        cats = self._cats
        sites = self._sites
        txns = self._txns
        out = []
        for row in rows:
            slot = self._slot(row)
            if category is not None and cats[slot] != category:
                continue
            if site is not None and sites[slot] != site:
                continue
            if txn is not None and txns[slot] != txn:
                continue
            rec = self._rec(row)
            if pred is not None and not pred(rec):
                continue
            out.append(rec)
        return out

    def _candidate_rows(self, category: str | None, txn: str | None) -> Iterable[int]:
        """The narrowest indexed row list covering the filters, in order."""
        if category is None and txn is None:
            return range(len(self._times))
        self._ensure_index()
        by_cat = self._by_cat.get(category) if category is not None else None
        by_txn = self._by_txn.get(txn) if txn is not None else None
        if category is not None and txn is not None:
            if by_cat is None or by_txn is None:
                return ()
            return by_cat if len(by_cat) <= len(by_txn) else by_txn
        if category is not None:
            return by_cat if by_cat is not None else ()
        return by_txn if by_txn is not None else ()

    def count(self, category: str, **kwargs: Any) -> int:
        """Count records matching :meth:`where` filters."""
        if self._columnar and not kwargs:
            self._ensure_index()
            return len(self._by_cat.get(category, ()))
        return len(self.where(category=category, **kwargs))

    def decisions(self, txn: str) -> dict[int, str]:
        """Map site -> final decision ("commit"/"abort") for a transaction.

        A site's final decision is its *last* decision record; decisions
        are irrevocable in all implemented protocols, and the consistency
        checker independently asserts that no site ever records two
        different decisions.
        """
        out: dict[int, str] = {}
        if self._columnar:
            cats = self._cats
            sites = self._sites
            details = self._details
            for row in self._candidate_rows("decision", txn):
                slot = self._slot(row)
                if cats[slot] == "decision" and self._txns[slot] == txn:
                    out[sites[slot]] = details[slot]["outcome"]
            return out
        for rec in self.where(category="decision", txn=txn):
            out[rec.site] = rec.detail["outcome"]
        return out

    def message_counts(self) -> dict[str, int]:
        """Histogram of sent message types (for the Fig. 1 / Fig. 2 benches)."""
        if self._columnar:
            self._ensure_index()
            details = self._details
            counts = Counter(
                det[0] if type(det := details[self._slot(row)]) is tuple else det.get("mtype", "?")
                for row in self._by_cat.get("send", ())
            )
        else:
            counts = Counter(
                rec.detail.get("mtype", "?") for rec in self.where(category="send")
            )
        return dict(counts)

    def txn_scope(self, txn: str) -> list[TraceRecord]:
        """Records of one transaction plus global ("" txn) events, in order.

        The slice a message-sequence chart renders; served by merging
        the two per-txn row indexes instead of scanning the full trace.
        """
        if not self._columnar:
            return [rec for rec in self._records if rec.txn in ("", txn)]
        self._ensure_index()
        rows = sorted(self._by_txn.get("", []) + self._by_txn.get(txn, [])) if txn else None
        if rows is None:
            rows = self._by_txn.get("", [])
        return [self._rec(row) for row in rows]

    def dump(self, records: Iterable[TraceRecord] | None = None) -> str:
        """Human-readable multi-line rendering (used by examples)."""
        return "\n".join(str(r) for r in (records if records is not None else self.records))
