"""Deterministic discrete-event simulation kernel (system S1 + S3).

The whole reproduction runs on this kernel instead of wall-clock
``asyncio``: the paper's protocols are specified against a bounded
end-to-end delay ``T`` and timeout windows ``2T`` / ``3T``, and only a
simulated clock lets us exercise those windows exactly and replay any
counterexample deterministically.

Public surface:

* :class:`~repro.sim.scheduler.Scheduler` — event queue + virtual clock.
* :class:`~repro.sim.scheduler.EventHandle` — cancellable timer handle.
* :class:`~repro.sim.rng.RngRegistry` — named, independently seeded
  random streams so that adding randomness to one component never
  perturbs another.
* :class:`~repro.sim.trace.Tracer` / :class:`~repro.sim.trace.TraceRecord`
  — structured, queryable event trace (the "flight recorder" that the
  analysis layer and the tests read).
* :class:`~repro.sim.failures.FailureInjector` — crash / recovery /
  partition / message-loss schedules.
"""

from repro.sim.failures import FailureInjector, FailurePlan
from repro.sim.msc import message_sequence_chart
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import EventHandle, Scheduler
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "EventHandle",
    "FailureInjector",
    "FailurePlan",
    "RngRegistry",
    "Scheduler",
    "TraceRecord",
    "Tracer",
    "message_sequence_chart",
]
