"""Message sequence charts from traces — Figs. 1, 2 and 9 as output.

The paper's protocol figures are message diagrams; this module renders
the same diagrams from an actual run's trace, one line per event:

::

    t=2.00            1 ----------prepare---------> 3
    t=3.00            3 [W -> PC]
    t=3.00            3 -----------ack------------> 1

Used by the flow benchmarks (printing the executable counterpart of
each figure) and by ``examples/termination_walkthrough.py``.
"""

from __future__ import annotations

from repro.sim.trace import TraceRecord, Tracer


def _short(mtype: str) -> str:
    """Strip the family prefix: ``qtp1.t.state-req`` -> ``t.state-req``."""
    __, __, rest = mtype.partition(".")
    return rest or mtype


def _arrow(src: int, dst: int, label: str, width: int = 28) -> str:
    pad = max(2, width - len(label))
    left = pad // 2
    right = pad - left
    return f"{src:>3} {'-' * left}{label}{'-' * right}> {dst}"


def format_event(rec: TraceRecord) -> str | None:
    """One chart line for a record, or None for uncharted categories."""
    t = f"t={rec.time:7.2f}  "
    if rec.category == "send":
        return t + _arrow(rec.site, rec.detail["dst"], _short(rec.detail["mtype"]))
    if rec.category == "drop":
        reason = rec.detail.get("reason", "lost")
        return (
            t
            + _arrow(rec.site, rec.detail["dst"], _short(rec.detail["mtype"]))
            + f"   ✗ {reason}"
        )
    if rec.category == "state":
        return t + f"{rec.site:>3} [{rec.detail['src']} -> {rec.detail['dst']}]"
    if rec.category == "decision":
        return t + f"{rec.site:>3} ** {rec.detail['outcome'].upper()} **"
    if rec.category == "coord-decision":
        return t + f"{rec.site:>3} == coordinator decides {rec.detail['outcome'].upper()} =="
    if rec.category in ("crash", "recover"):
        return t + f"{rec.site:>3} !! {rec.category.upper()} !!"
    if rec.category == "partition":
        groups = rec.detail.get("groups", [])
        return t + f"    ~~ PARTITION {groups} ~~"
    if rec.category == "heal":
        return t + "    ~~ HEAL ~~"
    if rec.category == "blocked":
        return t + f"{rec.site:>3} .. blocked ({rec.detail.get('reason', '')}) .."
    if rec.category == "coordinator":
        return t + f"{rec.site:>3} >> elected termination coordinator <<"
    return None


def message_sequence_chart(
    tracer: Tracer,
    txn: str | None = None,
    include_drops: bool = True,
    max_lines: int | None = None,
) -> str:
    """Render a run (optionally one transaction) as an ASCII chart.

    Args:
        tracer: the run's trace.
        txn: restrict to one transaction's records plus global events.
        include_drops: chart dropped messages (with their reason).
        max_lines: truncate long charts (an ellipsis line is added).
    """
    # txn_scope merges the per-txn row indexes (O(k)); a full chart
    # materializes every record anyway.
    records = tracer.records if txn is None else tracer.txn_scope(txn)
    lines: list[str] = []
    for i, rec in enumerate(records):
        if rec.category == "drop" and not include_drops:
            continue
        if rec.category == "send":
            # a send immediately followed by its own drop record is
            # charted once, as the (annotated) drop line
            nxt = records[i + 1] if i + 1 < len(records) else None
            if (
                nxt is not None
                and nxt.category == "drop"
                and nxt.time == rec.time
                and nxt.detail.get("mtype") == rec.detail.get("mtype")
                and nxt.detail.get("dst") == rec.detail.get("dst")
                and nxt.site == rec.site
            ):
                continue
        line = format_event(rec)
        if line is not None:
            lines.append(line)
    if max_lines is not None and len(lines) > max_lines:
        omitted = len(lines) - max_lines
        lines = lines[:max_lines] + [f"... ({omitted} more events)"]
    return "\n".join(lines)
