"""Event scheduler and virtual clock.

A single :class:`Scheduler` instance drives one simulation run.  Events
are callbacks scheduled at absolute virtual times; ties are broken by a
monotone sequence number so runs are fully deterministic regardless of
hash seeds or dict ordering.

The design is intentionally minimal — callbacks, not coroutines.  The
commit protocols in this library are message-driven state machines, and
plain ``on_message`` callbacks mirror their published pseudo-code (the
coordinator / participant event tables of Fig. 5 and Fig. 8) far more
directly than generator-based processes would.

Hot-path notes: every simulated message goes through this queue, and
the randomized studies run hundreds of thousands of events per sweep.
Heap entries are therefore plain ``(time, seq, handle)`` tuples — tuple
comparison is C-level and ``seq`` is unique, so handles are never
compared — and :attr:`Scheduler.pending` is a live counter maintained
on push / cancel / fire rather than an O(n) queue scan.  Events that
can never be cancelled (message deliveries, which make up nearly all
events in protocol runs) can skip the :class:`EventHandle` allocation
entirely via :meth:`Scheduler.call_fixed`, which stores a bare
``(fn, args)`` tuple in the heap entry instead.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in the queue but is
    skipped when popped.  ``fired`` distinguishes "ran" from "cancelled"
    for assertions in tests.
    """

    __slots__ = ("fn", "args", "time", "cancelled", "fired", "label", "_scheduler")

    def __init__(
        self,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        time: float,
        label: str = "",
    ) -> None:
        self.fn = fn
        self.args = args
        self.time = time
        self.cancelled = False
        self.fired = False
        self.label = label
        self._scheduler: "Scheduler | None" = None

    def cancel(self) -> None:
        """Prevent the event from running (no-op if it already ran)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._pending -= 1

    @property
    def active(self) -> bool:
        """True while the event is still pending."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"<EventHandle {self.label or self.fn.__name__} @{self.time} {state}>"


class Scheduler:
    """Virtual-time event queue.

    Typical use::

        sched = Scheduler()
        sched.call_at(5.0, deliver, msg)
        handle = sched.call_after(2.0, timeout_fires)
        handle.cancel()
        sched.run()          # runs to quiescence
        sched.now            # final virtual time

    The scheduler never advances time on its own: :meth:`run`,
    :meth:`run_until` and :meth:`step` pop events in order and set the
    clock to each event's timestamp before invoking it.
    """

    def __init__(self) -> None:
        # (time, seq, handle) tuples; seq is unique so comparison never
        # reaches the handle.
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._now = 0.0
        self._events_run = 0
        self._pending = 0
        self._max_events = 10_000_000

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (determinism fingerprint)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of scheduled events still active — O(1)."""
        return self._pending

    def call_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``.

        Scheduling in the past is a programming error and raises
        ``ValueError`` rather than silently reordering history.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        handle = EventHandle(fn, args, time, label=label)
        handle._scheduler = self
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    def call_after(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after a relative ``delay >= 0``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args, label=label)

    def call_fixed(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule a *non-cancellable* event at absolute time ``time``.

        The hot-path sibling of :meth:`call_at`: no :class:`EventHandle`
        is allocated, the heap entry carries a bare ``(fn, args)`` tuple.
        Used by the network for message deliveries, which are never
        cancelled (a crash drops the message at delivery time instead).
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._queue, (time, self._seq, (fn, args)))

    def call_fixed_after(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule a *non-cancellable* event after a relative ``delay >= 0``.

        The hot-path sibling of :meth:`call_after`, as :meth:`call_fixed`
        is of :meth:`call_at`: no :class:`EventHandle` is allocated.  Used
        for timers that are armed once and never cancelled (failure-plan
        actions, fire-immediately protocol timers); ``pending`` and
        ``events_run`` accounting is identical to the handle-carrying path.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.call_fixed(self._now + delay, fn, *args)

    def call_fixed_until(
        self, time: float, deadline: float, fn: Callable[..., None], *args: Any
    ) -> bool:
        """Deadline-gated :meth:`call_fixed`: schedule only before ``deadline``.

        Returns True if the event was scheduled, False if ``time`` is at
        or past ``deadline`` (nothing is scheduled, no handle exists).
        This is the open-loop traffic engine's admission hook: a
        self-re-arming arrival chain calls this with its stream's end
        time and simply stops being scheduled when the service window
        closes — no sentinel events, no cancellation sweep.
        """
        if time >= deadline:
            return False
        self.call_fixed(time, fn, *args)
        return True

    def step(self) -> bool:
        """Run the single next pending event.

        Returns:
            True if an event ran, False if the queue was empty.
        """
        queue = self._queue
        while queue:
            time, _seq, handle = heapq.heappop(queue)
            if type(handle) is tuple:
                # call_fixed entry: not cancellable, no flags to update.
                self._now = time
                self._pending -= 1
                self._events_run += 1
                if self._events_run > self._max_events:
                    raise RuntimeError(
                        f"simulation exceeded {self._max_events} events; "
                        "likely a livelock (retry loop without progress)"
                    )
                handle[0](*handle[1])
                return True
            if handle.cancelled:
                # counter already decremented at cancel()
                continue
            self._now = time
            handle.fired = True
            self._pending -= 1
            self._events_run += 1
            if self._events_run > self._max_events:
                raise RuntimeError(
                    f"simulation exceeded {self._max_events} events; "
                    "likely a livelock (retry loop without progress)"
                )
            handle.fn(*handle.args)
            return True
        return False

    def run(self) -> float:
        """Run until the queue drains; returns the final virtual time."""
        while self.step():
            pass
        return self._now

    def run_until(self, deadline: float) -> float:
        """Run all events with ``time <= deadline``; advance clock to deadline.

        Events scheduled beyond the deadline stay queued, so a run can be
        resumed (used by experiments that inject failures mid-protocol and
        by the re-entrancy benchmarks).
        """
        while self._queue:
            time, _seq, handle = self._queue[0]
            if type(handle) is not tuple and handle.cancelled:
                heapq.heappop(self._queue)
                continue
            if time > deadline:
                break
            self.step()
        self._now = max(self._now, deadline)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler now={self._now} pending={self.pending}>"
