"""Named, independently seeded random streams.

Every stochastic component (network delay, message loss, workload
generation, failure schedules) draws from its *own* ``random.Random``
derived from the run seed plus the component name.  This gives the two
properties large simulation studies need:

* **Reproducibility** — the same seed replays the same run bit-for-bit.
* **Insensitivity** — adding a draw to one component (say, jitter on one
  link) does not shift the sequence seen by any other component, so
  counterexample scenarios stay stable as the library evolves.
"""

from __future__ import annotations

import hashlib
import random


def _derive(seed: int, name: str) -> int:
    """Derive a 64-bit child seed from (seed, name) via SHA-256.

    ``hash()`` is avoided on purpose: it is salted per process for
    strings, which would destroy cross-run reproducibility.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named random streams for one simulation run."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The run seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive(self._seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of ours.

        Used when one experiment spawns many sub-runs (e.g. the
        availability sweep runs hundreds of scenarios from one seed).
        """
        return RngRegistry(_derive(self._seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self._seed} streams={sorted(self._streams)}>"
