"""The paper's quorum-based commit and termination protocols (S12–S15).

* :mod:`repro.protocols.qtp.quorums` — the data-item-vote quorum
  predicates and the two termination rules (Fig. 5 and Fig. 8).
* :mod:`repro.protocols.qtp.commit` — commit protocols 1 and 2
  (Fig. 9): the coordinator sends COMMIT as soon as the PC-ACKs it
  holds make an abort quorum impossible forever.
"""

from repro.protocols.qtp.commit import QTP1Engine, QTP2Engine
from repro.protocols.qtp.generalized import PrimaryTerminationRule, QTPPrimaryEngine
from repro.protocols.qtp.quorums import (
    TerminationRule1,
    TerminationRule2,
    votes_by_state,
)

__all__ = [
    "PrimaryTerminationRule",
    "QTP1Engine",
    "QTP2Engine",
    "QTPPrimaryEngine",
    "TerminationRule1",
    "TerminationRule2",
    "votes_by_state",
]
