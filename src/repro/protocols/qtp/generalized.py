"""The §5 generalization: quorum termination over primary copies.

Substituting the primary-copy strategy for Gifford voting in the
Fig. 5 skeleton gives a third termination rule.  The structural
translation (strategy access-right -> quorum condition):

=========================  ================================
Gifford (rule 1)           primary-copy
=========================  ================================
w(x) votes for every x     the primaries of every x
r(x) votes for some x      the primary of some x
=========================  ================================

1. COMMIT  — (>= 1 commit state) or (primaries of every x in PC)
2. ABORT   — (>= 1 abort / initial state) or (primary of some x in PA)
3. TRY_COMMIT — (∃ PC) and (primaries of every x among non-PA sites)
4. TRY_ABORT  — (primary of some x among non-PC sites)
5. BLOCK

Safety comes from primary uniqueness exactly as it came from quorum
intersection: once the primaries of every written item sit in PC, no
partition can ever hold "the primary of some item" outside PC — the
abort branches are dead everywhere, forever; and symmetrically an
in-PA primary of x forever bars the all-primaries commit condition.

The matching commit protocol (:class:`QTPPrimaryEngine`) commits as
soon as the PC-ACKs cover every written item's primary — usually far
fewer acks than CP1's write quorums.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.protocols.base import CommitProtocolEngine, Decision, TerminationRule, _CoordinationRound
from repro.protocols.qtp.quorums import votes_by_state
from repro.protocols.states import TxnState
from repro.replication.primary import PrimaryCopyStrategy


class PrimaryTerminationRule(TerminationRule):
    """Fig. 5's skeleton instantiated over the primary-copy strategy."""

    name = "qtp-primary"

    def __init__(self, strategy: PrimaryCopyStrategy) -> None:
        self.strategy = strategy

    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants: Iterable[int] | None = None,
    ) -> Decision:
        if not states:
            return Decision.BLOCK
        groups = votes_by_state(states)
        pc = groups.get(TxnState.PC, set())
        pa = groups.get(TxnState.PA, set())
        if TxnState.C in groups or self.strategy.holds_all_primaries(items, pc):
            return Decision.COMMIT
        if (
            TxnState.A in groups
            or TxnState.Q in groups
            or self.strategy.holds_some_primary(items, pa)
        ):
            return Decision.ABORT
        not_pa = set(states) - pa
        if pc and self.strategy.holds_all_primaries(items, not_pa):
            return Decision.TRY_COMMIT
        not_pc = set(states) - pc
        if self.strategy.holds_some_primary(items, not_pc):
            return Decision.TRY_ABORT
        return Decision.BLOCK

    def commit_round_ok(
        self,
        items: list[str],
        supporters: Iterable[int],
        participants: Iterable[int] | None = None,
    ) -> bool:
        return self.strategy.holds_all_primaries(items, supporters)

    def abort_round_ok(
        self,
        items: list[str],
        supporters: Iterable[int],
        participants: Iterable[int] | None = None,
    ) -> bool:
        return self.strategy.holds_some_primary(items, supporters)


class QTPPrimaryEngine(CommitProtocolEngine):
    """Commit protocol paired with the primary rule: COMMIT once the
    PC-ACKs cover every written item's primary site."""

    family = "qtpp"

    def __init__(self, *args, strategy: PrimaryCopyStrategy, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.strategy = strategy

    def _all_voted_yes(self, round_: _CoordinationRound) -> None:
        self._send_prepare(round_)

    def _on_ack_progress(self, round_: _CoordinationRound) -> None:
        items = sorted(round_.writes)
        if self.strategy.holds_all_primaries(items, round_.ackers):
            self.node.trace(
                "coord-early-commit",
                round_.txn,
                ackers=sorted(round_.ackers),
                of=len(round_.participants),
            )
            self._coord_decide(round_, "commit")

    def _on_ack_timeout(self, round_: _CoordinationRound) -> None:
        self.node.trace(
            "coord-ack-timeout",
            round_.txn,
            missing=[s for s in round_.participants if s not in round_.ackers],
        )
        record = self._records.get(round_.txn)
        if record is not None and not record.decided:
            self.start_election(round_.txn)
