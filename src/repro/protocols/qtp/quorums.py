"""Quorum predicates of the paper's termination protocols (Figs. 5, 8).

Both rules evaluate *data-item* votes: "at least w(x) votes for every
data item x in W(TR) from participants in PC state" and its variants.
The helper :func:`votes_by_state` partitions the polled sites by their
reported local state; everything else is vote arithmetic against the
:class:`~repro.replication.catalog.ReplicaCatalog`.

Decision tables, in the exact top-to-bottom order of the prototypes:

**Termination protocol 1 (Fig. 5)**

1. COMMIT  — (>= 1 commit state) or (>= w(x) votes ∀x from PC sites)
2. ABORT   — (>= 1 abort or initial state) or (>= r(x) votes ∃x from PA sites)
3. TRY_COMMIT — (∃ PC site) and (>= w(x) votes ∀x from sites not in PA)
4. TRY_ABORT  — (>= r(x) votes ∃x from sites not in PC)
5. BLOCK
   Round conditions: commit round needs >= w(x) ∀x from PC-repliers +
   PC-ACKers; abort round needs >= r(x) ∃x from PA-repliers + PA-ACKers.

**Termination protocol 2 (Fig. 8)** — the same skeleton with the
read/write thresholds swapped:

1. COMMIT  — (>= 1 commit state) or (>= r(x) votes ∃x from PC sites)
2. ABORT   — (>= 1 abort or initial state) or (>= w(x) votes ∀x from PA sites)
3. TRY_COMMIT — (∃ PC site) and (>= r(x) votes ∃x from sites not in PA)
4. TRY_ABORT  — (>= w(x) votes ∀x from sites not in PC)
5. BLOCK
   Round conditions: commit round >= r(x) ∃x; abort round >= w(x) ∀x.

Why this is safe (the intuition behind Lemmas 1 and 2): in rule 1, a
commit quorum locks up w(x) votes of every item in PC, and since
``r(x) + w(x) > v(x)`` no other partition can ever gather r(x) votes
for any item from non-PC sites — the abort conditions become
unsatisfiable everywhere, forever.  Rule 2 trades the thresholds the
other way around; ``2 w(x) > v(x)`` makes two concurrent *abort*
quorums harmless (several abort quorums may form — they agree).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.protocols.base import Decision, TerminationRule
from repro.protocols.states import TxnState
from repro.replication.catalog import ReplicaCatalog


def votes_by_state(
    states: Mapping[int, TxnState],
) -> dict[TxnState, set[int]]:
    """Group the polled sites by their reported local state."""
    groups: dict[TxnState, set[int]] = {}
    for site, state in states.items():
        groups.setdefault(state, set()).add(site)
    return groups


class _QtpRuleBase(TerminationRule):
    """Shared plumbing of the two rules: catalog-backed vote tests."""

    def __init__(self, catalog: ReplicaCatalog) -> None:
        self.catalog = catalog

    # -- threshold predicates over a site set --------------------------------

    def _w_all(self, items: list[str], sites: Iterable[int]) -> bool:
        """>= w(x) votes for *every* item x from ``sites``."""
        site_set = set(sites)
        return bool(items) and all(
            self.catalog.votes(x, site_set) >= self.catalog.w(x) for x in items
        )

    def _r_some(self, items: list[str], sites: Iterable[int]) -> bool:
        """>= r(x) votes for *some* item x from ``sites``."""
        site_set = set(sites)
        return any(
            self.catalog.votes(x, site_set) >= self.catalog.r(x) for x in items
        )

    def _r_all(self, items: list[str], sites: Iterable[int]) -> bool:
        """>= r(x) votes for *every* item x (used nowhere by the paper,
        provided for ablation variants)."""
        site_set = set(sites)
        return bool(items) and all(
            self.catalog.votes(x, site_set) >= self.catalog.r(x) for x in items
        )

    def _w_some(self, items: list[str], sites: Iterable[int]) -> bool:
        """>= w(x) votes for *some* item x (ablation helper)."""
        site_set = set(sites)
        return any(
            self.catalog.votes(x, site_set) >= self.catalog.w(x) for x in items
        )


class TerminationRule1(_QtpRuleBase):
    """Termination protocol 1 (Fig. 5)."""

    name = "qtp-termination-1"

    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants: Iterable[int] | None = None,
    ) -> Decision:
        if not states:
            return Decision.BLOCK
        groups = votes_by_state(states)
        pc = groups.get(TxnState.PC, set())
        pa = groups.get(TxnState.PA, set())
        if TxnState.C in groups or self._w_all(items, pc):
            return Decision.COMMIT
        if (
            TxnState.A in groups
            or TxnState.Q in groups
            or self._r_some(items, pa)
        ):
            return Decision.ABORT
        not_pa = set(states) - pa
        if pc and self._w_all(items, not_pa):
            return Decision.TRY_COMMIT
        not_pc = set(states) - pc
        if self._r_some(items, not_pc):
            return Decision.TRY_ABORT
        return Decision.BLOCK

    def commit_round_ok(
        self, items: list[str], supporters: Iterable[int], participants=None
    ) -> bool:
        return self._w_all(items, supporters)

    def abort_round_ok(
        self, items: list[str], supporters: Iterable[int], participants=None
    ) -> bool:
        return self._r_some(items, supporters)


class TerminationRule2(_QtpRuleBase):
    """Termination protocol 2 (Fig. 8) — thresholds swapped."""

    name = "qtp-termination-2"

    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants: Iterable[int] | None = None,
    ) -> Decision:
        if not states:
            return Decision.BLOCK
        groups = votes_by_state(states)
        pc = groups.get(TxnState.PC, set())
        pa = groups.get(TxnState.PA, set())
        if TxnState.C in groups or self._r_some(items, pc):
            return Decision.COMMIT
        if (
            TxnState.A in groups
            or TxnState.Q in groups
            or self._w_all(items, pa)
        ):
            return Decision.ABORT
        not_pa = set(states) - pa
        if pc and self._r_some(items, not_pa):
            return Decision.TRY_COMMIT
        not_pc = set(states) - pc
        if self._w_all(items, not_pc):
            return Decision.TRY_ABORT
        return Decision.BLOCK

    def commit_round_ok(
        self, items: list[str], supporters: Iterable[int], participants=None
    ) -> bool:
        return self._r_some(items, supporters)

    def abort_round_ok(
        self, items: list[str], supporters: Iterable[int], participants=None
    ) -> bool:
        return self._w_all(items, supporters)
