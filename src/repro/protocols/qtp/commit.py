"""The paper's quorum-based commit protocols 1 and 2 (Fig. 9) — S14.

Both follow the 3PC message flow, but the coordinator sends COMMIT
*before* all PC-ACKs arrive — as soon as the acknowledged sites make an
abort quorum impossible for the rest of time:

* **Commit protocol 1** (pairs with termination rule 1): wait for
  PC-ACKs from sites holding at least ``w(x)`` votes for **every** item
  x in the writeset.  Once those sites are in PC, no partition can ever
  gather ``r(x)`` votes for any x from non-PC sites
  (``r(x) + w(x) > v(x)``), so rule 1's abort branches are dead.
* **Commit protocol 2** (pairs with termination rule 2): wait for
  PC-ACKs worth at least ``r(x)`` votes for **some** item x.  Rule 2's
  abort branches need ``w(x)`` votes for every x from non-PC sites, and
  ``r(x) + w(x) > v(x)`` makes that impossible once r(x) votes of some
  x sit in PC.  Since ``r(x) <= w(x)`` in any sensible assignment, CP2
  commits no later — usually strictly earlier — than CP1 (benchmark E12
  quantifies the gap).

If the ack window closes without the quorum, "the termination protocol
will be repeated again" (paper §3.1): the coordinator re-enters via the
election machinery rather than deciding unilaterally.
"""

from __future__ import annotations

from repro.protocols.base import CommitProtocolEngine, _CoordinationRound


class _QuorumCommitEngine(CommitProtocolEngine):
    """Shared early-commit machinery of CP1 and CP2."""

    def _all_voted_yes(self, round_: _CoordinationRound) -> None:
        self._send_prepare(round_)

    def _commit_quorum_reached(self, round_: _CoordinationRound) -> bool:
        """Variant-specific PC-ACK sufficiency test."""
        raise NotImplementedError

    def _on_ack_progress(self, round_: _CoordinationRound) -> None:
        if self._commit_quorum_reached(round_):
            self.node.trace(
                "coord-early-commit",
                round_.txn,
                ackers=sorted(round_.ackers),
                of=len(round_.participants),
            )
            self._coord_decide(round_, "commit")

    def _on_ack_timeout(self, round_: _CoordinationRound) -> None:
        self.node.trace(
            "coord-ack-timeout",
            round_.txn,
            missing=[s for s in round_.participants if s not in round_.ackers],
        )
        record = self._records.get(round_.txn)
        if record is not None and not record.decided:
            self.start_election(round_.txn)


class QTP1Engine(_QuorumCommitEngine):
    """Commit protocol 1: COMMIT after ``w(x)`` PC-ACK votes for every x."""

    family = "qtp1"

    def _commit_quorum_reached(self, round_: _CoordinationRound) -> bool:
        items = sorted(round_.writes)
        return all(
            self.catalog.votes(x, round_.ackers) >= self.catalog.w(x) for x in items
        )


class QTP2Engine(_QuorumCommitEngine):
    """Commit protocol 2: COMMIT after ``r(x)`` PC-ACK votes for some x."""

    family = "qtp2"

    def _commit_quorum_reached(self, round_: _CoordinationRound) -> bool:
        items = sorted(round_.writes)
        return any(
            self.catalog.votes(x, round_.ackers) >= self.catalog.r(x) for x in items
        )
