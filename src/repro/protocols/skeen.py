"""Skeen's quorum-based commit protocol [16] — baseline S11.

The comparison target of the paper.  Each *site* is assigned votes; a
partition may commit an in-doubt transaction only if sites weighing a
commit quorum ``Vc`` cooperate, and abort only with an abort quorum
``Va``, where ``Vc + Va > V`` (the total).  The quorums are therefore
**site-level and transaction-independent** — the protocol never looks
at which data items the transaction wrote, which is precisely the
deficiency Example 1 exposes: all three partitions hold fewer than
``min(Vc, Va)`` votes, the transaction blocks everywhere, and items x
and y are inaccessible even in partitions holding read or write quorums
for them.

Normal operation is the 3PC message flow; the difference is the
termination rule below (and, symmetrically to the paper's protocols,
a PA state used while forming abort quorums).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError
from repro.protocols.base import (
    CommitProtocolEngine,
    Decision,
    TerminationRule,
    _CoordinationRound,
)
from repro.protocols.states import TxnState


class SkeenQuorumRule(TerminationRule):
    """Site-vote commit/abort quorum rule of [16].

    Quorums are sized against the *transaction's participant set*: a
    transaction touching three sites needs quorums out of those three
    sites' votes, not the whole installation's.  Explicit ``vc`` /
    ``va`` pin the quorums globally (the paper's Example 1 does this:
    Vc=5, Va=4 over all eight participants); leaving them ``None``
    selects the majority-style default per transaction:
    ``Vc = floor(Vp / 2) + 1`` and ``Va = Vp - Vc + 1`` where ``Vp`` is
    the participants' total votes.
    """

    name = "skeen-site-quorum"

    def __init__(
        self,
        site_votes: Mapping[int, int],
        vc: int | None = None,
        va: int | None = None,
    ) -> None:
        """Configure the weighted site votes.

        Args:
            site_votes: votes assigned to each site.
            vc: explicit commit quorum, or None for the per-transaction
                majority default.
            va: explicit abort quorum, or None for the complement
                default.

        Raises:
            ConfigurationError: for explicit quorums violating
                ``Vc + Va > V`` or basic sanity.
        """
        total = sum(site_votes.values())
        if vc is not None or va is not None:
            if vc is None or va is None:
                raise ConfigurationError("give both quorums or neither")
            if vc <= 0 or va <= 0:
                raise ConfigurationError("quorums must be positive")
            if vc + va <= total:
                raise ConfigurationError(
                    f"Vc + Va = {vc + va} must exceed the total votes V = {total}"
                )
            if vc > total or va > total:
                raise ConfigurationError("a quorum exceeds the total votes")
        self._votes = dict(site_votes)
        self.vc = vc
        self.va = va

    def add_site(self, site: int, votes: int = 1) -> None:
        """Admit a joining site's votes (elastic membership).

        Adaptive (per-transaction) quorums simply see the larger pool.
        Explicitly pinned quorums must keep covering the installation:
        growing the total would let ``Vc + Va <= V``, so a pinned rule
        rejects joins rather than silently weakening itself.

        Raises:
            ConfigurationError: non-positive votes, a duplicate site, or
                pinned quorums that the enlarged total would invalidate.
        """
        if votes <= 0:
            raise ConfigurationError(f"site {site} votes must be positive")
        if site in self._votes:
            raise ConfigurationError(f"site {site} already holds votes")
        if self.vc is not None and self.va is not None:
            total = sum(self._votes.values()) + votes
            if self.vc + self.va <= total:
                raise ConfigurationError(
                    f"admitting site {site} raises the vote total to {total}, "
                    f"invalidating the pinned quorums Vc={self.vc}, Va={self.va}"
                )
        self._votes[site] = votes

    def discard_site(self, site: int) -> None:
        """Withdraw a site's votes (rollback of a failed join)."""
        self._votes.pop(site, None)

    def _weight(self, sites: Iterable[int]) -> int:
        return sum(self._votes.get(s, 0) for s in set(sites))

    def _quorums(self, participants: Iterable[int] | None) -> tuple[int, int]:
        """Effective (Vc, Va) for this transaction."""
        if self.vc is not None and self.va is not None:
            return self.vc, self.va
        pool = self._votes if participants is None else participants
        total = self._weight(pool)
        vc = total // 2 + 1
        return vc, total - vc + 1

    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants: Iterable[int] | None = None,
    ) -> Decision:
        if not states:
            return Decision.BLOCK
        vc, va = self._quorums(participants)
        by_state: dict[TxnState, set[int]] = {}
        for site, state in states.items():
            by_state.setdefault(state, set()).add(site)
        pc = by_state.get(TxnState.PC, set())
        pa = by_state.get(TxnState.PA, set())
        if TxnState.C in by_state or self._weight(pc) >= vc:
            return Decision.COMMIT
        if (
            TxnState.A in by_state
            or TxnState.Q in by_state
            or self._weight(pa) >= va
        ):
            return Decision.ABORT
        not_pa = set(states) - pa
        if pc and self._weight(not_pa) >= vc:
            return Decision.TRY_COMMIT
        not_pc = set(states) - pc
        if self._weight(not_pc) >= va:
            return Decision.TRY_ABORT
        return Decision.BLOCK

    def commit_round_ok(
        self,
        items: list[str],
        supporters: Iterable[int],
        participants: Iterable[int] | None = None,
    ) -> bool:
        vc, __ = self._quorums(participants)
        return self._weight(supporters) >= vc

    def abort_round_ok(
        self,
        items: list[str],
        supporters: Iterable[int],
        participants: Iterable[int] | None = None,
    ) -> bool:
        __, va = self._quorums(participants)
        return self._weight(supporters) >= va


class SkeenEngine(CommitProtocolEngine):
    """[16]'s engine: 3PC-style flow with the site-quorum termination rule."""

    family = "skq"

    def _all_voted_yes(self, round_: _CoordinationRound) -> None:
        self._send_prepare(round_)

    def _on_ack_progress(self, round_: _CoordinationRound) -> None:
        if set(round_.participants) <= round_.ackers:
            self._coord_decide(round_, "commit")

    def _on_ack_timeout(self, round_: _CoordinationRound) -> None:
        """Missing acks: fall to the termination protocol (quorum decides)."""
        self.node.trace(
            "coord-ack-timeout",
            round_.txn,
            missing=[s for s in round_.participants if s not in round_.ackers],
        )
        record = self._records.get(round_.txn)
        if record is not None and not record.decided:
            self.start_election(round_.txn)
