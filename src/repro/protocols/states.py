"""Local transaction states and the Fig. 6 transition relation.

The paper's protocols use six local states:

=====  ==================  ===========================================
state  name                meaning at a participant
=====  ==================  ===========================================
Q      initial             received the request, has not voted
W      wait                voted 'yes', awaiting the outcome
PA     prepare-to-abort    relinquished its right to join a *commit*
                           quorum (new state introduced by this paper)
PC     prepare-to-commit   relinquished its right to join an *abort*
                           quorum (the 3PC buffer state)
A      abort               aborted — terminal, irrevocable
C      commit              committed — terminal, irrevocable
=====  ==================  ===========================================

Two classifications drive every protocol decision:

* **committable** — a state a site may only occupy once *all* sites
  have voted yes.  Here: PC and C.  (W is noncommittable: a site in W
  knows only its own vote.)
* **terminal** — A and C; once entered, never left.

The transition relation below is exactly Fig. 6 of the paper.  Note the
deliberate *absence* of PC -> PA and PA -> PC: a site that joined the
formation of one kind of quorum must never join the other kind, which
is the fact Example 3's counterexample (and our test
``test_example3_two_coordinators``) turns on.
"""

from __future__ import annotations

import enum


class TxnState(enum.Enum):
    """Local state of one transaction at one participant."""

    Q = "initial"
    W = "wait"
    PA = "prepare-to-abort"
    PC = "prepare-to-commit"
    A = "abort"
    C = "commit"

    def __str__(self) -> str:
        return self.name


#: committable states: occupied only after a unanimous yes vote.
COMMITTABLE: frozenset[TxnState] = frozenset({TxnState.PC, TxnState.C})

#: terminal (irrevocable) states.
TERMINAL: frozenset[TxnState] = frozenset({TxnState.A, TxnState.C})

#: the Fig. 6 transition relation.  W splits on quorum participation:
#: W -> PC (joins a commit quorum), W -> PA (joins an abort quorum),
#: W -> A (abort command without quorum participation, e.g. the normal
#: commit protocol's abort path).  Q -> W on a yes vote, Q -> A on a no
#: vote / abort.  PC -> C and PC -> A? No: a site in PC may still be
#: aborted only via a command from a coordinator that formed an abort
#: quorum *without* it — but Fig. 6 routes that through the command
#: itself; we model commands to PC as PC -> C (commit) and PC -> A
#: (abort), since termination protocol 1's immediate-abort branch can
#: legitimately abort a PC site (e.g. some other participant is in Q).
LEGAL_TRANSITIONS: frozenset[tuple[TxnState, TxnState]] = frozenset(
    {
        (TxnState.Q, TxnState.W),
        (TxnState.Q, TxnState.A),
        (TxnState.W, TxnState.PC),
        (TxnState.W, TxnState.PA),
        (TxnState.W, TxnState.A),
        (TxnState.W, TxnState.C),  # quorum commit: COMMIT can reach a W site
        (TxnState.PC, TxnState.C),
        (TxnState.PC, TxnState.A),
        (TxnState.PA, TxnState.A),
        (TxnState.PA, TxnState.C),  # symmetric: delayed COMMIT after immediate-commit branch
    }
)

#: the transitions Example 3 shows must NOT exist.
FORBIDDEN_TRANSITIONS: frozenset[tuple[TxnState, TxnState]] = frozenset(
    {
        (TxnState.PC, TxnState.PA),
        (TxnState.PA, TxnState.PC),
        (TxnState.A, TxnState.C),
        (TxnState.C, TxnState.A),
    }
)


def is_committable(state: TxnState) -> bool:
    """True for states a site may occupy only after a unanimous yes."""
    return state in COMMITTABLE


def is_terminal(state: TxnState) -> bool:
    """True for the irrevocable states A and C."""
    return state in TERMINAL


def can_transition(src: TxnState, dst: TxnState) -> bool:
    """True when ``src -> dst`` is a legal Fig. 6 transition.

    Self-loops are legal everywhere (re-delivered commands are absorbed
    idempotently); any terminal -> different-state move is illegal.
    """
    if src == dst:
        return True
    return (src, dst) in LEGAL_TRANSITIONS
