"""Two-phase commit (Fig. 1) with cooperative termination — baseline S9.

Normal operation: the coordinator distributes the update values in
vote-req messages; every participant votes; the transaction commits iff
every vote is yes; the coordinator broadcasts the decision.

Termination: 2PC has no committable buffer state, so a participant that
voted yes can do nothing on its own.  The classical *cooperative*
termination protocol is modelled as a :class:`TerminationRule`:

* some reachable participant already knows the decision → adopt it;
* some reachable participant is still in the initial state Q (it never
  voted, so the coordinator cannot have decided commit) → abort;
* otherwise — everyone reachable is in W — **block**.

That last line is 2PC's defining weakness (paper §1): a coordinator
crash after the votes leaves every partition of W-state participants
blocked, holding their locks.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import (
    CommitProtocolEngine,
    Decision,
    TerminationRule,
    _CoordinationRound,
)
from repro.protocols.states import TxnState


class CooperativeTerminationRule(TerminationRule):
    """Decision table of 2PC cooperative termination."""

    name = "2pc-cooperative"

    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants=None,
    ) -> Decision:
        reported = set(states.values())
        if TxnState.C in reported:
            return Decision.COMMIT
        if TxnState.A in reported or TxnState.Q in reported:
            return Decision.ABORT
        if not states:
            return Decision.BLOCK
        return Decision.BLOCK


class TwoPCEngine(CommitProtocolEngine):
    """2PC engine: no prepare phase; the vote outcome *is* the decision."""

    family = "2pc"

    def _all_voted_yes(self, round_: _CoordinationRound) -> None:
        """Unanimous yes: 2PC commits immediately (the commit point is
        the coordinator's log record)."""
        self._coord_decide(round_, "commit")

    def _recover_undecided_coordinator(self, txn, writes, participants) -> None:
        """Classical 2PC presumed-abort recovery.

        The commit point is the coordinator's log record; its absence
        proves no participant can have learned a commit, so aborting is
        safe — and it is the *only* way to unblock participants stuck
        in W (2PC's cooperative termination cannot decide from W
        states).
        """
        self.wal.force(txn, "abort", role="coordinator")
        self.node.trace("coord-recovery", txn, rebroadcast="abort", presumed=True)
        self.node.multicast(participants, self._m("abort"), txn)
