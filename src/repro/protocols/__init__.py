"""Commit and termination protocols (systems S8–S15).

Layout:

* :mod:`repro.protocols.states` — the local-state vocabulary
  (Q/W/PA/PC/A/C) and the legal transition relation of Fig. 6.
* :mod:`repro.protocols.base` — shared coordinator / participant
  machinery: per-transaction records, decision logging, timers.
* :mod:`repro.protocols.twopc` — two-phase commit (Fig. 1) with
  cooperative termination; the blocking baseline.
* :mod:`repro.protocols.threepc` — three-phase commit (Fig. 2) with
  Skeen's site-failure termination protocol; inconsistent under
  partitioning (Example 2).
* :mod:`repro.protocols.skeen` — Skeen's site-vote quorum commit
  protocol [16]; blocks whole partitions (Example 1).
* :mod:`repro.protocols.qtp` — the paper's contribution: data-item-vote
  quorum predicates, commit protocols 1–2 (Fig. 9) and termination
  protocols 1–2 (Fig. 5 / Fig. 8).
"""

from repro.protocols.states import TxnState, is_committable, can_transition

__all__ = ["TxnState", "is_committable", "can_transition"]
