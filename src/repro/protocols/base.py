"""Shared commit/termination machinery (system S8).

Every protocol family in this library — 2PC, 3PC, Skeen's site-quorum
protocol [16], and the paper's quorum protocols QTP1/QTP2 — shares the
same skeleton:

* a **coordinator** at the origin site distributes the update values
  (vote-req), collects votes, possibly runs a prepare round, and
  broadcasts the decision;
* **participants** (the sites hosting copies of the writeset items) run
  the six-state machine Q/W/PA/PC/A/C of Fig. 6;
* when the normal procedure is interrupted, a **termination protocol**
  elects a coordinator per partition (:class:`ElectionMixin`) and runs
  the three-phase poll / prepare / command structure of Fig. 5 and
  Fig. 8.

What actually *differs* between the families is captured by two small
strategy objects:

* the engine subclass's ``_all_voted_yes`` (one method: what the
  coordinator does after a unanimous yes), and
* a :class:`TerminationRule` — the pure decision logic of the
  termination protocol (the tables in Fig. 5 / Fig. 8, Skeen's
  site-vote rule, 3PC's committable-present rule, 2PC's cooperative
  rule).  Rules are pure functions over the polled states, which makes
  them directly unit- and property-testable.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.election.bully import ElectionMixin
from repro.net.message import Message
from repro.protocols.states import TxnState, can_transition
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node
    from repro.replication.catalog import ReplicaCatalog
    from repro.sim.scheduler import EventHandle


# ----------------------------------------------------------------------
# termination rules
# ----------------------------------------------------------------------


class Decision(enum.Enum):
    """Outcome of evaluating a termination rule over polled states."""

    COMMIT = "commit"  # decide commit immediately
    ABORT = "abort"  # decide abort immediately
    TRY_COMMIT = "try-commit"  # run a PREPARE-TO-COMMIT round
    TRY_ABORT = "try-abort"  # run a PREPARE-TO-ABORT round
    BLOCK = "block"  # cannot terminate; wait for recovery


class TerminationRule(ABC):
    """The pure decision core of one termination protocol.

    ``states`` maps each *reachable, active* participant to the local
    state it reported in phase 1; ``items`` is the transaction's
    writeset W(TR); ``participants`` is the transaction's full
    participant set (site-quorum rules size their quorums against it —
    the data-item rules get their totals from the catalog and ignore
    it).  Implementations must be side-effect free.
    """

    #: short name used in traces and experiment tables.
    name: str = "abstract"

    @abstractmethod
    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants: Iterable[int] | None = None,
    ) -> Decision:
        """Phase-2 decision given phase-1 state reports."""

    def commit_round_ok(
        self,
        items: list[str],
        supporters: Iterable[int],
        participants: Iterable[int] | None = None,
    ) -> bool:
        """Phase 3a: may COMMIT be sent given PC-repliers + PC-ACKers?"""
        return True

    def abort_round_ok(
        self,
        items: list[str],
        supporters: Iterable[int],
        participants: Iterable[int] | None = None,
    ) -> bool:
        """Phase 3b: may ABORT be sent given PA-repliers + PA-ACKers?"""
        return True


# ----------------------------------------------------------------------
# hooks into the database layer
# ----------------------------------------------------------------------


class ProtocolHooks:
    """Callbacks the protocol engine makes into its host site.

    The default implementation votes yes and does nothing, which is
    what the protocol-level tests use; the database layer overrides it
    to take locks, apply committed writes, and release locks.
    """

    def vote(self, txn: str, writes: Mapping[str, tuple[Any, int]]) -> bool:
        """Return this site's vote on the transaction (True = yes)."""
        return True

    def apply_commit(self, txn: str, writes: Mapping[str, tuple[Any, int]]) -> None:
        """The transaction committed here: install writes, release locks."""

    def apply_abort(self, txn: str) -> None:
        """The transaction aborted here: discard effects, release locks."""


# ----------------------------------------------------------------------
# per-transaction participant record
# ----------------------------------------------------------------------


@dataclass
class TxnRecord:
    """Everything one site knows about one in-flight transaction.

    Volatile except where noted; the durable subset lives in the WAL
    (begin payload, vote, pc/pa entry, decision) and is reconstructed
    by :func:`repro.storage.recovery.recover_protocol_states`.
    """

    txn: str
    coordinator: int
    participants: list[int]
    writes: dict[str, tuple[Any, int]]
    state: TxnState = TxnState.Q
    blocked: bool = False

    # election bookkeeping (ElectionMixin)
    electing: bool = False
    heard_higher: bool = False
    election_rounds: int = 0

    # termination-coordinator bookkeeping
    terminating: bool = False
    term_attempt: int = 0
    term_states: dict[int, TxnState] = field(default_factory=dict)
    term_supporters: set[int] = field(default_factory=set)
    term_mode: str = ""

    _timers: dict[str, "EventHandle"] = field(default_factory=dict)

    @property
    def decided(self) -> bool:
        """True once the local state is terminal (C or A)."""
        return self.state in (TxnState.C, TxnState.A)

    @property
    def items(self) -> list[str]:
        """The writeset item names W(TR), sorted."""
        return sorted(self.writes)

    def set_timer(
        self,
        node: "Node",
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        label: str,
    ) -> None:
        """(Re)arm a named timer; the previous timer of that label dies."""
        self.cancel_timer(label)
        if delay <= 0:
            # fires on the very next tick and is never cancelled (nothing
            # holds a handle to it), so it can skip the EventHandle
            # allocation entirely.
            node.network.scheduler.call_fixed_after(0, fn, *args)
            return
        self._timers[label] = node.set_timer(delay, fn, *args, label=label)

    def cancel_timer(self, label: str) -> None:
        """Cancel one named timer if armed."""
        handle = self._timers.pop(label, None)
        if handle is not None:
            handle.cancel()

    def cancel_all_timers(self) -> None:
        """Cancel every timer (on decision or crash)."""
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()


@dataclass
class _CoordinationRound:
    """Coordinator-side volatile state for the original commit attempt."""

    txn: str
    writes: dict[str, tuple[Any, int]]
    participants: list[int]
    phase: str = "voting"  # voting -> preparing -> done
    votes: dict[int, bool] = field(default_factory=dict)
    ackers: set[int] = field(default_factory=set)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


class CommitProtocolEngine(ElectionMixin, ABC):
    """One site's commit + termination protocol instance.

    Subclasses set :attr:`family` (the message-type namespace) and
    implement :meth:`_all_voted_yes`; everything else — participant
    state machine, decision handling, termination, election — is
    shared and driven by the :class:`TerminationRule`.
    """

    #: message-type namespace, e.g. ``"qtp1"``; set by subclasses.
    family: str = "abstract"

    def __init__(
        self,
        node: "Node",
        wal: WriteAheadLog,
        catalog: "ReplicaCatalog",
        rule: TerminationRule,
        hooks: ProtocolHooks | None = None,
        enforce_ignore_rules: bool = True,
    ) -> None:
        """Create the engine and install its message handlers.

        Args:
            node: the site's network actor.
            wal: the site's write-ahead log.
            catalog: the replica catalog (vote oracle).
            rule: termination decision logic for this protocol family.
            hooks: database-layer callbacks (default: vote yes, no-op).
            enforce_ignore_rules: when False, participants respond to
                PREPARE-TO-COMMIT in PA and PREPARE-TO-ABORT in PC —
                the deliberately broken variant of Example 3.  Never
                disable outside that experiment.
        """
        self.node = node
        self.wal = wal
        self.catalog = catalog
        self.rule = rule
        self.hooks = hooks or ProtocolHooks()
        self.enforce_ignore_rules = enforce_ignore_rules
        self._records: dict[str, TxnRecord] = {}
        self._rounds: dict[str, _CoordinationRound] = {}
        self._term_attempt_counter = 0
        self._T = node.network.T
        self._eps = 1e-6 * self._T
        self._install_handlers()

    # -- handler installation -------------------------------------------------

    def _install_handlers(self) -> None:
        fam = self.family
        self.node.on(f"{fam}.vote-req", self._on_vote_req)
        self.node.on(f"{fam}.vote", self._on_vote)
        self.node.on(f"{fam}.prepare", self._on_prepare)
        self.node.on(f"{fam}.ack", self._on_prepare_ack)
        self.node.on(f"{fam}.commit", self._on_commit_cmd)
        self.node.on(f"{fam}.abort", self._on_abort_cmd)
        self.node.on(f"{fam}.t.state-req", self._on_term_state_req)
        self.node.on(f"{fam}.t.state", self._on_term_state)
        self.node.on(f"{fam}.t.ptc", self._on_term_prepare_commit)
        self.node.on(f"{fam}.t.pta", self._on_term_prepare_abort)
        self.node.on(f"{fam}.t.pc-ack", self._on_term_pc_ack)
        self.node.on(f"{fam}.t.pa-ack", self._on_term_pa_ack)
        self.node.on(f"{fam}.t.blocked", self._on_term_blocked)
        self._install_election_handlers()

    # -- small helpers ---------------------------------------------------------

    def _m(self, kind: str) -> str:
        return f"{self.family}.{kind}"

    def record(self, txn: str) -> TxnRecord | None:
        """The participant record for ``txn`` at this site, if any."""
        return self._records.get(txn)

    def records(self) -> dict[str, TxnRecord]:
        """All participant records at this site (live view)."""
        return self._records

    @property
    def site(self) -> int:
        """This engine's site id."""
        return self.node.node_id

    def _transition(self, record: TxnRecord, dst: TxnState, via: str) -> None:
        src = record.state
        if src == dst:
            return
        if not can_transition(src, dst):
            self.node.trace(
                "illegal-transition", record.txn, src=src.name, dst=dst.name, via=via
            )
        record.state = dst
        self.node.trace("state", record.txn, src=src.name, dst=dst.name, via=via)

    def _arm_watchdog(self, record: TxnRecord, factor: float = 3.0) -> None:
        """Expect coordinator contact within ``factor * T`` or elect."""
        if record.decided or record.blocked:
            return
        record.set_timer(
            self.node,
            factor * self._T + self._eps,
            self.start_election,
            record.txn,
            label="watchdog",
        )

    # ==========================================================================
    # coordinator side: the original commit attempt
    # ==========================================================================

    def begin_commit(
        self,
        txn: str,
        writes: Mapping[str, tuple[Any, int]],
        participants: Iterable[int] | None = None,
    ) -> None:
        """Start the commit procedure for a transaction at this site.

        Args:
            txn: transaction id.
            writes: item -> (new value, new version).
            participants: the sites to involve; defaults to every site
                holding a copy of a writeset item (the paper's "all
                sites which contain data items to be updated").
        """
        writes = dict(writes)
        if participants is None:
            participants = self.catalog.sites_of_any(writes)
        participants = sorted(participants)
        round_ = _CoordinationRound(txn, writes, participants)
        self._rounds[txn] = round_
        # the coordinator's begin record makes the commit attempt itself
        # durable, so a recovered coordinator knows which transactions it
        # left in flight (classical 2PC recovery depends on this).
        self.wal.force(
            txn,
            "begin",
            role="coordinator",
            writes={k: list(v) for k, v in writes.items()},
            participants=participants,
            coordinator=self.site,
        )
        self.node.trace("coord-begin", txn, participants=participants, items=sorted(writes))
        self.node.multicast(
            participants,
            self._m("vote-req"),
            txn,
            writes={k: list(v) for k, v in writes.items()},
            participants=participants,
            coordinator=self.site,
        )
        self.node.set_timer(
            2 * self._T + self._eps, self._vote_window_closed, txn, label="vote-window"
        )

    def _vote_window_closed(self, txn: str) -> None:
        round_ = self._rounds.get(txn)
        if round_ is None or round_.phase != "voting":
            return
        missing = [s for s in round_.participants if s not in round_.votes]
        self.node.trace("coord-vote-timeout", txn, missing=missing)
        self._coord_decide(round_, "abort")

    def _on_vote(self, msg: Message) -> None:
        round_ = self._rounds.get(msg.txn)
        if round_ is None or round_.phase != "voting":
            return
        round_.votes[msg.src] = bool(msg.payload["yes"])
        if not msg.payload["yes"]:
            self._coord_decide(round_, "abort")
            return
        if all(round_.votes.get(s) for s in round_.participants):
            round_.phase = "preparing"
            self._all_voted_yes(round_)

    @abstractmethod
    def _all_voted_yes(self, round_: _CoordinationRound) -> None:
        """Family-specific continuation after a unanimous yes vote."""

    def _send_prepare(self, round_: _CoordinationRound, window_factor: float = 2.0) -> None:
        """Broadcast PREPARE(-TO-COMMIT) and open the ack window."""
        self.node.multicast(round_.participants, self._m("prepare"), round_.txn)
        self.node.set_timer(
            window_factor * self._T + self._eps,
            self._ack_window_closed,
            round_.txn,
            label="ack-window",
        )

    def _on_prepare_ack(self, msg: Message) -> None:
        round_ = self._rounds.get(msg.txn)
        if round_ is None or round_.phase != "preparing":
            return
        round_.ackers.add(msg.src)
        self._on_ack_progress(round_)

    def _on_ack_progress(self, round_: _CoordinationRound) -> None:
        """Family hook: called after each PC-ACK (quorum protocols commit early)."""

    def _ack_window_closed(self, txn: str) -> None:
        round_ = self._rounds.get(txn)
        if round_ is None or round_.phase != "preparing":
            return
        self._on_ack_timeout(round_)

    def _on_ack_timeout(self, round_: _CoordinationRound) -> None:
        """Family hook: ack window expired without the family's condition."""

    def _coord_decide(self, round_: _CoordinationRound, outcome: str) -> None:
        """Coordinator reaches a decision and broadcasts the command."""
        if round_.phase == "done":
            return
        round_.phase = "done"
        prior = self.wal.decision(round_.txn)
        if prior is not None and prior != outcome:
            # A termination attempt on this site already decided the
            # other way while the original round was still collecting
            # replies (e.g. late PC-acks crossing a partition after the
            # watchdog aborted).  Decisions are irrevocable and the
            # terminator has already informed the participants — the
            # original round stands down.
            self.node.trace("coord-stale-round", round_.txn, outcome=outcome, decided=prior)
            return
        self.wal.force(round_.txn, outcome, role="coordinator")
        self.node.trace("coord-decision", round_.txn, outcome=outcome)
        self.node.multicast(round_.participants, self._m(outcome), round_.txn)

    # ==========================================================================
    # participant side: the Fig. 6 state machine
    # ==========================================================================

    def _on_vote_req(self, msg: Message) -> None:
        if msg.txn in self._records:
            return  # duplicate vote-req
        record = self._record_from_payload(msg.txn, msg.payload)
        self.wal.force(
            msg.txn,
            "begin",
            writes={k: list(v) for k, v in record.writes.items()},
            participants=record.participants,
            coordinator=record.coordinator,
        )
        yes = self.hooks.vote(msg.txn, record.writes)
        self.wal.force(msg.txn, "vote", vote="yes" if yes else "no")
        if yes:
            self._transition(record, TxnState.W, via="vote-yes")
            self.node.send(record.coordinator, self._m("vote"), msg.txn, yes=True)
            self._arm_watchdog(record)
        else:
            self.node.send(record.coordinator, self._m("vote"), msg.txn, yes=False)
            self._decide(record, "abort", via="vote-no")

    def _record_from_payload(self, txn: str, payload: Mapping[str, Any]) -> TxnRecord:
        writes = {k: (v[0], v[1]) for k, v in payload["writes"].items()}
        record = TxnRecord(
            txn=txn,
            coordinator=payload["coordinator"],
            participants=list(payload["participants"]),
            writes=writes,
        )
        self._records[txn] = record
        return record

    def _on_prepare(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None:
            return
        if record.state is TxnState.W:
            self.wal.force(msg.txn, "pc")
            self._transition(record, TxnState.PC, via="prepare")
            self.node.send(msg.src, self._m("ack"), msg.txn)
            self._arm_watchdog(record)
        elif record.state is TxnState.PC:
            self.node.send(msg.src, self._m("ack"), msg.txn)  # idempotent re-ack
        # PA / decided: ignore (the Fig. 6 no-PC<->PA rule)

    def _on_commit_cmd(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None:
            return
        self._decide(record, "commit", via=f"command-from-{msg.src}")

    def _on_abort_cmd(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None:
            return
        self._decide(record, "abort", via=f"command-from-{msg.src}")

    def _decide(self, record: TxnRecord, outcome: str, via: str) -> None:
        """Terminate the transaction locally (idempotent, irrevocable).

        A *conflicting* command (COMMIT after a local ABORT or vice
        versa) is recorded as a ``decision-conflict`` trace event and
        otherwise ignored: the first decision stands.  Correct
        protocols never produce conflicts; the deliberately broken
        variants of Examples 2 and 3 do, and the analysis layer counts
        these events as atomicity violations.
        """
        wanted = TxnState.C if outcome == "commit" else TxnState.A
        if record.decided:
            if record.state is not wanted:
                self.node.trace(
                    "decision-conflict",
                    record.txn,
                    have=record.state.name,
                    wanted=wanted.name,
                    via=via,
                )
            return
        self.wal.force(record.txn, outcome)
        self._transition(record, wanted, via=via)
        record.cancel_all_timers()
        record.blocked = False
        record.terminating = False
        if outcome == "commit":
            self.hooks.apply_commit(record.txn, record.writes)
        else:
            self.hooks.apply_abort(record.txn)
        self.node.trace("decision", record.txn, outcome=outcome, via=via)

    # ==========================================================================
    # termination protocol (Figs. 5 and 8; rule-driven)
    # ==========================================================================

    def _run_termination(self, txn: str) -> None:
        """Phase 1: poll every reachable participant for its local state."""
        record = self._records.get(txn)
        if record is None or record.decided:
            return
        record.terminating = True
        self._term_attempt_counter += 1
        record.term_attempt = self._term_attempt_counter
        record.term_states = {}
        record.term_supporters = set()
        record.term_mode = ""
        reachable = self.node.network.reachable_from(self.site, record.participants)
        self.node.trace(
            "term-phase1", txn, attempt=record.term_attempt, polled=reachable
        )
        self.node.multicast(
            reachable,
            self._m("t.state-req"),
            txn,
            attempt=record.term_attempt,
            coordinator=self.site,
            writes={k: list(v) for k, v in record.writes.items()},
            participants=record.participants,
        )
        record.set_timer(
            self.node,
            2 * self._T + self._eps,
            self._term_phase2,
            txn,
            record.term_attempt,
            label="term-phase1",
        )

    def _on_term_state_req(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None:
            # A site with no record *and no durable trace* of the
            # transaction never received the vote-req: it is in the
            # initial state Q — exactly the case the termination rules
            # treat as an immediate abort.  Materialize the record so a
            # later ABORT command has something to act on.  (A durable
            # decision in the WAL means the record was merely not yet
            # rebuilt; answer with the decision, never with Q.)
            record = self._record_from_payload(msg.txn, msg.payload)
            decision = self.wal.decision(msg.txn)
            if decision is not None:
                record.state = TxnState.C if decision == "commit" else TxnState.A
            else:
                self.wal.force(
                    msg.txn,
                    "begin",
                    writes=dict(msg.payload["writes"]),
                    participants=record.participants,
                    coordinator=record.coordinator,
                )
        self.node.send(
            msg.src,
            self._m("t.state"),
            msg.txn,
            attempt=msg.payload["attempt"],
            state=record.state.name,
        )
        if not record.decided:
            self._arm_watchdog(record)

    def _on_term_state(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None or not record.terminating:
            return
        if msg.payload["attempt"] != record.term_attempt:
            return  # stale attempt
        record.term_states[msg.src] = TxnState[msg.payload["state"]]

    def _term_phase2(self, txn: str, attempt: int) -> None:
        record = self._records.get(txn)
        if record is None or record.decided or record.term_attempt != attempt:
            return
        states = dict(record.term_states)
        decision = self.rule.evaluate(
            record.items, states, participants=record.participants
        )
        self.node.trace(
            "term-phase2",
            txn,
            attempt=attempt,
            decision=decision.value,
            states={s: st.name for s, st in sorted(states.items())},
        )
        if decision is Decision.COMMIT:
            self._term_command(record, "commit")
        elif decision is Decision.ABORT:
            self._term_command(record, "abort")
        elif decision is Decision.TRY_COMMIT:
            record.term_mode = "commit-round"
            record.term_supporters = {
                s for s, st in states.items() if st is TxnState.PC
            }
            self._term_prepare_round(record, "t.ptc", states)
        elif decision is Decision.TRY_ABORT:
            record.term_mode = "abort-round"
            record.term_supporters = {
                s for s, st in states.items() if st is TxnState.PA
            }
            self._term_prepare_round(record, "t.pta", states)
        else:
            self._term_block(record)

    def _term_prepare_round(
        self, record: TxnRecord, mtype: str, states: Mapping[int, TxnState]
    ) -> None:
        wait_sites = [s for s, st in states.items() if st is TxnState.W]
        self.node.multicast(wait_sites, self._m(mtype), record.txn, attempt=record.term_attempt)
        record.set_timer(
            self.node,
            2 * self._T + self._eps,
            self._term_round_closed,
            record.txn,
            record.term_attempt,
            label="term-round",
        )

    def _on_term_prepare_commit(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None or record.decided:
            return
        if record.state is TxnState.PA and self.enforce_ignore_rules:
            # "A participant should ignore PREPARE-TO-COMMIT messages if
            # it is in PA state" — the rule Example 3 shows is essential.
            self.node.trace("ignored", msg.txn, mtype="t.ptc", state=record.state.name)
            return
        if record.state not in (TxnState.W, TxnState.PC, TxnState.PA):
            return  # Q never voted; it must not enter a committable state
        if record.state is not TxnState.PC:
            self.wal.force(msg.txn, "pc")
            self._transition(record, TxnState.PC, via=f"t.ptc-from-{msg.src}")
        self.node.send(
            msg.src, self._m("t.pc-ack"), msg.txn, attempt=msg.payload["attempt"]
        )
        self._arm_watchdog(record)

    def _on_term_prepare_abort(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None or record.decided:
            return
        if record.state is TxnState.PC and self.enforce_ignore_rules:
            # "...and ignore PREPARE-TO-ABORT messages if it is in PC state."
            self.node.trace("ignored", msg.txn, mtype="t.pta", state=record.state.name)
            return
        if record.state not in (TxnState.W, TxnState.PA, TxnState.PC):
            return
        if record.state is not TxnState.PA:
            self.wal.force(msg.txn, "pa")
            self._transition(record, TxnState.PA, via=f"t.pta-from-{msg.src}")
        self.node.send(
            msg.src, self._m("t.pa-ack"), msg.txn, attempt=msg.payload["attempt"]
        )
        self._arm_watchdog(record)

    def _on_term_pc_ack(self, msg: Message) -> None:
        self._collect_term_ack(msg, "commit-round")

    def _on_term_pa_ack(self, msg: Message) -> None:
        self._collect_term_ack(msg, "abort-round")

    def _collect_term_ack(self, msg: Message, mode: str) -> None:
        record = self._records.get(msg.txn)
        if record is None or not record.terminating:
            return
        if record.term_mode != mode or msg.payload["attempt"] != record.term_attempt:
            return
        record.term_supporters.add(msg.src)

    def _term_round_closed(self, txn: str, attempt: int) -> None:
        record = self._records.get(txn)
        if record is None or record.decided or record.term_attempt != attempt:
            return
        supporters = set(record.term_supporters)
        if record.term_mode == "commit-round":
            ok = self.rule.commit_round_ok(
                record.items, supporters, participants=record.participants
            )
            outcome = "commit"
        else:
            ok = self.rule.abort_round_ok(
                record.items, supporters, participants=record.participants
            )
            outcome = "abort"
        self.node.trace(
            "term-phase3",
            txn,
            attempt=attempt,
            mode=record.term_mode,
            supporters=sorted(supporters),
            quorum=ok,
        )
        if ok:
            self._term_command(record, outcome)
        else:
            # "else start the election protocol" (Fig. 5) — additional
            # failures happened during the round; re-enter.
            record.terminating = False
            self.start_election(txn)

    def _term_command(self, record: TxnRecord, outcome: str) -> None:
        """Send the final command to every reachable participant."""
        reachable = self.node.network.reachable_from(self.site, record.participants)
        self.node.trace("term-decision", record.txn, outcome=outcome, informed=reachable)
        self.node.multicast(reachable, self._m(outcome), record.txn)
        record.terminating = False

    def _term_block(self, record: TxnRecord) -> None:
        """No quorum is possible in this partition: block the transaction."""
        record.blocked = True
        record.terminating = False
        record.cancel_timer("watchdog")
        record.cancel_timer("elect-defer-watchdog")
        self.node.trace("blocked", record.txn, reason="no-quorum")
        reachable = self.node.network.reachable_from(self.site, record.participants)
        self.node.broadcast(reachable, self._m("t.blocked"), record.txn)

    def _on_term_blocked(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None or record.decided:
            return
        record.blocked = True
        record.cancel_timer("watchdog")
        record.cancel_timer("elect-defer-watchdog")
        self.node.trace("blocked", msg.txn, reason=f"notice-from-{msg.src}")

    # ==========================================================================
    # crash recovery and re-kick
    # ==========================================================================

    def on_crash(self) -> None:
        """Volatile protocol state is lost (records, rounds, timers)."""
        for record in self._records.values():
            record.cancel_all_timers()
        self._records.clear()
        self._rounds.clear()

    def rebuild_from_wal(self) -> list[str]:
        """Reconstruct participant and coordinator roles after recovery.

        Participant records are rebuilt from their durable state (Q, W,
        PC, PA) and armed with a watchdog so the site rejoins
        termination.  Coordinator roles recover by re-broadcasting a
        logged decision, or — for undecided attempts — through the
        family hook :meth:`_recover_undecided_coordinator`.

        Returns the transactions recovered into an undecided
        participant state.
        """
        from repro.storage.recovery import recover_protocol_states

        recovered = []
        undecided = recover_protocol_states(self.wal)
        for begin in self.wal:
            if begin.kind != "begin" or begin.payload.get("role") == "coordinator":
                continue
            txn = begin.txn
            if txn in self._records:
                continue
            decision = self.wal.decision(txn)
            if decision is not None:
                # decided before the crash: rebuild the terminal record
                # so termination polls are answered with C / A, never Q
                # — a recovered committed site reporting "initial" would
                # let a new coordinator abort a committed transaction.
                state = TxnState.C if decision == "commit" else TxnState.A
            else:
                state = undecided.get(txn, TxnState.Q)
            record = TxnRecord(
                txn=txn,
                coordinator=begin.payload["coordinator"],
                participants=list(begin.payload["participants"]),
                writes={k: (v[0], v[1]) for k, v in begin.payload["writes"].items()},
                state=state,
            )
            self._records[txn] = record
            if not record.decided:
                recovered.append(txn)
                self._arm_watchdog(record)
        self._recover_coordinator_roles()
        return recovered

    def _recover_coordinator_roles(self) -> None:
        seen: set[str] = set()
        for begin in self.wal:
            if begin.kind != "begin" or begin.payload.get("role") != "coordinator":
                continue
            if begin.txn in seen:
                continue
            seen.add(begin.txn)
            participants = list(begin.payload["participants"])
            decision = self.wal.decision(begin.txn)
            if decision is not None:
                # the decision may not have reached everyone; re-announce
                # (participants absorb duplicates idempotently)
                self.node.trace("coord-recovery", begin.txn, rebroadcast=decision)
                self.node.multicast(participants, self._m(decision), begin.txn)
            else:
                self._recover_undecided_coordinator(
                    begin.txn,
                    {k: (v[0], v[1]) for k, v in begin.payload["writes"].items()},
                    participants,
                )

    def _recover_undecided_coordinator(
        self,
        txn: str,
        writes: Mapping[str, tuple[Any, int]],
        participants: list[int],
    ) -> None:
        """Family hook: the coordinator crashed before deciding.

        Default: nothing — the three-phase families leave the outcome
        to the termination protocol, which the recovered site rejoins
        as an ordinary participant.  2PC overrides this with the
        classical unilateral abort (safe there because the commit
        point is the coordinator's log record, which is absent).
        """

    def kick(self) -> None:
        """Connectivity changed: retry termination for unresolved txns.

        Clears ``blocked`` and the election-round budget, *invalidates
        any in-flight termination attempt* (its phase-1 poll predates
        the connectivity change, so acting on it could re-block the
        transaction on stale information), then re-arms the watchdog;
        the usual watchdog -> election -> termination chain does the
        rest in the new connectivity epoch.
        """
        for record in self._records.values():
            if record.decided:
                continue
            record.blocked = False
            record.election_rounds = 0
            record.terminating = False
            # orphan the pending phase timers of a stale attempt: they
            # compare against term_attempt and will no-op
            self._term_attempt_counter += 1
            record.term_attempt = self._term_attempt_counter
            record.term_mode = ""
            self._arm_watchdog(record, factor=1.0)
