"""Three-phase commit (Fig. 2) with Skeen's termination protocol — S10.

Normal operation adds the buffer state PC between W and C: after a
unanimous yes the coordinator broadcasts PREPARE, collects PC-ACKs, and
only then broadcasts COMMIT.  No local state is adjacent to both A and
C, which makes 3PC nonblocking under *site failures*.

The termination protocol [15] was designed for site failures **only**
(paper §2, Example 2): a new coordinator polls local states and

* commits if any participant is in PC or C (after moving W sites up to
  PC), and
* aborts otherwise.

Under network *partitioning* this rule is applied independently in each
component, and components disagree whenever one contains a PC site and
another does not — exactly Example 2's inconsistency, which benchmark
E4 reproduces and measures.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import (
    CommitProtocolEngine,
    Decision,
    TerminationRule,
    _CoordinationRound,
)
from repro.protocols.states import TxnState


class ThreePCTerminationRule(TerminationRule):
    """Skeen's site-failure termination rule: committable-present => commit."""

    name = "3pc-skeen"

    def evaluate(
        self,
        items: list[str],
        states: Mapping[int, TxnState],
        participants=None,
    ) -> Decision:
        reported = set(states.values())
        if TxnState.C in reported:
            return Decision.COMMIT
        if TxnState.A in reported:
            return Decision.ABORT
        if TxnState.PC in reported:
            # Move the W sites up to PC first, then commit; the round
            # always succeeds because no quorum is required.
            return Decision.TRY_COMMIT
        if not states:
            return Decision.BLOCK
        return Decision.ABORT

    def commit_round_ok(self, items: list[str], supporters, participants=None) -> bool:
        """Site failures only: whoever did not ack is presumed crashed."""
        return True


class ThreePCEngine(CommitProtocolEngine):
    """3PC engine: vote -> prepare -> ack -> commit."""

    family = "3pc"

    def _all_voted_yes(self, round_: _CoordinationRound) -> None:
        self._send_prepare(round_)

    def _on_ack_progress(self, round_: _CoordinationRound) -> None:
        if set(round_.participants) <= round_.ackers:
            self._coord_decide(round_, "commit")

    def _on_ack_timeout(self, round_: _CoordinationRound) -> None:
        """Non-acking sites are treated as failed; commit proceeds.

        This is the classical 3PC behaviour: after the prepare round
        the transaction's fate is sealed; sites that missed the round
        learn the outcome from termination or recovery.
        """
        self.node.trace(
            "coord-ack-timeout",
            round_.txn,
            missing=[s for s in round_.participants if s not in round_.ackers],
        )
        self._coord_decide(round_, "commit")
