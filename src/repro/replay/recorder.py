"""Harvesting a driver run into a :class:`RecordedTrace`.

Recording is a spy, not a fork of the drivers: a
:class:`RecordingSpec` is passed as the driver's ``workload=`` and
compiles to a proxy that delegates every draw to the real
:class:`~repro.workload.spec.CompiledWorkload` while logging the
results; the fault schedule is harvested post-run from
:attr:`~repro.sim.failures.FailureInjector.applied` (every armed
action fires before the run quiesces, in deterministic heap order).
The recorded run is therefore *bit-identical* to an unrecorded one —
the proxy adds no RNG draws and no events — so a trace can be taken
from any existing experiment without perturbing its committed
trajectory.
"""

from __future__ import annotations

from typing import Any

from repro.engine import jsonable
from repro.replay.artifact import RecordedTrace
from repro.workload.spec import WorkloadSpec


def cluster_counters(cluster) -> dict[str, Any]:
    """The deterministic network / WAL / scheduler tallies of a run
    (the same fingerprint the bench suite pins baselines on)."""
    net = cluster.network
    return {
        "messages_sent": net.sent,
        "messages_delivered": net.delivered,
        "messages_dropped": net.dropped,
        "events_run": cluster.scheduler.events_run,
        "wal_forced": sum(site.wal.forced for site in cluster.sites.values()),
        "wal_flushes": sum(site.wal.flushes for site in cluster.sites.values()),
    }


class RecordingSpec:
    """A workload spec that records what its compiled stream emits.

    Drop-in for a :class:`~repro.workload.spec.WorkloadSpec` at any
    driver's ``workload=`` argument: ``compile`` captures the catalog
    (and regions) the driver binds, and returns a proxy whose draws are
    logged here — ``arrivals``, ``ops``, ``updates`` — while the real
    compiled workload does all the generating.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.catalog = None
        self.regions = None
        self.arrivals: list[float] = []
        self.ops: list = []
        self.updates: list[tuple[int, dict[str, Any]]] = []
        self.gaps: list[float] = []

    def compile(self, catalog, regions=None) -> "_RecordingWorkload":
        """Bind like a spec would, capturing the binding as a side effect."""
        self.catalog = catalog
        self.regions = regions
        return _RecordingWorkload(self.spec.compile(catalog, regions), self)


class _RecordingWorkload:
    """The compiled-side spy: delegate every draw, log every result."""

    def __init__(self, inner, log: RecordingSpec) -> None:
        self._inner = inner
        self._log = log
        self.spec = inner.spec
        self.catalog = inner.catalog

    def arrivals(self, rng) -> list[float]:
        times = self._inner.arrivals(rng)
        self._log.arrivals = list(times)
        return times

    def next_op(self, rng):
        op = self._inner.next_op(rng)
        self._log.ops.append(op)
        return op

    def next_update(self, rng):
        origin, writes = self._inner.next_update(rng)
        self._log.updates.append((origin, dict(writes)))
        return origin, writes

    def next_gap(self, rng, now=None):
        gap = self._inner.next_gap(rng, now)
        self._log.gaps.append(gap)
        return gap


def record_heavy_workload(
    protocol: str,
    seed: int = 0,
    n_txns: int = 120,
    n_sites: int = 12,
    n_items: int = 8,
    replication: int = 3,
    mean_spacing: float = 1.5,
    episodes: int = 2,
    episode_length: float = 30.0,
    gap: float = 20.0,
    workload: WorkloadSpec | None = None,
) -> RecordedTrace:
    """Run E18 once and harvest the full trace.

    Same signature surface as
    :func:`~repro.experiments.workload_study.run_heavy_workload`; the
    returned trace carries everything needed to replay the run — and
    its deterministic counters, so replays can be fixed-point checked.
    """
    from repro.experiments.workload_study import run_heavy_workload

    spec = workload if workload is not None else WorkloadSpec(
        n_txns=n_txns, mean_spacing=mean_spacing
    )
    recording = RecordingSpec(spec)
    harvested: dict[str, Any] = {}

    def probe(cluster) -> None:
        harvested["actions"] = list(cluster.injector.applied)
        harvested["counters"] = cluster_counters(cluster)

    result = run_heavy_workload(
        protocol,
        seed=seed,
        n_txns=n_txns,
        n_sites=n_sites,
        n_items=n_items,
        replication=replication,
        mean_spacing=mean_spacing,
        episodes=episodes,
        episode_length=episode_length,
        gap=gap,
        probe=probe,
        workload=recording,
    )
    return RecordedTrace(
        driver="heavy_workload",
        protocol=protocol,
        seed=seed,
        spec=spec,
        catalog=recording.catalog,
        params={"n_sites": n_sites, "n_items": n_items, "replication": replication},
        arrivals=recording.arrivals,
        ops=recording.ops,
        updates=recording.updates,
        actions=harvested["actions"],
        counters=harvested["counters"],
        result=jsonable(result),
    )


def record_open_loop_service(
    protocol: str,
    seed: int = 0,
    rate: float = 1.5,
    duration: float = 120.0,
    n_sites: int = 9,
    n_items: int = 6,
    replication: int = 3,
    window: int = 4,
    workload: WorkloadSpec | None = None,
    failures=None,
) -> RecordedTrace:
    """Run one E26 open-loop service interval and harvest the trace.

    The open-loop stream records *gaps* instead of arrival times — one
    exponential inter-arrival draw per offered arrival — alongside the
    op stream; shed arrivals consume draws too, so the recorded stream
    replays bit-for-bit regardless of admission outcomes.  The
    admission ``window`` rides in ``params`` because it shapes the run
    but is not part of the workload spec.

    ``failures`` passes an explicit :class:`~repro.sim.failures.FailurePlan`
    through to the service (gray-failure plans included — the artifact
    codec round-trips degrade/flap/leave actions), overriding the
    driver's default crash episode.
    """
    from repro.experiments.service_study import run_open_loop_service

    spec = workload if workload is not None else WorkloadSpec(
        arrival="open", rate=rate, duration=duration
    )
    recording = RecordingSpec(spec)
    harvested: dict[str, Any] = {}

    def probe(cluster) -> None:
        harvested["actions"] = list(cluster.injector.applied)
        harvested["counters"] = cluster_counters(cluster)

    result = run_open_loop_service(
        protocol,
        seed=seed,
        rate=rate,
        duration=duration,
        n_sites=n_sites,
        n_items=n_items,
        replication=replication,
        window=window,
        workload=recording,
        failures=failures,
        probe=probe,
    )
    return RecordedTrace(
        driver="open_loop",
        protocol=protocol,
        seed=seed,
        spec=spec,
        catalog=recording.catalog,
        params={
            "n_sites": n_sites,
            "n_items": n_items,
            "replication": replication,
            "window": window,
        },
        arrivals=recording.arrivals,
        gaps=recording.gaps,
        ops=recording.ops,
        updates=recording.updates,
        actions=harvested["actions"],
        counters=harvested["counters"],
        result=jsonable(result.counters()),
    )


def record_wan_storm(
    protocol: str,
    seed: int = 0,
    n_regions: int = 4,
    sites_per_region: int = 8,
    n_items: int = 8,
    region_replication: int = 3,
    waves: int = 4,
    heal: bool = False,
    workload: WorkloadSpec | None = None,
) -> RecordedTrace:
    """Run E21 once and harvest the full trace (single-update stream)."""
    from repro.workload.scenarios import run_wan_storm

    spec = workload if workload is not None else WorkloadSpec(n_txns=1, footprint=(1, 3))
    recording = RecordingSpec(spec)
    harvested: dict[str, Any] = {}

    def probe(cluster) -> None:
        harvested["actions"] = list(cluster.injector.applied)
        harvested["counters"] = cluster_counters(cluster)

    scenario = run_wan_storm(
        protocol,
        seed=seed,
        n_regions=n_regions,
        sites_per_region=sites_per_region,
        n_items=n_items,
        region_replication=region_replication,
        waves=waves,
        heal=heal,
        workload=recording,
        probe=probe,
    )
    return RecordedTrace(
        driver="wan_storm",
        protocol=protocol,
        seed=seed,
        spec=spec,
        catalog=recording.catalog,
        params={
            "n_regions": n_regions,
            "sites_per_region": sites_per_region,
            "n_items": n_items,
            "region_replication": region_replication,
        },
        arrivals=recording.arrivals,
        ops=recording.ops,
        updates=recording.updates,
        actions=harvested["actions"],
        counters=harvested["counters"],
        result={
            "outcome": scenario.outcome,
            "decided_sites": len(scenario.cluster.tracer.decisions(scenario.txn.txn)),
        },
    )
