"""Recorded-trace artifacts: schema-versioned, byte-stable, compressed.

A :class:`RecordedTrace` is the full causal input of one driver run —
the workload spec, the replica catalog it compiled against, every
generated client operation with its arrival time, and the fault
schedule that actually fired — plus the run's deterministic counters
and result summary for fixed-point checking.  Replaying the trace
verbatim under the recorded configuration reproduces those counters
byte-for-byte (the cluster's own RNG is seeded from the recorded seed;
the driver RNG fed *only* the recorded draws).

On disk a trace is gzip-compressed JSONL: one canonical JSON object
per line (``sort_keys`` + compact separators, the same canonical form
:class:`~repro.engine.store.ResultStore` uses), compressed with
``mtime=0`` so identical traces are identical *bytes* and can be
committed like any other baseline artifact.  The final line is an
``end`` record carrying the line count, so truncation is detected on
load rather than surfacing as a half-replayed run.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import StoreError
from repro.replication.catalog import ItemConfig, ReplicaCatalog
from repro.sim.failures import (
    CrashSite,
    DegradeSite,
    FailureAction,
    FailurePlan,
    FlapLink,
    HealNetwork,
    JoinSite,
    LeaveSite,
    PartitionNetwork,
    RecoverSite,
    RestoreSite,
    SetLinkLoss,
)
from repro.workload.spec import WorkloadOp, WorkloadSpec

#: artifact schema version; bump on any incompatible layout change.
TRACE_SCHEMA = 1

#: the header ``kind`` tag distinguishing traces from other artifacts.
TRACE_KIND = "repro-replay-trace"

#: drivers a trace can be recorded from (and replayed through).
TRACE_DRIVERS = ("heavy_workload", "wan_storm", "open_loop")


# ----------------------------------------------------------------------
# failure-action codec
# ----------------------------------------------------------------------

def encode_action(action: FailureAction) -> dict[str, Any]:
    """One JSON-able dict per fault action."""
    if isinstance(action, CrashSite):
        return {"action": "crash", "time": action.time, "site": action.site}
    if isinstance(action, RecoverSite):
        return {"action": "recover", "time": action.time, "site": action.site}
    if isinstance(action, PartitionNetwork):
        return {
            "action": "partition",
            "time": action.time,
            "groups": [list(g) for g in action.groups],
        }
    if isinstance(action, HealNetwork):
        return {"action": "heal", "time": action.time}
    if isinstance(action, SetLinkLoss):
        return {
            "action": "sever",
            "time": action.time,
            "src": action.src,
            "dst": action.dst,
            "p": action.p,
        }
    if isinstance(action, JoinSite):
        return {
            "action": "join",
            "time": action.time,
            "site": action.site,
            "copies": [list(pair) for pair in action.copies],
            "near": action.near,
        }
    if isinstance(action, DegradeSite):
        return {
            "action": "degrade",
            "time": action.time,
            "site": action.site,
            "factor": action.factor,
        }
    if isinstance(action, RestoreSite):
        return {"action": "restore", "time": action.time, "site": action.site}
    if isinstance(action, FlapLink):
        return {
            "action": "flap",
            "time": action.time,
            "src": action.src,
            "dst": action.dst,
            "period": action.period,
            "duty": action.duty,
            "cycles": action.cycles,
        }
    if isinstance(action, LeaveSite):
        return {"action": "leave", "time": action.time, "site": action.site}
    raise StoreError(f"cannot encode failure action {action!r}")


def decode_action(payload: dict[str, Any]) -> FailureAction:
    """Inverse of :func:`encode_action`."""
    kind = payload.get("action")
    try:
        if kind == "crash":
            return CrashSite(payload["time"], payload["site"])
        if kind == "recover":
            return RecoverSite(payload["time"], payload["site"])
        if kind == "partition":
            return PartitionNetwork(
                payload["time"], tuple(tuple(g) for g in payload["groups"])
            )
        if kind == "heal":
            return HealNetwork(payload["time"])
        if kind == "sever":
            return SetLinkLoss(
                payload["time"], payload["src"], payload["dst"], payload["p"]
            )
        if kind == "join":
            return JoinSite(
                payload["time"],
                payload["site"],
                tuple((item, votes) for item, votes in payload["copies"]),
                payload.get("near"),
            )
        if kind == "degrade":
            return DegradeSite(payload["time"], payload["site"], payload["factor"])
        if kind == "restore":
            return RestoreSite(payload["time"], payload["site"])
        if kind == "flap":
            return FlapLink(
                payload["time"],
                payload["src"],
                payload["dst"],
                payload["period"],
                payload["duty"],
                payload["cycles"],
            )
        if kind == "leave":
            return LeaveSite(payload["time"], payload["site"])
    except KeyError as exc:
        raise StoreError(f"failure action missing field {exc}") from None
    raise StoreError(f"unknown failure action kind {kind!r}")


# ----------------------------------------------------------------------
# catalog codec
# ----------------------------------------------------------------------

def encode_catalog(catalog: ReplicaCatalog) -> dict[str, Any]:
    """Placement + quorums as a JSON-able dict (copies as pair lists,
    so site ids stay integers through the round trip)."""
    items = []
    for name in catalog.item_names:
        config = catalog.item(name)
        items.append(
            {
                "name": name,
                "copies": [[site, votes] for site, votes in sorted(config.copies.items())],
                "r": config.read_quorum,
                "w": config.write_quorum,
            }
        )
    return {"items": items}


def decode_catalog(payload: dict[str, Any]) -> ReplicaCatalog:
    """Inverse of :func:`encode_catalog` (re-validates every item)."""
    try:
        return ReplicaCatalog(
            ItemConfig(
                name=item["name"],
                copies={int(site): votes for site, votes in item["copies"]},
                read_quorum=item["r"],
                write_quorum=item["w"],
            )
            for item in payload["items"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"malformed catalog record: {exc}") from None


# ----------------------------------------------------------------------
# the trace
# ----------------------------------------------------------------------

@dataclass
class RecordedTrace:
    """One driver run, harvested in full.

    Attributes:
        driver: which driver produced the run (:data:`TRACE_DRIVERS`).
        protocol: the commit protocol the run used.
        seed: the run seed (drives the cluster's delay/loss RNG).
        spec: the workload spec the stream was generated from.
        catalog: the replica catalog the run compiled against.
        params: driver shape kwargs needed to rebuild the site universe
            (e.g. ``n_regions``/``sites_per_region`` for WAN storms).
        arrivals: virtual arrival time per scheduled submission
            (closed-loop drivers; empty for open-loop services).
        gaps: inter-arrival gaps drawn by an open-loop service, one per
            offered arrival (empty for closed-loop drivers).
        ops: the generated :class:`~repro.workload.spec.WorkloadOp`
            stream, aligned 1:1 with ``arrivals`` (closed) or ``gaps``
            (open).
        updates: direct-update draws ``(origin, writes)`` (the WAN
            storm's single transaction).
        actions: the fault schedule, in the order it actually fired.
        counters: the run's deterministic cluster counters (messages,
            events, WAL forces) — the fixed-point contract.
        result: JSON-able summary of the driver's result object.
    """

    driver: str
    protocol: str
    seed: int
    spec: WorkloadSpec
    catalog: ReplicaCatalog
    params: dict[str, Any] = field(default_factory=dict)
    arrivals: list[float] = field(default_factory=list)
    gaps: list[float] = field(default_factory=list)
    ops: list[WorkloadOp] = field(default_factory=list)
    updates: list[tuple[int, dict[str, Any]]] = field(default_factory=list)
    actions: list[FailureAction] = field(default_factory=list)
    counters: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] = field(default_factory=dict)

    def plan(self) -> FailurePlan:
        """The recorded fault schedule as a fresh, re-armable plan."""
        return FailurePlan(list(self.actions))

    def workload(self):
        """A fresh :class:`~repro.replay.RecordedWorkload` over this
        trace (one per replay run — the stream cursor is stateful)."""
        from repro.replay.workload import RecordedWorkload

        return RecordedWorkload.from_trace(self)

    # ------------------------------------------------------------------
    # line codec
    # ------------------------------------------------------------------

    def to_lines(self) -> list[dict[str, Any]]:
        """The artifact's JSONL records, in canonical order."""
        spec = self.spec
        # hand-enumerated (not dataclass-reflected) so new spec fields
        # never change the bytes of artifacts that do not use them; the
        # open-loop keys are conditional for the same reason.
        spec_record = {
            "n_txns": spec.n_txns,
            "popularity": spec.popularity,
            "zipf_s": spec.zipf_s,
            "read_fraction": spec.read_fraction,
            "footprint": list(spec.footprint),
            "arrival": spec.arrival,
            "mean_spacing": spec.mean_spacing,
            "start": spec.start,
            "cross_region": spec.cross_region,
            "value_pool": spec.value_pool,
            "sampler": spec.sampler,
        }
        if spec.arrival == "open":
            spec_record["rate"] = spec.rate
            spec_record["duration"] = spec.duration
            if spec.rate_schedule is not None:
                spec_record["rate_schedule"] = [list(step) for step in spec.rate_schedule]
        lines: list[dict[str, Any]] = [
            {
                "type": "header",
                "schema": TRACE_SCHEMA,
                "kind": TRACE_KIND,
                "driver": self.driver,
                "protocol": self.protocol,
                "seed": self.seed,
                "params": dict(self.params),
                "spec": spec_record,
            },
            {"type": "catalog", **encode_catalog(self.catalog)},
            {"type": "arrivals", "times": list(self.arrivals)},
        ]
        if self.gaps:
            lines.append({"type": "gaps", "values": list(self.gaps)})
        for op in self.ops:
            lines.append(
                {"type": "op", "kind": op.kind, "items": list(op.items), "origin": op.origin}
            )
        for origin, writes in self.updates:
            lines.append({"type": "update", "origin": origin, "writes": dict(writes)})
        for action in self.actions:
            lines.append({"type": "failure", **encode_action(action)})
        lines.append({"type": "counters", "counters": dict(self.counters)})
        lines.append({"type": "result", "result": dict(self.result)})
        lines.append({"type": "end", "records": len(lines)})
        return lines

    @classmethod
    def from_lines(cls, lines: list[dict[str, Any]]) -> "RecordedTrace":
        """Rebuild a trace from parsed JSONL records.

        Raises:
            StoreError: on a missing/foreign header, schema mismatch,
                truncation (bad or absent ``end`` record), or any
                malformed record.
        """
        if not lines:
            raise StoreError("empty trace artifact")
        header = lines[0]
        if header.get("type") != "header" or header.get("kind") != TRACE_KIND:
            raise StoreError("not a replay trace artifact (bad header)")
        if header.get("schema") != TRACE_SCHEMA:
            raise StoreError(
                f"trace schema {header.get('schema')!r} != supported {TRACE_SCHEMA}"
            )
        if header.get("driver") not in TRACE_DRIVERS:
            raise StoreError(f"unknown trace driver {header.get('driver')!r}")
        end = lines[-1]
        if end.get("type") != "end" or end.get("records") != len(lines) - 1:
            raise StoreError(
                "truncated trace artifact: end record missing or line count mismatch"
            )
        try:
            spec_fields = dict(header["spec"])
            spec_fields["footprint"] = tuple(spec_fields["footprint"])
            if spec_fields.get("rate_schedule") is not None:
                spec_fields["rate_schedule"] = tuple(
                    (offset, rate) for offset, rate in spec_fields["rate_schedule"]
                )
            trace = cls(
                driver=header["driver"],
                protocol=header["protocol"],
                seed=header["seed"],
                spec=WorkloadSpec(**spec_fields),
                catalog=ReplicaCatalog(()),  # placeholder until the catalog record
                params=dict(header.get("params", {})),
            )
            saw_catalog = False
            for line in lines[1:-1]:
                kind = line["type"]
                if kind == "catalog":
                    trace.catalog = decode_catalog(line)
                    saw_catalog = True
                elif kind == "arrivals":
                    trace.arrivals = [float(t) for t in line["times"]]
                elif kind == "gaps":
                    trace.gaps = [float(g) for g in line["values"]]
                elif kind == "op":
                    trace.ops.append(
                        WorkloadOp(line["kind"], tuple(line["items"]), line["origin"])
                    )
                elif kind == "update":
                    trace.updates.append((line["origin"], dict(line["writes"])))
                elif kind == "failure":
                    trace.actions.append(decode_action(line))
                elif kind == "counters":
                    trace.counters = dict(line["counters"])
                elif kind == "result":
                    trace.result = dict(line["result"])
                else:
                    raise StoreError(f"unknown trace record type {kind!r}")
        except StoreError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed trace record: {exc}") from None
        if not saw_catalog:
            raise StoreError("trace artifact has no catalog record")
        return trace

    # ------------------------------------------------------------------
    # byte-stable file round trip
    # ------------------------------------------------------------------

    def encode(self) -> bytes:
        """The compressed artifact bytes (a pure function of content)."""
        text = "".join(
            json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"
            for line in self.to_lines()
        )
        buffer = io.BytesIO()
        # mtime=0 (and no embedded filename, since we pass a fileobj)
        # keeps identical traces identical on disk — the same property
        # ResultStore's canonical JSON gives uncompressed artifacts.
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as zf:
            zf.write(text.encode("utf-8"))
        return buffer.getvalue()

    def save(self, path: str) -> str:
        """Write the artifact to ``path``; returns the path."""
        with open(path, "wb") as f:
            f.write(self.encode())
        return path

    @classmethod
    def load(cls, path: str) -> "RecordedTrace":
        """Load and validate an artifact.

        Raises:
            StoreError: on unreadable, corrupt, truncated, or
                schema-incompatible artifacts.
        """
        try:
            with gzip.open(path, "rt", encoding="utf-8") as f:
                lines = [json.loads(line) for line in f if line.strip()]
        except (OSError, EOFError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read trace artifact {path}: {exc}") from None
        return cls.from_lines(lines)
