"""``python -m repro.replay`` — the record / replay / diff CLI.

Subcommands:

* ``record`` — run a driver (E18 heavy traffic, E21 WAN storm, or the
  E26 open-loop service) and write its full trace to a compressed,
  byte-stable artifact.
* ``replay`` — replay a trace artifact, optionally under an alternative
  configuration; without overrides the replay is fixed-point checked
  against the recorded counters.
* ``diff``   — replay one trace against a configuration matrix and
  print the per-configuration diff table.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.db.cluster import PROTOCOL_NAMES
from repro.replay.artifact import RecordedTrace
from repro.replay.recorder import (
    record_heavy_workload,
    record_open_loop_service,
    record_wan_storm,
)
from repro.replay.tournament import (
    DEFAULT_CONFIGS,
    QUORUM_POLICIES,
    TournamentConfig,
    fixed_point_ok,
    format_diff_table,
    replay_trace,
    run_tournament,
)


def _add_overrides(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol",
        choices=list(PROTOCOL_NAMES),
        help="replay under this commit protocol (default: as recorded)",
    )
    parser.add_argument(
        "--quorum",
        choices=list(QUORUM_POLICIES),
        default="recorded",
        help="quorum policy for the replayed catalog (default: recorded)",
    )
    parser.add_argument(
        "--drop-sites",
        type=int,
        default=0,
        metavar="N",
        help="shrink the installation by the N highest-numbered hosting "
        "sites; unhosted recorded ops are skipped and tallied",
    )
    parser.add_argument(
        "--crash-origin-at",
        type=float,
        metavar="T",
        help="extra fault: crash the recorded coordinator at virtual time T",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="record driver runs as trace artifacts and replay them "
        "under what-if configurations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="run a driver and write its trace")
    record.add_argument(
        "--driver",
        choices=["heavy_workload", "wan_storm", "open_loop"],
        default="heavy_workload",
        help="which driver to record (default: heavy_workload)",
    )
    record.add_argument(
        "--protocol",
        choices=list(PROTOCOL_NAMES),
        default="qtp1",
        help="commit protocol for the recorded run (default: qtp1)",
    )
    record.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    record.add_argument(
        "--n-txns",
        type=int,
        default=120,
        help="heavy-workload stream length (default 120; ignored for wan_storm)",
    )
    record.add_argument(
        "--out",
        default="trace.jsonl.gz",
        help="artifact path (default: trace.jsonl.gz)",
    )

    replay = sub.add_parser("replay", help="replay a trace artifact")
    replay.add_argument("trace", help="trace artifact path")
    _add_overrides(replay)

    diff = sub.add_parser("diff", help="tournament diff table over one trace")
    diff.add_argument("trace", help="trace artifact path")
    diff.add_argument(
        "--config",
        action="append",
        dest="configs",
        metavar="NAME",
        help="restrict to one default config (repeatable: recorded, 2pc, "
        "3pc, rowa; default: all)",
    )
    diff.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the tournament sweep (default 1; rows are "
        "identical at every worker count)",
    )
    return parser


def _cmd_record(args: argparse.Namespace) -> int:
    if args.driver == "wan_storm":
        trace = record_wan_storm(args.protocol, seed=args.seed)
    elif args.driver == "open_loop":
        trace = record_open_loop_service(args.protocol, seed=args.seed)
    else:
        trace = record_heavy_workload(args.protocol, seed=args.seed, n_txns=args.n_txns)
    trace.save(args.out)
    print(
        f"recorded {trace.driver} protocol={trace.protocol} seed={trace.seed}: "
        f"{len(trace.ops)} ops, {len(trace.updates)} updates, "
        f"{len(trace.actions)} fault actions -> {args.out}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = RecordedTrace.load(args.trace)
    overridden = bool(
        args.protocol or args.quorum != "recorded" or args.drop_sites
        or args.crash_origin_at is not None
    )
    config = TournamentConfig(
        name="cli" if overridden else "recorded",
        protocol=args.protocol,
        quorum=args.quorum,
        drop_sites=args.drop_sites,
        crash_origin_at=args.crash_origin_at,
    )
    row = replay_trace(trace, config)
    print(json.dumps(row, sort_keys=True, indent=2))
    if overridden:
        return 0
    if fixed_point_ok(trace, row):
        print("fixed point: replay reproduces the recorded counters")
        return 0
    print("FIXED POINT VIOLATION: replay diverged from the recorded counters")
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    trace = RecordedTrace.load(args.trace)
    configs = DEFAULT_CONFIGS
    if args.configs:
        by_name = {c.name: c for c in DEFAULT_CONFIGS}
        unknown = [n for n in args.configs if n not in by_name]
        if unknown:
            print(f"unknown config(s) {unknown}; choose from {sorted(by_name)}")
            return 2
        configs = tuple(by_name[n] for n in args.configs)
    rows = run_tournament(trace, configs, workers=args.workers)
    print(format_diff_table(rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_diff(args)


if __name__ == "__main__":
    sys.exit(main())
