"""What-if tournaments: one recorded trace, many configurations.

The tournament replays a single harvested trace against a matrix of
configurations — commit protocol, quorum policy, a shrunk installation
— and emits a per-configuration diff table over commits / aborts /
messages / latency.  Because every cell consumes the *same* ops at the
*same* arrival times under the *same* fault schedule, the differences
are pure configuration effects: the what-if question experiment
sweeps can only approximate statistically, answered exactly.

Cells fan out through the sweep engine
(:func:`~repro.engine.run_sweep`), so a tournament rides the warm
worker pool like any other study and is byte-identical at every worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import StoreError
from repro.engine import (
    MemorySink,
    ResultSink,
    ResultStore,
    SharedPayload,
    SweepSpec,
    TeeSink,
    run_sweep,
)
from repro.replication.catalog import ItemConfig, ReplicaCatalog
from repro.replay.artifact import RecordedTrace

#: quorum policies :func:`derive_catalog` can impose.
QUORUM_POLICIES = ("recorded", "majority", "read-one-write-all")

#: the diff table's integer-valued metrics.
DIFF_METRICS = (
    "submitted",
    "committed",
    "client_aborted",
    "protocol_aborted",
    "blocked",
    "reads_committed",
    "skipped_ops",
    "messages_sent",
    "messages_delivered",
    "messages_dropped",
    "wal_forced",
    "events_run",
)


@dataclass(frozen=True)
class TournamentConfig:
    """One what-if configuration.

    Attributes:
        name: row label in the diff table.
        protocol: commit protocol override (``None`` = as recorded).
        quorum: quorum policy for :func:`derive_catalog`.
        drop_sites: shrink the installation by removing the ``n``
            highest-numbered hosting sites; recorded ops the smaller
            cluster cannot host are skipped and tallied.
        crash_origin_at: extra fault — crash the recorded run's first
            transaction origin (its coordinator) at this virtual time.
    """

    name: str
    protocol: str | None = None
    quorum: str = "recorded"
    drop_sites: int = 0
    crash_origin_at: float | None = None

    def __post_init__(self) -> None:
        if self.quorum not in QUORUM_POLICIES:
            raise StoreError(
                f"quorum policy must be one of {QUORUM_POLICIES}, got {self.quorum!r}"
            )
        if self.drop_sites < 0:
            raise StoreError(f"drop_sites must be >= 0, got {self.drop_sites}")


#: the standard protocol face-off, plus one alternative quorum policy.
DEFAULT_CONFIGS = (
    TournamentConfig("recorded"),
    TournamentConfig("2pc", protocol="2pc"),
    TournamentConfig("3pc", protocol="3pc"),
    TournamentConfig("rowa", quorum="read-one-write-all"),
)


def _policy_quorums(v: int, r: int, w: int, policy: str) -> tuple[int, int]:
    """(r, w) for ``v`` total votes under ``policy``, always valid.

    The recorded quorums survive verbatim when they still satisfy
    Gifford's constraints against the (possibly shrunk) vote total;
    otherwise — and for the explicit policies — they are recomputed.
    """
    if policy == "recorded" and r + w > v and 2 * w > v and 1 <= r <= v and 1 <= w <= v:
        return r, w
    if policy == "read-one-write-all":
        return 1, v
    # majority, and the fallback for recorded quorums a shrunk vote
    # total has invalidated
    w = v // 2 + 1
    return v - w + 1, w


def derive_catalog(
    catalog: ReplicaCatalog,
    quorum: str = "recorded",
    drop_sites: int = 0,
) -> ReplicaCatalog:
    """A what-if variant of a recorded catalog.

    ``drop_sites`` removes the highest-numbered hosting sites from the
    installation; items that lose every copy are omitted entirely (the
    replay projection then skips their ops).  ``quorum`` re-derives
    r/w per the policy; shrunk items whose recorded quorums no longer
    satisfy the vote constraints fall back to majority.
    """
    dropped = set(sorted(catalog.all_sites())[len(catalog.all_sites()) - drop_sites:])
    items = []
    for name in catalog.item_names:
        config = catalog.item(name)
        copies = {s: v for s, v in config.copies.items() if s not in dropped}
        if not copies:
            continue
        total = sum(copies.values())
        r, w = _policy_quorums(total, config.read_quorum, config.write_quorum, quorum)
        items.append(ItemConfig(name=name, copies=copies, read_quorum=r, write_quorum=w))
    if not items:
        raise StoreError("derived catalog is empty: drop_sites removed every copy")
    return ReplicaCatalog(items)


def project_plan(actions, sites: set[int]):
    """The recorded fault schedule restricted to a site universe.

    A shrunk what-if installation no longer has every site the recorded
    plan manipulates: crashes/recoveries/link losses of removed sites
    are dropped, partition groups lose their removed members (a group
    emptied entirely is dropped, and a partition event with no groups
    left is skipped — every survivor would be an implicit singleton,
    which the recorded event never meant).  Heals and joins of new
    sites survive; a join whose ``near`` anchor was removed re-anchors
    to ``None``.  Gray actions project like their fail-stop cousins:
    degrade/restore/leave of a removed site are dropped, and a flap of
    a removed endpoint is dropped whole (its link never exists).
    """
    from repro.sim.failures import (
        CrashSite,
        DegradeSite,
        FailurePlan,
        FlapLink,
        HealNetwork,
        JoinSite,
        LeaveSite,
        PartitionNetwork,
        RecoverSite,
        RestoreSite,
        SetLinkLoss,
    )

    plan = FailurePlan()
    for action in actions:
        if isinstance(action, (CrashSite, RecoverSite, DegradeSite, RestoreSite, LeaveSite)):
            if action.site in sites:
                plan.actions.append(action)
        elif isinstance(action, PartitionNetwork):
            groups = tuple(
                kept
                for group in action.groups
                if (kept := tuple(s for s in group if s in sites))
            )
            if groups:
                plan.actions.append(PartitionNetwork(action.time, groups))
        elif isinstance(action, (SetLinkLoss, FlapLink)):
            if action.src in sites and action.dst in sites:
                plan.actions.append(action)
        elif isinstance(action, JoinSite):
            if action.near is not None and action.near not in sites:
                action = JoinSite(action.time, action.site, action.copies, None)
            plan.actions.append(action)
        else:  # HealNetwork and any future site-agnostic action
            plan.actions.append(action)
    return plan


def _mean_commit_latency(cluster, committed: Sequence[str]) -> float:
    """Mean (first commit decision − first protocol event) over
    committed transactions, in virtual time; 0.0 when none decided."""
    latencies = []
    for txn in committed:
        scope = cluster.tracer.txn_scope(txn)
        if not scope:
            continue
        start = scope[0].time
        decisions = [
            rec.time
            for rec in scope
            if rec.category == "decision" and rec.detail.get("outcome") == "commit"
        ]
        if decisions:
            latencies.append(min(decisions) - start)
    return sum(latencies) / len(latencies) if latencies else 0.0


def replay_trace(
    trace: RecordedTrace, config: TournamentConfig | None = None
) -> dict[str, Any]:
    """Replay one trace under one configuration; returns the row.

    With the default (``recorded``) configuration the replay is the
    fixed point: the row's counters equal the trace's recorded
    counters byte-for-byte.
    """
    cfg = config if config is not None else TournamentConfig("recorded")
    protocol = cfg.protocol if cfg.protocol is not None else trace.protocol
    catalog = (
        derive_catalog(trace.catalog, cfg.quorum, cfg.drop_sites)
        if (cfg.quorum != "recorded" or cfg.drop_sites)
        else trace.catalog
    )
    if cfg.drop_sites:
        universe = set(catalog.all_sites())
        if trace.driver == "wan_storm":
            from repro.workload.generators import wan_regions

            regions = wan_regions(
                trace.params["n_regions"], trace.params["sites_per_region"]
            )
            universe |= {s for region in regions for s in region}
        plan = project_plan(trace.actions, universe)
    else:
        plan = trace.plan()
    if cfg.crash_origin_at is not None:
        origin = _first_origin(trace)
        if origin is not None:
            plan.crash(cfg.crash_origin_at, origin)

    if trace.driver == "wan_storm":
        return _replay_wan(trace, cfg, protocol, catalog, plan)
    if trace.driver == "open_loop":
        return _replay_open(trace, cfg, protocol, catalog, plan)
    return _replay_heavy(trace, cfg, protocol, catalog, plan)


def _first_origin(trace: RecordedTrace) -> int | None:
    """The recorded run's first transaction origin (its coordinator)."""
    if trace.updates:
        return trace.updates[0][0]
    for op in trace.ops:
        if op.kind == "update":
            return op.origin
    return None


def _replay_heavy(trace, cfg, protocol, catalog, plan) -> dict[str, Any]:
    from repro.experiments.workload_study import run_heavy_workload
    from repro.replay.recorder import cluster_counters

    workload = trace.workload().project(catalog)
    harvested: dict[str, Any] = {}
    result = run_heavy_workload(
        protocol,
        seed=trace.seed,
        probe=lambda cluster: harvested.update(cluster=cluster),
        workload=workload,
        catalog=catalog,
        failures=plan,
    )
    cluster = harvested["cluster"]
    committed = [t for t, o in result.txn_outcomes.items() if o == "commit"]
    return {
        "config": cfg.name,
        "protocol": protocol,
        "submitted": result.submitted,
        "committed": result.committed,
        "client_aborted": result.client_aborted,
        "protocol_aborted": result.protocol_aborted,
        "blocked": result.blocked,
        "reads_committed": result.reads_committed,
        "skipped_ops": workload.skipped_ops,
        "serializable": result.serializable,
        "mean_commit_latency": _mean_commit_latency(cluster, committed),
        **cluster_counters(cluster),
    }


def _replay_open(trace, cfg, protocol, catalog, plan) -> dict[str, Any]:
    from repro.experiments.service_study import run_open_loop_service
    from repro.replay.recorder import cluster_counters

    workload = trace.workload().project(catalog)
    harvested: dict[str, Any] = {}
    result = run_open_loop_service(
        protocol,
        seed=trace.seed,
        window=trace.params.get("window", 4),
        workload=workload,
        catalog=catalog,
        failures=plan,
        probe=lambda cluster: harvested.update(cluster=cluster),
    )
    cluster = harvested["cluster"]
    return {
        "config": cfg.name,
        "protocol": protocol,
        "submitted": result.admitted,
        "committed": result.committed,
        "client_aborted": result.client_aborted,
        "protocol_aborted": result.protocol_aborted,
        "blocked": result.unresolved,
        "reads_committed": result.reads_committed,
        "skipped_ops": workload.skipped_ops,
        "serializable": result.serializable,
        # the open-loop drive measures its own latency stream; reuse
        # the digest's p50 as the comparable latency column
        "mean_commit_latency": result.latency.get("p50", 0.0),
        "offered": result.offered,
        "shed_backpressure": result.shed_backpressure,
        "shed_unreachable": result.shed_unreachable,
        "latency_p99": result.latency.get("p99", 0.0),
        "latency_p999": result.latency.get("p999", 0.0),
        **cluster_counters(cluster),
    }


def _replay_wan(trace, cfg, protocol, catalog, plan) -> dict[str, Any]:
    from repro.replay.recorder import cluster_counters
    from repro.workload.generators import wan_regions
    from repro.workload.scenarios import run_wan_storm

    params = trace.params
    regions = wan_regions(params["n_regions"], params["sites_per_region"])
    all_sites = [s for region in regions for s in region]
    workload = trace.workload().project(catalog, sites=all_sites)
    if not workload._updates:
        raise StoreError(
            "recorded WAN update cannot run on the derived catalog "
            "(origin or every written item was dropped)"
        )
    harvested: dict[str, Any] = {}
    scenario = run_wan_storm(
        protocol,
        seed=trace.seed,
        n_regions=params["n_regions"],
        sites_per_region=params["sites_per_region"],
        n_items=params["n_items"],
        region_replication=params["region_replication"],
        workload=workload,
        catalog=catalog,
        failures=plan,
        probe=lambda cluster: harvested.update(cluster=cluster),
    )
    cluster = harvested["cluster"]
    outcome = scenario.outcome
    committed = [scenario.txn.txn] if outcome == "commit" else []
    return {
        "config": cfg.name,
        "protocol": protocol,
        "submitted": 1,
        "committed": 1 if outcome == "commit" else 0,
        "client_aborted": 0,
        "protocol_aborted": 1 if outcome == "abort" else 0,
        "blocked": 1 if outcome not in ("commit", "abort") else 0,
        "reads_committed": 0,
        "skipped_ops": workload.skipped_ops,
        "serializable": True,
        "mean_commit_latency": _mean_commit_latency(cluster, committed),
        **cluster_counters(cluster),
    }


def fixed_point_ok(trace: RecordedTrace, row: dict[str, Any]) -> bool:
    """Does a ``recorded``-config replay row reproduce the trace's
    counters exactly?  (The record→replay contract.)"""
    return all(row.get(key) == value for key, value in trace.counters.items())


# ----------------------------------------------------------------------
# the tournament proper
# ----------------------------------------------------------------------

def tournament_run(
    seed: int,
    index: int,
    trace_lines: list[dict[str, Any]],
    configs: tuple[TournamentConfig, ...],
) -> dict[str, Any]:
    """One tournament cell (module-level so the sweep engine can pickle
    it to pool workers).  The trace travels as its JSONL records —
    JSON-safe, so a tournament sweep can be persisted to a
    :class:`~repro.engine.ResultStore` like any other — and ``seed`` is
    the engine's derived seed; the replay is pinned to the trace's own
    recorded seed regardless."""
    return replay_trace(RecordedTrace.from_lines(trace_lines), configs[index])


def run_tournament(
    trace: RecordedTrace,
    configs: Sequence[TournamentConfig] = DEFAULT_CONFIGS,
    workers: int = 1,
    store: ResultStore | None = None,
    persistent_pool: bool = False,
    sink: ResultSink | None = None,
    share_trace: bool = False,
) -> list[dict[str, Any]]:
    """Replay ``trace`` under every configuration; rows in config order.

    Fans out through :func:`~repro.engine.run_sweep`, so results are
    byte-identical at every worker count and can be persisted to a
    :class:`~repro.engine.ResultStore` like any sweep.

    ``sink`` routes a large what-if matrix through the streaming
    backend — rows flow into the caller's sink as cells finish instead
    of accumulating (the return value is then assembled from a
    row-keeping tee so config order is preserved).  ``share_trace``
    publishes the trace's JSONL records once as a
    :class:`~repro.engine.SharedPayload` instead of re-pickling them
    into every cell — the win at big matrices; opt-in because the spec
    summary (and so a persisted artifact's header) then carries the
    handle's content-free ``{"shared": ...}`` form rather than the full
    line list.
    """
    configs = tuple(configs)
    if not configs:
        raise StoreError("tournament needs at least one configuration")
    lines: Any = trace.to_lines()
    handle = None
    if share_trace:
        lines = handle = SharedPayload.publish(lines, label="replay-trace-lines")
    spec = SweepSpec(
        name="replay-tournament",
        task=tournament_run,
        grid={"index": list(range(len(configs)))},
        runs=1,
        base_seed=trace.seed,
        seeding="offset",
        fixed={"trace_lines": lines, "configs": configs},
    )
    try:
        if sink is not None:
            keeper = sink if sink.keeps_rows else MemorySink()
            tee = sink if keeper is sink else TeeSink(sink, keeper)
            run_sweep(
                spec,
                workers=workers,
                store=store,
                persistent_pool=persistent_pool,
                sink=tee,
            )
            return [r.value for r in keeper.results]
        outcome = run_sweep(
            spec, workers=workers, store=store, persistent_pool=persistent_pool
        )
    finally:
        if handle is not None:
            handle.release()
    return outcome.values()


def diff_rows(
    rows: Sequence[dict[str, Any]], baseline: str | None = None
) -> list[dict[str, Any]]:
    """Per-configuration deltas against the baseline row.

    ``baseline`` names the reference config (default: the first row,
    conventionally ``recorded``).  Each returned row carries the raw
    metrics plus ``d_<metric>`` deltas; the baseline's deltas are all
    zero.
    """
    if not rows:
        return []
    base = rows[0]
    if baseline is not None:
        base = next((r for r in rows if r["config"] == baseline), rows[0])
    out = []
    for row in rows:
        diffed = dict(row)
        for metric in DIFF_METRICS:
            diffed[f"d_{metric}"] = row[metric] - base[metric]
        diffed["d_mean_commit_latency"] = (
            row["mean_commit_latency"] - base["mean_commit_latency"]
        )
        out.append(diffed)
    return out


def format_diff_table(rows: Sequence[dict[str, Any]]) -> str:
    """The tournament's human-readable diff table, one line per config."""
    diffed = diff_rows(rows)
    columns = (
        ("config", "config"),
        ("proto", "protocol"),
        ("commit", "committed"),
        ("abort", "protocol_aborted"),
        ("client", "client_aborted"),
        ("blocked", "blocked"),
        ("skipped", "skipped_ops"),
        ("msgs", "messages_sent"),
        ("latency", "mean_commit_latency"),
    )
    lines = ["  ".join(f"{title:>8}" for title, _ in columns)]
    for row in diffed:
        cells = []
        for title, key in columns:
            value = row[key]
            if key == "mean_commit_latency":
                cells.append(f"{value:8.2f}")
            elif isinstance(value, str):
                cells.append(f"{value:>8}")
            else:
                delta = row.get(f"d_{key}", 0)
                text = f"{value}{f'({delta:+d})' if delta else ''}"
                cells.append(f"{text:>8}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
