"""A recorded op stream as a workload source.

:class:`RecordedWorkload` satisfies the generator-callable surface of
:class:`~repro.workload.spec.CompiledWorkload` that the E18/E21/E26
drivers consume — ``arrivals``, ``next_op``, ``next_update``,
``next_gap``, plus the ``spec`` / ``catalog`` attributes — but every
"draw" replays the next
recorded value verbatim and leaves the passed-in RNG untouched.  A
harvested trace is thereby just another workload: the drivers cannot
tell recording from generation, which is exactly what makes the
record→replay fixed point hold (the cluster's behaviour is a function
of catalog, protocol, seed, arrivals, ops, and fault schedule — all
pinned by the trace).

Unlike a compiled spec, a recorded stream is *stateful* (a cursor walks
the op list), so one instance serves one replay run; tournament cells
each take a fresh instance via :meth:`RecordedTrace.workload`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable

from repro.common.errors import StoreError
from repro.replication.catalog import ReplicaCatalog
from repro.workload.spec import WorkloadOp, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.replay.artifact import RecordedTrace


class RecordedWorkload:
    """Replays a harvested op stream through the driver contract."""

    def __init__(
        self,
        spec: WorkloadSpec,
        catalog: ReplicaCatalog,
        arrivals: Iterable[float],
        ops: Iterable[WorkloadOp],
        updates: Iterable[tuple[int, dict[str, Any]]],
        gaps: Iterable[float] = (),
    ) -> None:
        self.spec = spec
        self.catalog = catalog
        self._arrivals = list(arrivals)
        self._ops = list(ops)
        self._updates = list(updates)
        self._gaps = list(gaps)
        self._op_cursor = 0
        self._update_cursor = 0
        self._gap_cursor = 0
        #: ops/updates dropped by :meth:`project` because the target
        #: catalog no longer hosts them (smaller-cluster what-ifs).
        self.skipped_ops = 0

    @classmethod
    def from_trace(cls, trace: "RecordedTrace") -> "RecordedWorkload":
        """A fresh stream over one recorded trace."""
        return cls(
            trace.spec,
            trace.catalog,
            trace.arrivals,
            trace.ops,
            trace.updates,
            trace.gaps,
        )

    def __len__(self) -> int:
        return len(self._ops) + len(self._updates)

    # ------------------------------------------------------------------
    # the CompiledWorkload surface the drivers consume
    # ------------------------------------------------------------------

    def arrivals(self, rng: random.Random) -> list[float]:
        """The recorded arrival times (``rng`` untouched).

        Also rewinds the op cursor: the drivers fetch arrivals exactly
        once, at the start of a run, so this doubles as the per-run
        reset point.
        """
        self._op_cursor = 0
        return list(self._arrivals)

    def next_op(self, rng: random.Random) -> WorkloadOp:
        """The next recorded op, in arrival order (``rng`` untouched)."""
        if self._op_cursor >= len(self._ops):
            raise StoreError(
                f"recorded op stream exhausted after {len(self._ops)} ops"
            )
        op = self._ops[self._op_cursor]
        self._op_cursor += 1
        return op

    def next_update(self, rng: random.Random) -> tuple[int, dict[str, Any]]:
        """The next recorded direct update (``rng`` untouched)."""
        if self._update_cursor >= len(self._updates):
            raise StoreError(
                f"recorded update stream exhausted after {len(self._updates)} updates"
            )
        origin, writes = self._updates[self._update_cursor]
        self._update_cursor += 1
        return origin, dict(writes)

    def next_gap(self, rng: random.Random, now: float | None = None) -> float:
        """The next recorded open-loop gap (``rng`` and ``now`` untouched —
        a recorded stream replays its gaps verbatim, so a rate schedule
        that shaped them at record time needs no clock at replay time).

        Exhaustion returns ``inf`` rather than raising: a replay under
        an *alternative* configuration can offer more arrivals than the
        recorded service did (shed ops still consume draws, but a
        healthier cluster drains faster and the deadline gate may admit
        one more arrival); an infinite gap simply ends the stream the
        way the recorded deadline did.
        """
        if self._gap_cursor >= len(self._gaps):
            return float("inf")
        gap = self._gaps[self._gap_cursor]
        self._gap_cursor += 1
        return gap

    # ------------------------------------------------------------------
    # what-if projection
    # ------------------------------------------------------------------

    def project(
        self,
        catalog: ReplicaCatalog,
        sites: Iterable[int] | None = None,
    ) -> "RecordedWorkload":
        """The stream restricted to what ``catalog`` can host.

        A what-if configuration may shrink the installation, so some
        recorded ops name origins or items the target cluster does not
        have.  Those ops are dropped *together with their arrival slot*
        (keeping the 1:1 op/arrival alignment the driver loop relies
        on) and tallied in ``skipped_ops`` on the returned stream.
        Updates lose unhosted items individually and are dropped only
        when nothing (or no origin) remains.

        ``sites`` is the replayed cluster's site universe when it is
        wider than the catalog's hosts (the WAN driver registers pure
        coordinator sites); default: the catalog's hosting sites.
        """
        hosted_items = set(catalog.item_names)
        hosted_sites = set(catalog.all_sites()) if sites is None else set(sites)
        arrivals: list[float] = []
        gaps: list[float] = []
        ops: list[WorkloadOp] = []
        skipped = 0
        # an open-loop stream has gaps where a closed one has arrival
        # times; either slot is dropped together with its op to keep
        # the 1:1 alignment the drivers rely on.  Arrival times are
        # absolute, so dropping one leaves the rest in place; gaps are
        # relative, so a dropped op's gap folds into the previous
        # surviving gap to keep later arrivals at their recorded times
        # (a dropped *first* op inevitably shifts the stream earlier).
        open_stream = not self._arrivals and bool(self._gaps)
        slots = self._gaps if open_stream else self._arrivals
        slot_sink = gaps if open_stream else arrivals
        for slot, op in zip(slots, self._ops):
            if op.origin in hosted_sites and all(i in hosted_items for i in op.items):
                slot_sink.append(slot)
                ops.append(op)
            else:
                skipped += 1
                if open_stream and slot_sink:
                    slot_sink[-1] += slot
        updates: list[tuple[int, dict[str, Any]]] = []
        for origin, writes in self._updates:
            kept = {item: value for item, value in writes.items() if item in hosted_items}
            if origin in hosted_sites and kept:
                updates.append((origin, kept))
            else:
                skipped += 1
        projected = RecordedWorkload(self.spec, catalog, arrivals, ops, updates, gaps)
        projected.skipped_ops = skipped
        return projected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RecordedWorkload ops={len(self._ops)} updates={len(self._updates)}"
            f" skipped={self.skipped_ops}>"
        )
