"""Trace-record → replay "what-if" engine.

Record the full op + failure stream of a driver run into a compact,
schema-versioned artifact (:mod:`repro.replay.artifact`), replay it as
just another workload source (:mod:`repro.replay.workload`), and run
one recorded trace against a matrix of alternative configurations
(:mod:`repro.replay.tournament`).  ``python -m repro.replay`` exposes
the record / replay / diff workflow on the command line; see
``src/repro/replay/README.md`` for the artifact schema and the
record→replay fixed-point contract.
"""

from repro.replay.artifact import (
    TRACE_DRIVERS,
    TRACE_KIND,
    TRACE_SCHEMA,
    RecordedTrace,
    decode_action,
    decode_catalog,
    encode_action,
    encode_catalog,
)
from repro.replay.recorder import (
    RecordingSpec,
    cluster_counters,
    record_heavy_workload,
    record_open_loop_service,
    record_wan_storm,
)
from repro.replay.tournament import (
    DEFAULT_CONFIGS,
    DIFF_METRICS,
    QUORUM_POLICIES,
    TournamentConfig,
    derive_catalog,
    diff_rows,
    fixed_point_ok,
    format_diff_table,
    replay_trace,
    run_tournament,
    tournament_run,
)
from repro.replay.workload import RecordedWorkload

__all__ = [
    "DEFAULT_CONFIGS",
    "DIFF_METRICS",
    "QUORUM_POLICIES",
    "RecordedTrace",
    "RecordedWorkload",
    "RecordingSpec",
    "TRACE_DRIVERS",
    "TRACE_KIND",
    "TRACE_SCHEMA",
    "TournamentConfig",
    "cluster_counters",
    "decode_action",
    "decode_catalog",
    "derive_catalog",
    "diff_rows",
    "encode_action",
    "encode_catalog",
    "fixed_point_ok",
    "format_diff_table",
    "record_heavy_workload",
    "record_open_loop_service",
    "record_wan_storm",
    "replay_trace",
    "run_tournament",
    "tournament_run",
]
