"""Small statistics helpers for the experiment tables.

Sweep rows report means; for the claims EXPERIMENTS.md makes
("protocol A keeps more data readable than protocol B") the benches
can additionally attach a confidence interval and a paired comparison,
so a reader knows the gap is not seed noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with a two-sided t confidence interval."""

    mean: float
    low: float
    high: float
    n: int
    confidence: float

    def __str__(self) -> str:
        return f"{self.mean:.4f} [{self.low:.4f}, {self.high:.4f}] (n={self.n})"


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Mean and t-interval of a sample.

    A single observation gets a degenerate interval (the point itself);
    an empty sample is a caller bug.
    """
    if not samples:
        raise ValueError("no samples")
    data = np.asarray(samples, dtype=float)
    mean = float(data.mean())
    n = len(data)
    if n == 1 or float(data.std(ddof=1)) == 0.0:
        return MeanCI(mean, mean, mean, n, confidence)
    sem = stats.sem(data)
    low, high = stats.t.interval(confidence, df=n - 1, loc=mean, scale=sem)
    return MeanCI(mean, float(low), float(high), n, confidence)


@dataclass(frozen=True)
class PairedComparison:
    """Paired-sample comparison of two protocols on identical scenarios."""

    mean_difference: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """Conventional 5% threshold."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        return (
            f"mean diff {self.mean_difference:+.4f}, "
            f"p={self.p_value:.4g} (n={self.n})"
        )


def paired_comparison(a: Sequence[float], b: Sequence[float]) -> PairedComparison:
    """Paired t-test of per-scenario samples ``a`` vs ``b``.

    The experiment sweeps run every protocol on the *same* seed-indexed
    scenarios, which is exactly the paired design; the difference
    distribution removes the (large) scenario-to-scenario variance.
    Identical samples return p = 1 (no evidence of any difference).
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    if len(a) < 2:
        raise ValueError("need at least two pairs")
    diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    if float(np.abs(diffs).sum()) == 0.0:
        return PairedComparison(0.0, 1.0, len(a))
    t_stat, p_value = stats.ttest_rel(a, b)
    if math.isnan(p_value):  # zero-variance differences
        p_value = 0.0 if diffs.mean() != 0 else 1.0
    return PairedComparison(float(diffs.mean()), float(p_value), len(a))
