"""Ablation experiments for the design choices in DESIGN.md §6.

* **A-PAIR (D4 extended)** — the commit protocols and termination
  rules must be paired as the paper pairs them.  CP2 commits once
  ``r(x)`` votes of *some* item sit in PC; that kills rule 2's abort
  branches (they need ``w(x)`` of *every* item from non-PC sites) but
  **not** rule 1's (``r(x)`` of some item from non-PC sites can still
  exist whenever ``2 r(x) <= v(x)``).  Running CP2 with rule 1 is
  therefore unsafe — this experiment demonstrates it with a concrete
  interleaving, turning the paper's "for similar reasons" remark into
  a measured negative result.
* **A-TIMEOUT (D1)** — safety does not depend on the timeout constant:
  running the model-check with aggressively shortened windows (spurious
  timeouts everywhere) still yields zero violations; only liveness
  (attempt counts) degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.cluster import Cluster
from repro.protocols.qtp.quorums import TerminationRule1, TerminationRule2
from repro.replication.catalog import CatalogBuilder
from repro.sim.failures import FailurePlan


@dataclass
class PairingResult:
    """Outcome of one CP/TP pairing on the adversarial scenario."""

    commit_protocol: str
    termination_rule: str
    outcome: str
    atomic: bool


def _adversarial_scenario(protocol: str, cross_pair: bool) -> PairingResult:
    """The interleaving that separates safe from unsafe pairings.

    Database: x with 4 one-vote copies at sites 1-4, r=2, w=3 (note
    ``2 r = 4 <= v = 4``: two disjoint read quorums exist — the
    precondition for the unsafety).

    Run: the prepare round reaches only sites 1 and 2 (r(x) = 2 votes
    -> CP2's commit quorum) while the COMMIT command to sites 3,4 is
    lost and the network splits {1,2} | {3,4}.  Partition {3,4} then
    polls two W sites holding r(x) = 2 votes:

    * rule 2 (the paper's pairing): needs w(x) = 3 votes from non-PC
      sites to abort -> blocks.  Safe.
    * rule 1 (crossed): r(x) of some item from non-PC sites suffices
      -> aborts, while {1,2} already committed.  Violation.
    """
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    cluster = Cluster(catalog, protocol=protocol)
    if cross_pair:
        crossed = (
            TerminationRule1(catalog)
            if protocol == "qtp2"
            else TerminationRule2(catalog)
        )
        for site in cluster.sites.values():
            site.engine.rule = crossed
    # the prepare round reaches only sites 1 and 2
    cluster.network.add_filter(
        lambda m: m.mtype.endswith(".prepare") and m.dst in (3, 4)
    )
    # the early COMMIT command never escapes {1, 2}
    cluster.network.add_filter(
        lambda m: m.mtype.endswith(".commit") and m.dst in (3, 4)
    )
    txn = cluster.update(origin=1, writes={"x": 7})
    cluster.arm_failures(FailurePlan().partition(4.5, [1, 2], [3, 4]))
    cluster.run()
    report = cluster.outcome(txn.txn)
    rule_name = cluster.sites[1].engine.rule.name
    return PairingResult(protocol, rule_name, report.outcome, report.atomic)


def pairing_ablation() -> list[PairingResult]:
    """Run all four CP x TP pairings on the adversarial scenario.

    Expected: the paper's pairings (CP1+TP1, CP2+TP2) and the
    conservative cross (CP1+TP2) stay atomic; CP2+TP1 violates.
    """
    return [
        _adversarial_scenario("qtp1", cross_pair=False),
        _adversarial_scenario("qtp2", cross_pair=False),
        _adversarial_scenario("qtp1", cross_pair=True),
        _adversarial_scenario("qtp2", cross_pair=True),
    ]


@dataclass
class TimeoutAblationRow:
    """Model-check outcome under one timeout scaling."""

    timeout_scale: float
    runs: int
    violations: int
    mean_term_attempts: float


def timeout_ablation(
    scales: tuple[float, ...] = (1.0, 0.5, 0.25),
    runs: int = 20,
    base_seed: int = 0,
) -> list[TimeoutAblationRow]:
    """D1: shrink every protocol window; safety must survive.

    The engines derive windows from ``T``; scaling the engine's view of
    ``T`` below the real network bound manufactures spurious timeouts
    (acks arriving after the window closed), which is exactly the
    failure mode a wrong delay estimate causes in practice.
    """
    from repro.experiments.sweeps import _one_availability_run  # same scenario pool
    from repro.sim.rng import RngRegistry
    from repro.workload.generators import random_catalog, random_fault_plan, random_update

    rows = []
    for scale in scales:
        violations = 0
        attempts = 0
        for i in range(runs):
            seed = base_seed + i
            registry = RngRegistry(seed)
            rng = registry.stream("timeout-ablation")
            catalog = random_catalog(rng, n_sites=6, n_items=3, replication=3)
            origin, writes = random_update(rng, catalog, max_items=2)
            cluster = Cluster(catalog, protocol="qtp1", seed=seed)
            for site in cluster.sites.values():
                site.engine._T = cluster.T * scale  # the wrong estimate
            txn = cluster.update(origin, writes)
            plan = random_fault_plan(
                rng, cluster.network.sites, origin, heal_at=rng.uniform(30.0, 50.0)
            )
            cluster.arm_failures(plan)
            cluster.run()
            report = cluster.outcome(txn.txn)
            violations += not report.atomic
            attempts += cluster.tracer.count("term-phase1", txn=txn.txn)
        rows.append(TimeoutAblationRow(scale, runs, violations, attempts / runs))
    return rows
