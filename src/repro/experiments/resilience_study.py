"""Experiments E27/E28 — graceful degradation under churn and surge.

The gray-failure arm of the study: where E18–E26 stress fail-stop
faults (crash, partition, loss), these drivers stress the *in-between*
failure modes real installations live with — planned membership churn,
load surges, and sites that are slow rather than dead:

* **E27 rolling upgrade** (:func:`run_rolling_upgrade`) — waves of
  sites gracefully leave (:meth:`FailurePlan.leave
  <repro.sim.failures.FailurePlan.leave>`: catalog hand-off, drain,
  deregister) and rejoin upgraded, all under live closed-loop traffic
  with a retrying client.  The question: does a planned wave-by-wave
  decommission preserve commit availability the way a crash never can,
  and do client retries paper over the transient aborts?
* **E28 flash crowd** (:func:`run_flash_crowd`) — an open-loop service
  whose arrival rate follows a piecewise-constant schedule (quiet →
  surge → quiet) while an :class:`~repro.traffic.AdaptiveWindow`
  controller retunes the admission window against the streaming p99.
  The question: how much of the surge is shed vs absorbed, and does
  the controller widen back out after the crowd passes?
* **gray failure** (:func:`run_gray_failure`) — one degraded site
  (every delivery touching it stretched by ``factor``) plus a flapping
  link, under a fixed-window open-loop service.  Nothing is ever
  *down*, so the fail-stop counters stay quiet — the damage shows up
  only in the latency tail, which is exactly what makes gray failures
  hard to see.

All three are deterministic drivers returning flat counter dicts; the
benchmark suite pins them as ``BENCH_rolling_upgrade.json`` /
``BENCH_flash_crowd.json`` / ``BENCH_gray_failure.json``, and the
gray-failure run is recordable/replayable like any other open-loop
service (the artifact codec round-trips degrade/flap actions).
"""

from __future__ import annotations

from typing import Any

from repro.concurrency.serializability import ConflictGraph
from repro.db.cluster import Cluster
from repro.engine.resilience import RetryPolicy
from repro.experiments.service_study import run_open_loop_service
from repro.sim.failures import FailurePlan, JoinSite, LeaveSite
from repro.sim.rng import RngRegistry
from repro.traffic import AdaptiveWindow, TrafficEngine
from repro.workload.generators import memoized_catalog, random_catalog
from repro.workload.spec import WorkloadSpec

#: the default client retry policy for rolling upgrades: three attempts
#: with a bounded exponential backoff on the virtual clock.
UPGRADE_RETRY = RetryPolicy(max_attempts=3, backoff=0.5, backoff_cap=4.0)


def rolling_upgrade_plan(
    catalog,
    sites: "list[int]",
    waves: int,
    first_leave: float,
    wave_spacing: float,
    upgrade_time: float,
) -> FailurePlan:
    """The wave-by-wave leave/rejoin schedule for :func:`run_rolling_upgrade`.

    Wave ``k`` gracefully removes ``sites[k]`` at
    ``first_leave + k * wave_spacing`` and rejoins it ``upgrade_time``
    later with one vote per item it used to host, anchored near the
    last site (which is never upgraded, so the anchor always exists).
    Deterministic by construction — no RNG draws — so arming it never
    shifts the workload stream.
    """
    if waves >= len(sites):
        raise ValueError(
            f"cannot upgrade {waves} of {len(sites)} sites: the last site "
            "must survive as the rejoin anchor"
        )
    plan = FailurePlan()
    anchor = sites[-1]
    for k in range(waves):
        site = sites[k]
        # capture the hosted set *now*, before any eviction mutates the
        # catalog: the plan is built against the pristine placement.
        hosted = [i for i in catalog.item_names if site in catalog.sites_of(i)]
        t_leave = first_leave + k * wave_spacing
        plan.leave(t_leave, site)
        plan.join(
            t_leave + upgrade_time, site, copies={i: 1 for i in hosted}, near=anchor
        )
    return plan


def run_rolling_upgrade(
    protocol: str,
    seed: int = 0,
    n_txns: int = 70,
    n_sites: int = 9,
    n_items: int = 6,
    replication: int = 3,
    waves: int = 3,
    first_leave: float = 12.0,
    wave_spacing: float = 18.0,
    upgrade_time: float = 9.0,
    mean_spacing: float = 1.2,
    retry: RetryPolicy | None = UPGRADE_RETRY,
) -> dict[str, Any]:
    """E27: wave-by-wave graceful site upgrades under live traffic.

    ``waves`` sites leave one at a time (catalog hand-off, in-flight
    drain, deregister) and rejoin ``upgrade_time`` virtual seconds
    later hosting the same items, while a closed-loop interactive
    stream keeps submitting — with a client :class:`RetryPolicy`, so a
    transient abort during a wave is re-submitted after deterministic
    capped backoff rather than counted as lost.  Ops whose origin is
    mid-upgrade are tallied ``unreachable_origin``, never silently
    dropped.

    The counters to watch: ``leaves_applied`` / ``joins_applied``
    confirm every wave completed, ``sites_restored`` that each upgraded
    site is back in the live set at quiescence, ``retry_attempts`` the
    retry work the waves induced, and ``serializable`` that churn never
    cost one-copy serializability.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("rolling-upgrade")
    # mutable: leaves evict and rejoins re-admit catalog placements, so
    # each trial forks the memoized original
    catalog = memoized_catalog(
        rng,
        ("rolling-upgrade", n_sites, n_items, replication),
        lambda r: random_catalog(
            r, n_sites=n_sites, n_items=n_items, replication=replication
        ),
        mutable=True,
    )
    spec = WorkloadSpec(n_txns=n_txns, mean_spacing=mean_spacing)
    compiled = spec.compile(catalog)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)

    upgraded = sorted(cluster.network.sites)
    plan = rolling_upgrade_plan(
        catalog, upgraded, waves, first_leave, wave_spacing, upgrade_time
    )
    cluster.arm_failures(plan)

    engine = TrafficEngine(cluster, compiled, rng, retry=retry)
    outcomes, handles = engine.run_closed()

    committed = aborted = blocked = 0
    for txn in handles:
        outcome = cluster.outcome(txn).outcome
        if outcome == "commit":
            committed += 1
        elif outcome == "abort":
            aborted += 1
        else:
            blocked += 1
    history = cluster.committed_history()
    return {
        "submitted": len(handles) + len(outcomes),
        "committed": committed,
        "client_aborted": sum(1 for o in outcomes.values() if o == "client-aborted"),
        "protocol_aborted": aborted,
        "blocked": blocked,
        "serializable": ConflictGraph(history).is_serializable(),
        "leaves_applied": sum(
            1 for a in cluster.injector.applied if isinstance(a, LeaveSite)
        ),
        "joins_applied": sum(
            1 for a in cluster.injector.applied if isinstance(a, JoinSite)
        ),
        "sites_restored": sum(1 for s in upgraded[:waves] if s in cluster.sites),
        "retry_attempts": engine.retry_attempts,
        "unreachable_origin": engine.tallies.get("unreachable_origin", 0),
        "messages_sent": cluster.network.sent,
        "messages_delivered": cluster.network.delivered,
    }


def run_flash_crowd(
    protocol: str,
    seed: int = 0,
    base_rate: float = 1.0,
    surge_rate: float = 6.0,
    surge_start: float = 40.0,
    surge_length: float = 30.0,
    duration: float = 120.0,
    n_sites: int = 9,
    n_items: int = 12,
    replication: int = 3,
    window: int = 4,
    adapt: AdaptiveWindow | None = None,
) -> dict[str, Any]:
    """E28: a flash crowd through the adaptive admission controller.

    The arrival rate follows a three-step schedule — ``base_rate``
    until ``surge_start``, ``surge_rate`` for ``surge_length`` seconds,
    then back to ``base_rate`` — on a quiet network (the surge *is* the
    event).  The default :class:`~repro.traffic.AdaptiveWindow` narrows
    the per-site window when the windowed p99 blows past its target —
    commit latency here is protocol-round-bound, so the default target
    sits below the contended tail and the pinned trajectory is the
    shedding arm.  The ``window_narrowed`` / ``window_widened`` /
    ``window_final`` counters are the controller's trajectory, and
    ``shed_backpressure`` is the traffic it refused to keep the tail.
    """
    if adapt is None:
        adapt = AdaptiveWindow(target_p99=3.0, low=1, high=12, interval=10.0)
    spec = WorkloadSpec(
        arrival="open",
        rate=base_rate,
        duration=duration,
        rate_schedule=(
            (0.0, base_rate),
            (surge_start, surge_rate),
            (surge_start + surge_length, base_rate),
        ),
    )
    result = run_open_loop_service(
        protocol,
        seed=seed,
        rate=base_rate,
        duration=duration,
        n_sites=n_sites,
        n_items=n_items,
        replication=replication,
        window=window,
        episode_window=None,
        workload=spec,
        adapt=adapt,
    )
    return dict(result.counters())


def gray_failure_plan(
    start: float,
    length: float,
    slow_site: int,
    factor: float,
    flap_src: int,
    flap_dst: int,
    period: float = 6.0,
    duty: float = 0.5,
    cycles: int = 3,
) -> FailurePlan:
    """One deterministic gray-failure episode: a slow site plus a
    flapping link, healed after ``length`` virtual seconds.  No RNG
    draws, so arming it never shifts an arrival stream."""
    return (
        FailurePlan()
        .degrade(start, slow_site, factor)
        .flap(start, flap_src, flap_dst, period, duty=duty, cycles=cycles)
        .restore(start + length, slow_site)
    )


def run_gray_failure(
    protocol: str,
    seed: int = 0,
    rate: float = 1.5,
    duration: float = 120.0,
    n_sites: int = 9,
    n_items: int = 6,
    replication: int = 3,
    window: int = 4,
    episode_start: float = 30.0,
    episode_length: float = 40.0,
    factor: float = 6.0,
    failures: FailurePlan | None = None,
) -> dict[str, Any]:
    """The gray-failure service run: slow, not dead.

    One open-loop interval where the first hosting site delivers
    ``factor`` times slower (every message in or out stretched at the
    delay-sampling layer) and the link between the next two hosting
    sites flaps on a deterministic duty cycle —
    while every site stays *alive*, so ``shed_unreachable`` and the
    crash counters stay at their quiet-run values.  The episode shows
    up only where gray failures always do — stretched decisions that
    trip protocol timeouts (``protocol_aborted`` up, ``committed``
    down) and a fatter latency distribution — which is the signature
    this driver exists to measure.

    ``failures`` overrides the built-in :func:`gray_failure_plan`
    episode (the replay harness passes the recorded plan through).
    """
    if failures is None:
        # derive the same memoized catalog the service will bind (the
        # memo also restores the stream position, so the arrival draws
        # are untouched) and aim the episode at sites that exist — a
        # random catalog does not necessarily host every id in range
        registry = RngRegistry(seed)
        rng = registry.stream("open-loop")
        catalog = memoized_catalog(
            rng,
            ("open-loop", n_sites, n_items, replication),
            lambda r: random_catalog(
                r, n_sites=n_sites, n_items=n_items, replication=replication
            ),
        )
        hosts = sorted(catalog.all_sites())
        failures = gray_failure_plan(
            episode_start, episode_length, slow_site=hosts[0], factor=factor,
            flap_src=hosts[1], flap_dst=hosts[2],
        )
    result = run_open_loop_service(
        protocol,
        seed=seed,
        rate=rate,
        duration=duration,
        n_sites=n_sites,
        n_items=n_items,
        replication=replication,
        window=window,
        failures=failures,
    )
    return dict(result.counters())
