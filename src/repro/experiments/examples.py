"""Experiments E3, E4, E7, E8 — the paper's worked examples, asserted.

Each runner replays a scenario from :mod:`repro.workload.scenarios`
and distills the paper's prose claim into a structured verdict the
benchmarks print and the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.scenarios import (
    EXAMPLE1_GROUPS,
    run_example1_scenario,
    run_example3_scenario,
)


@dataclass
class Example1Verdict:
    """E3: Skeen's protocol [16] blocks every partition of Fig. 3."""

    outcome: str
    blocked_in_all_partitions: bool
    x_readable_in_g1: bool
    y_writable_in_g3: bool
    availability_table: str

    @property
    def matches_paper(self) -> bool:
        """The paper: TR blocks everywhere; x and y inaccessible."""
        return (
            self.outcome == "blocked"
            and self.blocked_in_all_partitions
            and not self.x_readable_in_g1
            and not self.y_writable_in_g3
        )


def run_example1(seed: int = 0) -> Example1Verdict:
    """E3: the Fig. 3 failure under Skeen's site-quorum protocol."""
    result = run_example1_scenario("skq", seed=seed)
    availability = result.cluster.availability()
    g1, g2, g3 = (frozenset(g) for g in EXAMPLE1_GROUPS)
    states = result.states()
    undecided = {s for s, st in states.items() if st not in ("C", "A")}
    return Example1Verdict(
        outcome=result.outcome,
        blocked_in_all_partitions=all(
            any(site in undecided for site in group) for group in EXAMPLE1_GROUPS
        ),
        x_readable_in_g1=availability.row(g1, "x").readable,
        y_writable_in_g3=availability.row(g3, "y").writable,
        availability_table=availability.describe(),
    )


@dataclass
class Example2Verdict:
    """E8: 3PC termination is inconsistent under the Fig. 3 partitioning."""

    outcome: str
    committed_sites: list[int]
    aborted_sites: list[int]
    g2_committed: bool
    g1_g3_aborted: bool

    @property
    def matches_paper(self) -> bool:
        """The paper: G2 commits TR while G1 and G3 abort it."""
        return self.outcome == "mixed" and self.g2_committed and self.g1_g3_aborted


def run_example2(seed: int = 0) -> Example2Verdict:
    """E8: the Fig. 3 failure under 3PC + Skeen's termination protocol."""
    result = run_example1_scenario("3pc", seed=seed)
    committed = set(result.report.committed_sites)
    aborted = set(result.report.aborted_sites)
    g1, g2, g3 = EXAMPLE1_GROUPS
    return Example2Verdict(
        outcome=result.outcome,
        committed_sites=sorted(committed),
        aborted_sites=sorted(aborted),
        g2_committed=committed == {4, 5},
        g1_g3_aborted=aborted == {2, 3} | set(g3),
    )


@dataclass
class Example3Verdict:
    """E7: two coordinators — broken vs enforced ignore rules."""

    enforce_ignore_rules: bool
    outcome: str
    atomic: bool
    ignored_messages: int

    @property
    def matches_paper(self) -> bool:
        """Broken variant terminates inconsistently; enforced stays atomic."""
        if self.enforce_ignore_rules:
            return self.atomic and self.outcome in ("commit", "abort")
        return not self.atomic and self.outcome == "mixed"


def run_example3(enforce_ignore_rules: bool, seed: int = 0) -> Example3Verdict:
    """E7: the Fig. 7 two-coordinator scenario."""
    result = run_example3_scenario(enforce_ignore_rules, seed=seed)
    return Example3Verdict(
        enforce_ignore_rules=enforce_ignore_rules,
        outcome=result.outcome,
        atomic=result.report.atomic,
        ignored_messages=result.cluster.tracer.count("ignored", txn=result.txn.txn),
    )


@dataclass
class Example4Verdict:
    """E4: termination protocol 1 restores availability in G1 and G3."""

    outcome: str
    g1_aborted: bool
    g3_aborted: bool
    g2_blocked: bool
    x_readable_in_g1: bool
    x_writable_in_g1: bool
    y_writable_in_g3: bool
    availability_table: str

    @property
    def matches_paper(self) -> bool:
        """The paper: TR aborts in G1 and G3; x readable in G1 (not
        writable — site 1 is down); y updatable in G3; G2 stays blocked."""
        return (
            self.g1_aborted
            and self.g3_aborted
            and self.g2_blocked
            and self.x_readable_in_g1
            and not self.x_writable_in_g1
            and self.y_writable_in_g3
        )


def run_example4(seed: int = 0, protocol: str = "qtp1") -> Example4Verdict:
    """E4: the Fig. 3 failure under the paper's protocol 1."""
    result = run_example1_scenario(protocol, seed=seed)
    states = result.states()
    availability = result.cluster.availability()
    g1, g2, g3 = (frozenset(g) for g in EXAMPLE1_GROUPS)
    return Example4Verdict(
        outcome=result.outcome,
        g1_aborted=all(states.get(s) == "A" for s in (2, 3)),
        g3_aborted=all(states.get(s) == "A" for s in (6, 7, 8)),
        g2_blocked=all(states.get(s) in ("W", "PC") for s in (4, 5)),
        x_readable_in_g1=availability.row(g1, "x").readable,
        x_writable_in_g1=availability.row(g1, "x").writable,
        y_writable_in_g3=availability.row(g3, "y").writable,
        availability_table=availability.describe(),
    )
