"""The scenario-diversity drivers (E22–E25) over :class:`WorkloadSpec`.

Four contention regimes the uniform generators cannot reach, each a
deterministic driver returning a flat dict of counters (the benchmark
suite pins their trajectories as ``BENCH_*.json`` baselines):

* **E22 skewed contention** (:func:`run_skewed_contention`) — Zipf item
  popularity concentrates the stream on a few hot items, so the no-wait
  locking policy and the vote hook fire constantly.  Rides the E18
  driver with a Zipf spec.
* **E23 read-mostly** (:func:`run_read_mostly`) — a read-dominated mix:
  most transactions are read-only (client-side fast path), updates
  still pay the full commit protocol.  Rides the E18 driver.
* **E24 cross-region transactions** (:func:`run_cross_region`) — a WAN
  catalog where a slice of the stream originates in regions hosting no
  copy of the item: every quorum those transactions assemble is remote,
  and a region-aligned partition cuts them off entirely.
* **E25 elastic join under storm** (:func:`run_elastic_join`) — sites
  join mid-run (``FailurePlan.join``) while partition waves are in
  flight; joined sites land inside an existing component, host copies,
  and become participants of later transactions.
"""

from __future__ import annotations

from typing import Any

from repro.concurrency.serializability import ConflictGraph
from repro.db.cluster import Cluster
from repro.experiments.workload_study import run_heavy_workload
from repro.sim.failures import FailurePlan, JoinSite
from repro.sim.rng import RngRegistry
from repro.traffic import TrafficEngine
from repro.workload.generators import (
    memoized_catalog,
    random_catalog,
    random_partition_groups,
    wan_catalog,
    wan_regions,
)
from repro.workload.spec import WorkloadSpec


def _result_counters(result) -> dict[str, Any]:
    """The deterministic tallies of a :class:`WorkloadResult`."""
    return {
        "submitted": result.submitted,
        "committed": result.committed,
        "client_aborted": result.client_aborted,
        "protocol_aborted": result.protocol_aborted,
        "blocked": result.blocked,
        "reads_committed": result.reads_committed,
        "serializable": result.serializable,
    }


def run_skewed_contention(
    protocol: str,
    seed: int = 0,
    n_txns: int = 80,
    n_sites: int = 10,
    n_items: int = 8,
    zipf_s: float = 1.4,
    mean_spacing: float = 1.2,
) -> dict[str, Any]:
    """E22: Zipf-skewed traffic through partition episodes.

    Same harness as E18, but the item picks follow a Zipf law: the
    hottest item draws an outsized share of the stream, so most
    transactions collide on the same copies — ``client_aborted`` (the
    no-wait policy's lock-conflict count) is the contention meter the
    uniform stream keeps near zero.
    """
    spec = WorkloadSpec(
        n_txns=n_txns, popularity="zipf", zipf_s=zipf_s, mean_spacing=mean_spacing
    )
    harvested: dict[str, Any] = {}

    def probe(cluster: Cluster) -> None:
        harvested["hot_txns"] = sum(
            1
            for txn in cluster._txns.values()
            if any(item == cluster.catalog.item_names[0] for item in txn.writes)
        )

    result = run_heavy_workload(
        protocol,
        seed=seed,
        n_sites=n_sites,
        n_items=n_items,
        probe=probe,
        workload=spec,
    )
    return {**_result_counters(result), **harvested}


def run_read_mostly(
    protocol: str,
    seed: int = 0,
    n_txns: int = 100,
    n_sites: int = 10,
    n_items: int = 8,
    read_fraction: float = 0.8,
    mean_spacing: float = 1.0,
) -> dict[str, Any]:
    """E23: a read-dominated mix through partition episodes.

    Most of the stream is read-only — quorum reads under shared locks,
    committed on the client-side fast path — while the update tail
    still runs the commit protocol.  Measures what read availability a
    client population actually sees while updates hold locks and the
    network partitions.
    """
    spec = WorkloadSpec(
        n_txns=n_txns, read_fraction=read_fraction, mean_spacing=mean_spacing
    )
    result = run_heavy_workload(
        protocol, seed=seed, n_sites=n_sites, n_items=n_items, workload=spec
    )
    return _result_counters(result)


def run_cross_region(
    protocol: str,
    seed: int = 0,
    n_txns: int = 40,
    n_regions: int = 3,
    sites_per_region: int = 4,
    n_items: int = 6,
    region_replication: int = 2,
    cross_region: float = 0.6,
    mean_spacing: float = 2.0,
    partition_window: tuple[float, float] = (20.0, 60.0),
) -> dict[str, Any]:
    """E24: cross-region transactions over the WAN topology.

    A geo-replicated catalog with copies in ``region_replication`` of
    ``n_regions`` regions; with probability ``cross_region`` an update
    originates in a region hosting *no copy* of its first item, so its
    every quorum crosses a region boundary.  Mid-run the network
    partitions along region lines: the spanning slice of the stream
    loses its quorums outright (``refused``), the home slice keeps
    committing inside its region.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("cross-region")
    catalog = memoized_catalog(
        rng,
        ("cross-region", n_regions, sites_per_region, n_items, region_replication),
        lambda r: wan_catalog(
            r,
            n_regions=n_regions,
            sites_per_region=sites_per_region,
            n_items=n_items,
            region_replication=region_replication,
        ),
    )
    regions = wan_regions(n_regions, sites_per_region)
    spec = WorkloadSpec(
        n_txns=n_txns,
        footprint=(1, 2),
        cross_region=cross_region,
        mean_spacing=mean_spacing,
    )
    compiled = spec.compile(catalog, regions)
    all_sites = [site for region in regions for site in region]
    cluster = Cluster(catalog, protocol=protocol, seed=seed, extra_sites=all_sites)
    plan = FailurePlan()
    plan.partition(partition_window[0], *[list(r) for r in regions])
    plan.heal(partition_window[1])
    cluster.arm_failures(plan)

    engine = TrafficEngine(cluster, compiled, rng)
    engine.run_closed(submit=engine.submit_direct)
    tallies, handles = engine.tallies, engine.handles

    committed = aborted = blocked = holding = 0
    for txn in handles:
        outcome = cluster.outcome(txn).outcome
        if outcome == "commit":
            committed += 1
        elif outcome == "abort":
            aborted += 1
        else:
            # undecided at quiescence.  A cross-region coordinator cut
            # off before any participant durably joined leaves a txn
            # nobody can decide — but also nobody holds locks for, so
            # availability is untouched; only undecided txns with live
            # in-doubt participants actually pin data.
            blocked += 1
            holding += bool(cluster.live_undecided(txn))
    return {
        **tallies,
        "committed": committed,
        "protocol_aborted": aborted,
        "blocked": blocked,
        "blocked_holding_locks": holding,
        "messages_sent": cluster.network.sent,
        "messages_dropped": cluster.network.dropped,
    }


def run_elastic_join(
    protocol: str,
    seed: int = 0,
    n_txns: int = 60,
    n_sites: int = 8,
    n_items: int = 6,
    replication: int = 3,
    n_joins: int = 3,
    join_copies: int = 2,
    mean_spacing: float = 1.5,
) -> dict[str, Any]:
    """E25: elastic membership under a partition storm.

    A steady update stream runs while the network splits, ``n_joins``
    fresh sites join *inside the active partition* (each placed next to
    an existing site, hosting copies of the first ``join_copies``
    items), a second wave re-partitions across old and new sites, and
    the storm heals.  Joined sites receive a component-local state
    transfer, then simply show up as reachable participants: the
    ``participants_with_joined`` counter tracks how many transactions
    actually enlisted them.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("elastic-join")
    # mutable: joins admit_site into the catalog mid-run, so each trial
    # gets a fork and the cached original stays pristine
    catalog = memoized_catalog(
        rng,
        ("elastic-join", n_sites, n_items, replication),
        lambda r: random_catalog(r, n_sites=n_sites, n_items=n_items, replication=replication),
        mutable=True,
    )
    spec = WorkloadSpec(n_txns=n_txns, mean_spacing=mean_spacing)
    compiled = spec.compile(catalog)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)

    initial = list(cluster.network.sites)
    join_ids = list(range(n_sites + 1, n_sites + 1 + n_joins))
    hot_items = catalog.item_names[:join_copies]
    first_wave = random_partition_groups(rng, initial, 2)
    plan = FailurePlan()
    plan.partition(15.0, *first_wave)
    for k, joiner in enumerate(join_ids):
        # alternate the joiners across the live components
        near = first_wave[k % len(first_wave)][0]
        plan.join(20.0 + 3.0 * k, joiner, copies={i: 1 for i in hot_items}, near=near)
    second_wave = random_partition_groups(rng, initial + join_ids, 3)
    plan.partition(45.0, *second_wave)
    plan.heal(70.0)
    cluster.arm_failures(plan)

    engine = TrafficEngine(cluster, compiled, rng)
    # the interactive policy: the spec has no read fraction, so the
    # engine's read fast path is dead and the stream is draw-for-draw
    # the historical update loop
    outcomes, handles = engine.run_closed()

    committed = aborted = blocked = 0
    for txn in handles:
        outcome = cluster.outcome(txn).outcome
        if outcome == "commit":
            committed += 1
        elif outcome == "abort":
            aborted += 1
        else:
            blocked += 1
    joined = set(join_ids)
    history = cluster.committed_history()
    return {
        "submitted": len(handles) + len(outcomes),
        "committed": committed,
        "client_aborted": sum(1 for o in outcomes.values() if o == "client-aborted"),
        "protocol_aborted": aborted,
        "blocked": blocked,
        "serializable": ConflictGraph(history).is_serializable(),
        "joins_applied": sum(
            1 for a in cluster.injector.applied if isinstance(a, JoinSite)
        ),
        "joined_hosting": sum(
            1 for j in join_ids for i in hot_items if j in catalog.sites_of(i)
        ),
        "participants_with_joined": sum(
            1 for h in handles.values() if joined & set(h.participants)
        ),
        "messages_sent": cluster.network.sent,
        "messages_delivered": cluster.network.delivered,
    }
