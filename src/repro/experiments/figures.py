"""Experiments E5, E6, E9 — the analytic figures.

* E5 re-derives Fig. 4 (partition states, concurrency sets) and runs
  the §2 impossibility argument.
* E6 / E9 tabulate the Fig. 5 / Fig. 8 decision matrices: for a family
  of representative partition states over the Fig. 3 database, which
  decision does each termination rule reach?  The matrix makes the two
  rules' trade-off visible: rule 1 aborts more readily (r-some), rule 2
  commits more readily (r-some on the commit side).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.partition_states import (
    concurrency_sets,
    format_concurrency_table,
    impossibility_argument,
)
from repro.protocols.base import TerminationRule
from repro.protocols.qtp.quorums import TerminationRule1, TerminationRule2
from repro.protocols.skeen import SkeenQuorumRule
from repro.protocols.states import TxnState
from repro.workload.scenarios import example1_catalog


@dataclass
class Fig4Result:
    """E5 output: the derived table plus the verified argument chain."""

    table: str
    argument: list[str]

    def format(self) -> str:
        """Render the derived table plus the verified argument."""
        lines = [self.table, "", "impossibility argument (each step verified):"]
        lines += [f"  {i + 1}. {step}" for i, step in enumerate(self.argument)]
        return "\n".join(lines)


def run_fig4(n_sites: int = 5) -> Fig4Result:
    """E5: derive the concurrency sets and verify the impossibility chain."""
    sets = concurrency_sets(n_sites)
    steps = impossibility_argument(sets)
    return Fig4Result(
        table=format_concurrency_table(sets),
        argument=[f"{s.claim} — because {s.because}" for s in steps],
    )


#: representative partition states over the Fig. 3 database (sites 1-8;
#: x at 1-4, y at 5-8; r=2, w=3).  Each row: (label, {site: state}).
DECISION_MATRIX_CASES: list[tuple[str, dict[int, TxnState]]] = [
    ("G1 of Example 1: sites 2,3 in W", {2: TxnState.W, 3: TxnState.W}),
    ("G2 of Example 1: 4 in W, 5 in PC", {4: TxnState.W, 5: TxnState.PC}),
    ("G3 of Example 1: 6,7,8 in W", {6: TxnState.W, 7: TxnState.W, 8: TxnState.W}),
    (
        "write quorum of x in PC",
        {1: TxnState.PC, 2: TxnState.PC, 3: TxnState.PC, 5: TxnState.PC,
         6: TxnState.PC, 7: TxnState.PC},
    ),
    (
        "one participant committed",
        {2: TxnState.C, 3: TxnState.W},
    ),
    (
        "one participant still initial",
        {2: TxnState.Q, 3: TxnState.W, 4: TxnState.W},
    ),
    (
        "abort quorum of x already in PA",
        {1: TxnState.PA, 2: TxnState.PA, 3: TxnState.W},
    ),
    (
        "full partition, all in W",
        {s: TxnState.W for s in range(1, 9)},
    ),
    (
        "full partition, all in PC",
        {s: TxnState.PC for s in range(1, 9)},
    ),
    (
        "PC present but x-votes exhausted by PA",
        {1: TxnState.PA, 2: TxnState.PA, 3: TxnState.PA, 5: TxnState.PC,
         6: TxnState.W, 7: TxnState.W},
    ),
]


@dataclass
class DecisionMatrix:
    """E6/E9 output: decision of each rule on each representative state."""

    rules: list[str]
    rows: list[tuple[str, list[str]]]

    def format(self) -> str:
        """Render the decision matrix as an aligned text table."""
        width = max(len(label) for label, _ in self.rows) + 2
        header = " " * width + "  ".join(f"{r:<16}" for r in self.rules)
        lines = [header]
        for label, decisions in self.rows:
            lines.append(
                f"{label:<{width}}" + "  ".join(f"{d:<16}" for d in decisions)
            )
        return "\n".join(lines)


def run_decision_matrix(rules: list[TerminationRule] | None = None) -> DecisionMatrix:
    """E6/E9: evaluate termination rules over the representative states.

    Defaults to rule 1, rule 2, and Skeen's site-quorum rule with the
    Example 1 parameters (1 vote per site, Vc = 5, Va = 4), so the
    availability difference the paper argues in Examples 1/4 shows up
    as BLOCK vs TRY_ABORT entries in the first and third rows.
    """
    catalog = example1_catalog()
    if rules is None:
        rules = [
            TerminationRule1(catalog),
            TerminationRule2(catalog),
            SkeenQuorumRule({s: 1 for s in range(1, 9)}, vc=5, va=4),
        ]
    items = ["x", "y"]
    rows = []
    for label, states in DECISION_MATRIX_CASES:
        rows.append(
            (label, [rule.evaluate(items, states).value for rule in rules])
        )
    return DecisionMatrix(rules=[rule.name for rule in rules], rows=rows)
