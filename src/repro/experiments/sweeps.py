"""Experiments E11, E13, E14 (+ E21) — the randomized sweeps.

These operationalize the paper's comparative and correctness claims:

* **E11 availability sweep** — the §5 headline: across random
  placements, transactions and partitionings, what fraction of
  (partition, item) pairs remain readable / writable after the
  termination protocol has done what it can?  Compared across all five
  protocol families, with atomicity violations tracked (3PC buys its
  availability with inconsistency).
* **E13 reenterability storm** — §3.1 property (3): additional
  failures *during* termination re-enter the protocol; after the last
  heal, every transaction must terminate consistently.
* **E14 randomized model-check** — Theorem 1 over thousands of random
  fault schedules: no run of the quorum protocols ever mixes COMMIT
  and ABORT, and every decision agrees with the first.
* **E21 WAN partition storm** — the same questions at installation
  scale: 32+ sites split region-wise by repeated partition waves.

All drivers route through :mod:`repro.engine`: each accepts a
``workers=`` argument to fan runs out over a process pool, and a
``store=`` argument (a :class:`repro.engine.ResultStore`) to persist
the raw per-run artifact.  Per-run seeds come from the spec, not from
execution order, so every aggregate below is bit-identical at every
worker count.  The ``seeding="offset"`` mode (seed = base_seed + run)
keeps the historical trajectories: every protocol sees the *same*
scenario sequence, and results match the pre-engine serial loops
exactly.

Each driver also accepts a ``sink=`` argument (a
:class:`repro.engine.ResultSink`): when given, the sweep runs on the
streaming backend — rows flow through the caller's sink (e.g. a
``JsonlSink`` persisting 10^5 rows incrementally) *and* through the
driver's own per-cell fold, and the returned aggregates are identical
to the default path because the folds do the same arithmetic in the
same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.cluster import Cluster
from repro.engine import CellFoldSink, ResultSink, ResultStore, SweepSpec, TeeSink, run_sweep
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.workload.generators import (
    memoized_catalog,
    random_catalog,
    random_fault_plan,
    random_partition_groups,
    random_update,
)
from repro.workload.scenarios import run_wan_storm


@dataclass
class SweepRow:
    """Aggregated availability outcome for one protocol (E11 / E21)."""

    protocol: str
    runs: int
    readable_fraction: float
    writable_fraction: float
    blocked_runs: int
    violation_runs: int
    decided_runs: int

    def format_row(self) -> str:
        """One aligned summary line for the availability table."""
        return (
            f"{self.protocol:<6} runs={self.runs:<4} "
            f"readable={self.readable_fraction:6.1%} "
            f"writable={self.writable_fraction:6.1%} "
            f"blocked-runs={self.blocked_runs:<4} "
            f"violations={self.violation_runs}"
        )


def availability_run(seed: int, protocol: str) -> tuple[float, float, bool, bool, bool]:
    """One sweep sample; returns (readable, writable, blocked, violated, decided).

    Availability is measured over the *writeset* items only — those are
    the items the in-doubt transaction holds locks on; items it never
    touched are equally available under every protocol and would only
    dilute the comparison.  "Blocked" means some live participant is
    still undecided at quiescence.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("sweep")
    # every protocol cell replays the same seeds (seeding="offset"), so
    # the catalog memo rebuilds each scenario's catalog once, not once
    # per protocol — stream-identical by state capture/restore
    catalog = memoized_catalog(
        rng, ("e11-sweep", 8, 4, 4), lambda r: random_catalog(r, n_sites=8, n_items=4, replication=4)
    )
    origin, writes = random_update(rng, catalog, max_items=2)
    if protocol == "skq-pinned":
        # the paper's Example-1 configuration: quorums pinned over the
        # whole installation (Vc = majority of all site votes), so small
        # participant sets can never reach either quorum.
        cluster = Cluster(
            catalog, protocol="skq", seed=seed, commit_quorum=5, abort_quorum=4
        )
    else:
        cluster = Cluster(catalog, protocol=protocol, seed=seed)
    txn = cluster.update(origin, writes)
    plan = random_fault_plan(
        rng,
        sites=cluster.network.sites,
        coordinator=origin,
        t_window=(1.0, 4.5),
        n_groups=rng.choice([2, 2, 3]),
    )
    cluster.arm_failures(plan)
    cluster.run()
    report = cluster.outcome(txn.txn)
    availability = cluster.availability()
    writeset_rows = [row for row in availability.rows if row.item in writes]
    readable = sum(r.readable for r in writeset_rows) / len(writeset_rows)
    writable = sum(r.writable for r in writeset_rows) / len(writeset_rows)
    return (
        readable,
        writable,
        bool(cluster.live_undecided(txn.txn)),
        not report.atomic,
        report.outcome in ("commit", "abort"),
    )


# backward-compatible alias (pre-engine name, positional order differs)
def _one_availability_run(protocol: str, seed: int) -> tuple[float, float, bool, bool, bool]:
    return availability_run(seed=seed, protocol=protocol)


def _fold_availability(state, result):
    """Per-cell streaming fold over (readable, writable, blocked,
    violated, decided) samples — same additions, in the same order, as
    the historical ``sum()``-over-collected-samples aggregation."""
    if state is None:
        state = [0, 0, 0, 0, 0, 0]  # n, readable, writable, blocked, violated, decided
    readable, writable, blocked, violated, decided = result.value
    state[0] += 1
    state[1] += readable
    state[2] += writable
    state[3] += blocked
    state[4] += violated
    state[5] += decided
    return state


def _availability_fold_rows(folder: CellFoldSink) -> list[SweepRow]:
    """One :class:`SweepRow` per folded cell, in expansion order."""
    return [
        SweepRow(
            protocol=params["protocol"],
            runs=state[0],
            readable_fraction=state[1] / state[0],
            writable_fraction=state[2] / state[0],
            blocked_runs=state[3],
            violation_runs=state[4],
            decided_runs=state[5],
        )
        for params, state in folder.cells()
    ]


def _availability_rows(outcome) -> list[SweepRow]:
    """Fold raw (readable, writable, blocked, violated, decided) samples
    into one :class:`SweepRow` per protocol cell."""
    folder = CellFoldSink(_fold_availability)
    for result in outcome.results:
        folder.emit(result)
    return _availability_fold_rows(folder)


def _run_availability_spec(
    spec: SweepSpec,
    workers: int,
    store: ResultStore | None,
    sink: ResultSink | None,
) -> list[SweepRow]:
    """Run an availability-shaped sweep, streaming when a sink is given."""
    if sink is None:
        return _availability_rows(run_sweep(spec, workers=workers, store=store))
    folder = CellFoldSink(_fold_availability)
    run_sweep(spec, workers=workers, store=store, sink=TeeSink(sink, folder))
    return _availability_fold_rows(folder)


def availability_sweep(
    protocols: tuple[str, ...] = ("2pc", "3pc", "skq", "skq-pinned", "qtp1", "qtp2"),
    runs: int = 40,
    base_seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[SweepRow]:
    """E11: mean post-failure availability per protocol.

    Every protocol sees the *same* sequence of (catalog, transaction,
    fault schedule) samples — the seed drives the scenario, the
    protocol only drives the response — so rows are directly
    comparable.  ``skq`` sizes its site quorums per transaction
    (majority of the participants' votes); ``skq-pinned`` uses the
    paper's Example-1 style installation-wide Vc/Va.
    """
    spec = SweepSpec(
        name="e11-availability",
        task=availability_run,
        grid={"protocol": list(protocols)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
    )
    return _run_availability_spec(spec, workers, store, sink)


@dataclass
class StormResult:
    """E13 outcome for one protocol."""

    protocol: str
    runs: int
    consistent_runs: int
    terminated_runs: int
    total_term_attempts: int

    @property
    def all_consistent(self) -> bool:
        """True when no run violated atomicity."""
        return self.consistent_runs == self.runs

    def format_row(self) -> str:
        """One aligned summary line for the storm table."""
        return (
            f"{self.protocol:<6} runs={self.runs:<4} "
            f"consistent={self.consistent_runs:<4} terminated={self.terminated_runs:<4} "
            f"termination-attempts={self.total_term_attempts}"
        )


def _fold_storm(state, result):
    """Single-cell streaming fold over (consistent, terminated, attempts)."""
    if state is None:
        state = [0, 0, 0, 0]  # n, consistent, terminated, term attempts
    consistent, terminated, attempts = result.value
    state[0] += 1
    state[1] += consistent
    state[2] += terminated
    state[3] += attempts
    return state


def storm_run(seed: int, protocol: str, waves: int = 3) -> tuple[bool, bool, int]:
    """One E13 sample; returns (consistent, terminated, term_attempts)."""
    registry = RngRegistry(seed)
    rng = registry.stream("storm")
    catalog = memoized_catalog(
        rng, ("e13-storm", 6, 3, 3), lambda r: random_catalog(r, n_sites=6, n_items=3, replication=3)
    )
    origin, writes = random_update(rng, catalog, max_items=2)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    txn = cluster.update(origin, writes)
    plan = FailurePlan()
    plan.crash(rng.uniform(1.0, 4.0), origin)
    t = 5.0
    for _ in range(waves):
        groups = random_partition_groups(rng, cluster.network.sites, 2)
        plan.partition(t, *groups)
        t += rng.uniform(8.0, 15.0)
    plan.heal(t)
    plan.recover(t + 5.0, origin)
    cluster.arm_failures(plan)
    cluster.run()
    report = cluster.outcome(txn.txn)
    return (
        bool(report.atomic),
        bool(report.fully_terminated),
        cluster.tracer.count("term-phase1", txn=txn.txn),
    )


def reenterability_storm(
    protocol: str = "qtp1",
    runs: int = 20,
    base_seed: int = 0,
    waves: int = 3,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> StormResult:
    """E13: repeated partition waves *during* termination, then heal.

    Each wave re-partitions the network while the previous termination
    attempt is still in flight; the protocol must re-enter cleanly and,
    once the final heal lands (and the coordinator recovers), terminate
    the transaction consistently everywhere.
    """
    spec = SweepSpec(
        name="e13-reenterability",
        task=storm_run,
        grid={"protocol": [protocol]},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"waves": waves},
    )
    folder = CellFoldSink(_fold_storm)
    if sink is None:
        for result in run_sweep(spec, workers=workers, store=store).results:
            folder.emit(result)
    else:
        run_sweep(spec, workers=workers, store=store, sink=TeeSink(sink, folder))
    cells = folder.cells()
    state = cells[0][1] if cells else [0, 0, 0, 0]
    return StormResult(
        protocol=protocol,
        runs=runs,
        consistent_runs=state[1],
        terminated_runs=state[2],
        total_term_attempts=state[3],
    )


@dataclass
class ModelCheckResult:
    """E14 outcome."""

    protocol: str
    runs: int
    atomic_runs: int
    mixed_runs: int
    seeds_with_violation: list[int] = field(default_factory=list)

    @property
    def theorem_holds(self) -> bool:
        """Theorem 1: consistent termination in every run."""
        return self.mixed_runs == 0

    def format_row(self) -> str:
        """One aligned summary line for the model-check table."""
        return (
            f"{self.protocol:<6} runs={self.runs:<5} atomic={self.atomic_runs:<5} "
            f"violations={self.mixed_runs}"
            + (f"  seeds={self.seeds_with_violation[:5]}" if self.seeds_with_violation else "")
        )


def modelcheck_run(seed: int, protocol: str, heal: bool = True) -> bool:
    """One E14 schedule; returns whether termination stayed atomic."""
    registry = RngRegistry(seed)
    rng = registry.stream("modelcheck")
    catalog = memoized_catalog(
        rng,
        ("e14-modelcheck", 7, 3, 3),
        lambda r: random_catalog(r, n_sites=7, n_items=3, replication=3),
    )
    origin, writes = random_update(rng, catalog, max_items=2)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    txn = cluster.update(origin, writes)
    plan = random_fault_plan(
        rng,
        sites=cluster.network.sites,
        coordinator=origin,
        crash_coordinator=rng.random() < 0.8,
        n_extra_crashes=rng.choice([0, 0, 1]),
        n_groups=rng.choice([2, 2, 3]),
        heal_at=rng.uniform(30.0, 60.0) if heal else None,
    )
    cluster.arm_failures(plan)
    cluster.run()
    return bool(cluster.outcome(txn.txn).atomic)


def _fold_modelcheck(state, result):
    """Single-cell streaming fold: atomic count plus violating seeds."""
    if state is None:
        state = [0, []]  # atomic runs, seeds with violations
    if result.value:
        state[0] += 1
    else:
        state[1].append(result.seed)
    return state


def modelcheck(
    protocol: str,
    runs: int = 100,
    base_seed: int = 0,
    heal: bool = True,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> ModelCheckResult:
    """E14: randomized fault schedules; assert atomic commitment.

    Random catalog, random transaction, coordinator crash, up to one
    extra crash, random 2-3-way partition at a random time, optional
    heal + recovery.  For ``2pc``, ``skq``, ``qtp1`` and ``qtp2`` the
    expected violation count is **zero**; for ``3pc`` it is positive
    (that protocol's termination was never designed for partitions).
    """
    spec = SweepSpec(
        name="e14-modelcheck",
        task=modelcheck_run,
        grid={"protocol": [protocol]},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"heal": heal},
    )
    folder = CellFoldSink(_fold_modelcheck)
    if sink is None:
        for result in run_sweep(spec, workers=workers, store=store).results:
            folder.emit(result)
    else:
        run_sweep(spec, workers=workers, store=store, sink=TeeSink(sink, folder))
    cells = folder.cells()
    atomic, bad_seeds = cells[0][1] if cells else (0, [])
    return ModelCheckResult(protocol, runs, atomic, len(bad_seeds), bad_seeds)


def wan_storm_run(
    seed: int,
    protocol: str,
    n_regions: int = 4,
    sites_per_region: int = 8,
    waves: int = 4,
    heal: bool = False,
) -> tuple[float, float, bool, bool, bool]:
    """One E21 sample over a 32+-site WAN installation.

    Same tuple shape as :func:`availability_run` so the two sweeps
    aggregate through the same :class:`SweepRow`.
    """
    result = run_wan_storm(
        protocol,
        seed=seed,
        n_regions=n_regions,
        sites_per_region=sites_per_region,
        waves=waves,
        heal=heal,
    )
    availability = result.cluster.availability()
    return (
        availability.readable_fraction,
        availability.writable_fraction,
        bool(result.cluster.live_undecided(result.txn.txn)),
        not result.report.atomic,
        result.report.outcome in ("commit", "abort"),
    )


def wan_partition_storm(
    protocols: tuple[str, ...] = ("skq", "qtp1", "qtp2"),
    runs: int = 10,
    base_seed: int = 0,
    n_regions: int = 4,
    sites_per_region: int = 8,
    waves: int = 4,
    heal: bool = False,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[SweepRow]:
    """E21: region-wise partition storms over a 32+-site installation.

    The large-scale scenario the engine unlocks: each run builds a
    ``n_regions × sites_per_region`` WAN catalog with cross-region
    replication and drives ``waves`` successive region-aligned
    partitionings (with region splits and stragglers) through an
    in-doubt transaction.  With ``heal=False`` (default) the storm ends
    partitioned and installation-wide availability reflects what
    termination salvaged inside the final components (the E11 question
    at scale); ``heal=True`` asks the E13 question instead — after the
    heal, does everything terminate consistently?
    """
    spec = SweepSpec(
        name="e21-wan-storm",
        task=wan_storm_run,
        grid={"protocol": list(protocols)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={
            "n_regions": n_regions,
            "sites_per_region": sites_per_region,
            "waves": waves,
            "heal": heal,
        },
    )
    return _run_availability_spec(spec, workers, store, sink)
