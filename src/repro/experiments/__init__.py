"""Experiment harness (system S21) — one runner per paper artifact.

Experiment ids follow DESIGN.md §4:

========  ==========================================  ====================
id        paper artifact                              runner
========  ==========================================  ====================
E1, E2    Fig. 1 / Fig. 2 message flows               :mod:`repro.experiments.flows`
E3, E4    Example 1 / Example 4 (Fig. 3)              :mod:`repro.experiments.examples`
E5        Fig. 4 concurrency sets + impossibility     :mod:`repro.experiments.figures`
E6, E9    Fig. 5 / Fig. 8 decision matrices           :mod:`repro.experiments.figures`
E7        Example 3 (Fig. 7) two coordinators         :mod:`repro.experiments.examples`
E8        Example 2 (3PC inconsistency)               :mod:`repro.experiments.examples`
E10, E12  Fig. 9 early commit + latency sweep         :mod:`repro.experiments.flows`
E11       availability sweep (the §5 claim)           :mod:`repro.experiments.sweeps`
E13       reenterability under failure storms         :mod:`repro.experiments.sweeps`
E14       Theorem 1 randomized model-check            :mod:`repro.experiments.sweeps`
========  ==========================================  ====================

Every runner is deterministic in its seed and returns a dataclass with
a ``format_table()`` (or equivalent) rendering — EXPERIMENTS.md is
generated from these outputs by ``examples/regenerate_experiments.py``.
"""

from repro.experiments.ablations import pairing_ablation, timeout_ablation
from repro.experiments.flows import CommitMetrics, latency_sweep, measure_commit
from repro.experiments.resilience_study import (
    run_flash_crowd,
    run_gray_failure,
    run_rolling_upgrade,
)
from repro.experiments.stats import mean_ci, paired_comparison
from repro.experiments.sweeps import (
    availability_sweep,
    modelcheck,
    reenterability_storm,
)
from repro.experiments.vote_study import vote_assignment_study
from repro.experiments.workload_scenarios import (
    run_cross_region,
    run_elastic_join,
    run_read_mostly,
    run_skewed_contention,
)
from repro.experiments.workload_study import run_workload, workload_study

__all__ = [
    "CommitMetrics",
    "availability_sweep",
    "latency_sweep",
    "mean_ci",
    "measure_commit",
    "modelcheck",
    "paired_comparison",
    "pairing_ablation",
    "reenterability_storm",
    "run_cross_region",
    "run_elastic_join",
    "run_flash_crowd",
    "run_gray_failure",
    "run_read_mostly",
    "run_rolling_upgrade",
    "run_skewed_contention",
    "run_workload",
    "timeout_ablation",
    "vote_assignment_study",
    "workload_study",
]
