"""Experiment E17 (extension) — a live workload across a partition.

The paper argues about one in-doubt transaction at a time; a database
serves many.  This experiment drives a stream of interactive
transactions (quorum reads + writes through the commit protocol) while
the network partitions and heals, and measures what a client population
actually experiences under each protocol:

* committed / client-aborted (lock conflict or no quorum) / blocked;
* whether the committed history is one-copy serializable — the *other*
  half of the paper's correctness story, checked end to end;
* final data availability.

Transactions arrive on the virtual clock, so their reads and commits
genuinely interleave with the fault schedule.

Both drive loops live on the shared :class:`~repro.traffic.TrafficEngine`
(closed-loop mode); :class:`~repro.traffic.WorkloadResult` and
:func:`~repro.traffic.tally_stream` are re-exported here for
compatibility with historical imports.
"""

from __future__ import annotations

from typing import Callable

from repro.db.cluster import Cluster
from repro.engine import CellFoldSink, ResultSink, ResultStore, SweepSpec, TeeSink, run_sweep
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.traffic import TrafficEngine, WorkloadResult, tally_stream
from repro.workload.generators import (
    memoized_catalog,
    random_catalog,
    random_partition_groups,
)
from repro.workload.spec import WorkloadSpec

__all__ = [
    "WorkloadResult",
    "drive_stream",
    "heavy_failure_plan",
    "heavy_traffic_study",
    "run_heavy_workload",
    "run_workload",
    "tally_stream",
    "workload_study",
]


def run_workload(
    protocol: str,
    n_txns: int = 24,
    seed: int = 0,
    partition_window: tuple[float, float] = (20.0, 70.0),
    arrival_spacing: float = 4.0,
) -> WorkloadResult:
    """Drive ``n_txns`` read-modify-write transactions through a
    partition episode and tally the outcomes.

    Every transaction reads one random item and increments it.  The
    network splits into two random components during
    ``partition_window`` and heals afterwards; transactions arriving
    mid-episode run against whatever their origin's component offers.

    The stream is a fixed-spacing :class:`WorkloadSpec` driven through
    the shared :class:`~repro.traffic.TrafficEngine` — fixed arrivals
    draw no RNG and the default spec shape replays the historical
    item/origin draw order, so the tallies are byte-identical to the
    pre-engine inline loop.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("workload")
    catalog = memoized_catalog(
        rng,
        ("e17-workload", 6, 4, 3),
        lambda r: random_catalog(r, n_sites=6, n_items=4, replication=3),
    )
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    groups = random_partition_groups(rng, cluster.network.sites, 2)
    plan = (
        FailurePlan()
        .partition(partition_window[0], *groups)
        .heal(partition_window[1])
    )
    cluster.arm_failures(plan)

    spec = WorkloadSpec(n_txns=n_txns, arrival="fixed", mean_spacing=arrival_spacing)
    engine = TrafficEngine(cluster, spec.compile(catalog), rng)
    engine.run_closed()
    return engine.tally(protocol)


def _fold_workload(state, result):
    """Per-cell streaming fold over :class:`WorkloadResult` samples.

    Integer tallies accumulate directly; ``readable_fraction`` samples
    are kept (one float per run) because the historical aggregation
    sums ``r / n`` terms and ``n`` is only known at the end — dividing
    first and summing after would round differently.
    """
    if state is None:
        state = [0, 0, 0, 0, 0, True, [], 0]
        # submitted, committed, client_aborted, protocol_aborted,
        # blocked, serializable, readable samples, reads_committed
    value = result.value
    state[0] += value.submitted
    state[1] += value.committed
    state[2] += value.client_aborted
    state[3] += value.protocol_aborted
    state[4] += value.blocked
    state[5] &= value.serializable
    state[6].append(value.readable_fraction)
    state[7] += value.reads_committed
    return state


def _workload_fold_rows(
    folder: CellFoldSink, protocol_of=lambda params: params["protocol"]
) -> list[WorkloadResult]:
    """One summed :class:`WorkloadResult` per folded cell.

    Replays the historical float order exactly: ``readable_fraction``
    is ``0.0 + r_0/n + r_1/n + ...`` in sample order.
    """
    rows = []
    for params, state in folder.cells():
        total = WorkloadResult(protocol_of(params), 0, 0, 0, 0, 0, True, 0.0)
        total.submitted, total.committed = state[0], state[1]
        total.client_aborted, total.protocol_aborted = state[2], state[3]
        total.blocked, total.serializable = state[4], state[5]
        total.reads_committed = state[7]
        for readable in state[6]:
            total.readable_fraction += readable / len(state[6])
        rows.append(total)
    return rows


def _fold_workload_rows(outcome, protocol_of=lambda params: params["protocol"]) -> list[WorkloadResult]:
    """Sum per-run :class:`WorkloadResult` tallies into one row per cell."""
    folder = CellFoldSink(_fold_workload)
    for result in outcome.results:
        folder.emit(result)
    return _workload_fold_rows(folder, protocol_of)


def _run_workload_spec(
    spec: SweepSpec,
    workers: int,
    store: ResultStore | None,
    sink: ResultSink | None,
) -> list[WorkloadResult]:
    """Run a workload-shaped sweep, streaming when a sink is given."""
    if sink is None:
        return _fold_workload_rows(run_sweep(spec, workers=workers, store=store))
    folder = CellFoldSink(_fold_workload)
    run_sweep(spec, workers=workers, store=store, sink=TeeSink(sink, folder))
    return _workload_fold_rows(folder)


def workload_study(
    protocols: tuple[str, ...] = ("2pc", "skq", "qtp1", "qtp2"),
    runs: int = 5,
    n_txns: int = 24,
    base_seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[WorkloadResult]:
    """E17 aggregated: sum the tallies over several seeds per protocol.

    Every protocol replays the same seeds; serializability must hold in
    every single run (the flag is AND-ed).
    """
    spec = SweepSpec(
        name="e17-workload",
        task=run_workload,
        grid={"protocol": list(protocols)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"n_txns": n_txns},
    )
    return _run_workload_spec(spec, workers, store, sink)


def heavy_failure_plan(
    rng,
    sites: list[int],
    episodes: int,
    episode_length: float,
    gap: float,
) -> FailurePlan:
    """The E18 fault schedule: ``episodes`` random partition/heal cycles.

    Each episode splits ``sites`` into 2–3 random components for
    ``episode_length`` virtual seconds, with ``gap`` of full
    connectivity before and between episodes.  Extracted so replay
    harnesses can substitute a recorded plan for a generated one.
    """
    plan = FailurePlan()
    t = gap
    for _ in range(episodes):
        groups = random_partition_groups(rng, sites, rng.choice([2, 2, 3]))
        plan.partition(t, *groups)
        plan.heal(t + episode_length)
        t += episode_length + gap
    return plan


def drive_stream(cluster, compiled, rng) -> tuple[dict[str, str], dict[str, object]]:
    """The E18 driver loop: feed a compiled op stream into a cluster.

    Compatibility wrapper over
    :meth:`~repro.traffic.TrafficEngine.run_closed` — the interactive
    drive loop now lives on the shared engine.  Returns
    ``(outcomes, handles)``: the client-side outcome per transaction
    (``"read-committed"`` / ``"client-aborted"`` so far; protocol
    verdicts are filled in by :func:`tally_stream`) and the submitted
    handles awaiting a verdict.

    ``compiled`` is anything satisfying the
    :class:`~repro.workload.spec.CompiledWorkload` generator contract
    (``arrivals`` + ``next_op``) — a compiled spec or a
    :class:`~repro.replay.RecordedWorkload` replaying a harvested
    stream.  This split of *stream source* from *driver loop* is what
    makes a recorded trace just another workload.
    """
    return TrafficEngine(cluster, compiled, rng).run_closed()


def run_heavy_workload(
    protocol: str,
    seed: int = 0,
    n_txns: int = 120,
    n_sites: int = 12,
    n_items: int = 8,
    replication: int = 3,
    mean_spacing: float = 1.5,
    episodes: int = 2,
    episode_length: float = 30.0,
    gap: float = 20.0,
    probe: "Callable[[Cluster], None] | None" = None,
    workload: object | None = None,
    catalog: object | None = None,
    failures: FailurePlan | None = None,
) -> WorkloadResult:
    """E18 (extension) — heavy traffic through repeated partition episodes.

    The large-scale sibling of :func:`run_workload`: Poisson arrivals
    (many transactions genuinely in flight at once), a bigger database,
    and ``episodes`` successive partition/heal cycles instead of one.
    Each episode splits the network into 2–3 random components.  The
    correctness bar is unchanged — every committed history must be
    one-copy serializable and nothing may stay blocked after the final
    heal — measured here under real contention.

    The transaction stream comes from a
    :class:`~repro.workload.spec.WorkloadSpec`: the default spec
    (uniform popularity, single-item read-modify-write, Poisson
    arrivals from ``n_txns`` / ``mean_spacing``) replays the historical
    stream draw-for-draw, and passing ``workload`` opens the other
    regimes — Zipf skew, read-mostly mixes, wider footprints (the
    spec's ``n_txns`` / spacing then replace the arguments).  Anything
    without a ``compile`` method is taken to *be* a compiled stream
    already (e.g. a :class:`~repro.replay.RecordedWorkload` replaying a
    harvested trace) and is driven as-is.  Read-only operations commit
    on the client-side fast path and are tallied in
    ``reads_committed``.

    ``catalog`` / ``failures`` override the generated placement and
    fault schedule — the replay tournament pins all three (stream,
    catalog, plan) from a recorded artifact, leaving this function as
    pure driver loop.  ``probe``, if given, is called with the finished
    :class:`Cluster` just before the result is assembled — the
    benchmark harness uses it to harvest network / WAL / scheduler
    counters without widening the return type.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("heavy-workload")
    if catalog is None:
        # pure function of (stream state, shape): protocols replaying the
        # same seed fetch the catalog instead of rebuilding it per trial
        catalog = memoized_catalog(
            rng,
            ("heavy-workload", n_sites, n_items, replication),
            lambda r: random_catalog(r, n_sites=n_sites, n_items=n_items, replication=replication),
        )
    spec = workload if workload is not None else WorkloadSpec(
        n_txns=n_txns, mean_spacing=mean_spacing
    )
    compiled = spec.compile(catalog) if hasattr(spec, "compile") else spec
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    if failures is None:
        failures = heavy_failure_plan(rng, cluster.network.sites, episodes, episode_length, gap)
    cluster.arm_failures(failures)

    engine = TrafficEngine(cluster, compiled, rng)
    engine.run_closed()
    return engine.tally(protocol, probe=probe)


def heavy_traffic_study(
    protocols: tuple[str, ...] = ("2pc", "skq", "qtp1", "qtp2"),
    runs: int = 3,
    n_txns: int = 120,
    base_seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[WorkloadResult]:
    """E18 aggregated: heavy-traffic tallies per protocol, same seeds."""
    spec = SweepSpec(
        name="e18-heavy-traffic",
        task=run_heavy_workload,
        grid={"protocol": list(protocols)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"n_txns": n_txns},
    )
    return _run_workload_spec(spec, workers, store, sink)
