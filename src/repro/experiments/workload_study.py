"""Experiment E17 (extension) — a live workload across a partition.

The paper argues about one in-doubt transaction at a time; a database
serves many.  This experiment drives a stream of interactive
transactions (quorum reads + writes through the commit protocol) while
the network partitions and heals, and measures what a client population
actually experiences under each protocol:

* committed / client-aborted (lock conflict or no quorum) / blocked;
* whether the committed history is one-copy serializable — the *other*
  half of the paper's correctness story, checked end to end;
* final data availability.

Transactions arrive on the virtual clock, so their reads and commits
genuinely interleave with the fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import QuorumUnreachableError, TransactionAborted
from repro.concurrency.serializability import ConflictGraph
from repro.db.cluster import Cluster
from repro.engine import CellFoldSink, ResultSink, ResultStore, SweepSpec, TeeSink, run_sweep
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.workload.generators import (
    memoized_catalog,
    random_catalog,
    random_partition_groups,
)
from repro.workload.spec import WorkloadSpec


@dataclass
class WorkloadResult:
    """What the client population experienced in one run."""

    protocol: str
    submitted: int
    committed: int
    client_aborted: int
    protocol_aborted: int
    blocked: int
    serializable: bool
    readable_fraction: float
    txn_outcomes: dict[str, str] = field(default_factory=dict)
    #: read-only transactions that committed on the client-side fast
    #: path (only nonzero for specs with a read fraction).
    reads_committed: int = 0

    def format_row(self) -> str:
        """One aligned summary line for study tables."""
        return (
            f"{self.protocol:<6} submitted={self.submitted:<3} "
            f"committed={self.committed:<3} client-aborted={self.client_aborted:<3} "
            f"protocol-aborted={self.protocol_aborted:<3} blocked={self.blocked:<3} "
            f"1SR={self.serializable} readable={self.readable_fraction:.0%}"
        )


def run_workload(
    protocol: str,
    n_txns: int = 24,
    seed: int = 0,
    partition_window: tuple[float, float] = (20.0, 70.0),
    arrival_spacing: float = 4.0,
) -> WorkloadResult:
    """Drive ``n_txns`` read-modify-write transactions through a
    partition episode and tally the outcomes.

    Every transaction reads one random item and increments it.  The
    network splits into two random components during
    ``partition_window`` and heals afterwards; transactions arriving
    mid-episode run against whatever their origin's component offers.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("workload")
    catalog = memoized_catalog(
        rng,
        ("e17-workload", 6, 4, 3),
        lambda r: random_catalog(r, n_sites=6, n_items=4, replication=3),
    )
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    groups = random_partition_groups(rng, cluster.network.sites, 2)
    plan = (
        FailurePlan()
        .partition(partition_window[0], *groups)
        .heal(partition_window[1])
    )
    cluster.arm_failures(plan)

    outcomes: dict[str, str] = {}
    handles: dict[str, object] = {}

    def submit_one(index: int) -> None:
        item = rng.choice(catalog.item_names)
        origin = rng.choice(catalog.sites_of(item))
        if not cluster.sites[origin].alive:
            return
        txn = cluster.transaction(origin)
        try:
            value = txn.read(item)
            txn.write(item, value + 1)
            handle = txn.submit()
        except TransactionAborted:
            outcomes[txn.txn] = "client-aborted"
            return
        except QuorumUnreachableError:
            txn.abort()
            outcomes[txn.txn] = "client-aborted"
            return
        handles[handle.txn] = handle

    for i in range(n_txns):
        cluster.scheduler.call_at(1.0 + i * arrival_spacing, submit_one, i)
    cluster.run()

    committed = protocol_aborted = blocked = 0
    for txn in handles:
        report = cluster.outcome(txn)
        outcome = report.outcome
        if outcome == "commit":
            committed += 1
        elif outcome == "abort":
            protocol_aborted += 1
        else:
            blocked += 1
        outcomes[txn] = outcome
    client_aborted = sum(1 for o in outcomes.values() if o == "client-aborted")

    history = cluster.committed_history()
    return WorkloadResult(
        protocol=protocol,
        submitted=len(outcomes),
        committed=committed,
        client_aborted=client_aborted,
        protocol_aborted=protocol_aborted,
        blocked=blocked,
        serializable=ConflictGraph(history).is_serializable(),
        readable_fraction=cluster.availability().readable_fraction,
        txn_outcomes=outcomes,
    )


def _fold_workload(state, result):
    """Per-cell streaming fold over :class:`WorkloadResult` samples.

    Integer tallies accumulate directly; ``readable_fraction`` samples
    are kept (one float per run) because the historical aggregation
    sums ``r / n`` terms and ``n`` is only known at the end — dividing
    first and summing after would round differently.
    """
    if state is None:
        state = [0, 0, 0, 0, 0, True, [], 0]
        # submitted, committed, client_aborted, protocol_aborted,
        # blocked, serializable, readable samples, reads_committed
    value = result.value
    state[0] += value.submitted
    state[1] += value.committed
    state[2] += value.client_aborted
    state[3] += value.protocol_aborted
    state[4] += value.blocked
    state[5] &= value.serializable
    state[6].append(value.readable_fraction)
    state[7] += value.reads_committed
    return state


def _workload_fold_rows(
    folder: CellFoldSink, protocol_of=lambda params: params["protocol"]
) -> list[WorkloadResult]:
    """One summed :class:`WorkloadResult` per folded cell.

    Replays the historical float order exactly: ``readable_fraction``
    is ``0.0 + r_0/n + r_1/n + ...`` in sample order.
    """
    rows = []
    for params, state in folder.cells():
        total = WorkloadResult(protocol_of(params), 0, 0, 0, 0, 0, True, 0.0)
        total.submitted, total.committed = state[0], state[1]
        total.client_aborted, total.protocol_aborted = state[2], state[3]
        total.blocked, total.serializable = state[4], state[5]
        total.reads_committed = state[7]
        for readable in state[6]:
            total.readable_fraction += readable / len(state[6])
        rows.append(total)
    return rows


def _fold_workload_rows(outcome, protocol_of=lambda params: params["protocol"]) -> list[WorkloadResult]:
    """Sum per-run :class:`WorkloadResult` tallies into one row per cell."""
    folder = CellFoldSink(_fold_workload)
    for result in outcome.results:
        folder.emit(result)
    return _workload_fold_rows(folder, protocol_of)


def _run_workload_spec(
    spec: SweepSpec,
    workers: int,
    store: ResultStore | None,
    sink: ResultSink | None,
) -> list[WorkloadResult]:
    """Run a workload-shaped sweep, streaming when a sink is given."""
    if sink is None:
        return _fold_workload_rows(run_sweep(spec, workers=workers, store=store))
    folder = CellFoldSink(_fold_workload)
    run_sweep(spec, workers=workers, store=store, sink=TeeSink(sink, folder))
    return _workload_fold_rows(folder)


def workload_study(
    protocols: tuple[str, ...] = ("2pc", "skq", "qtp1", "qtp2"),
    runs: int = 5,
    n_txns: int = 24,
    base_seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[WorkloadResult]:
    """E17 aggregated: sum the tallies over several seeds per protocol.

    Every protocol replays the same seeds; serializability must hold in
    every single run (the flag is AND-ed).
    """
    spec = SweepSpec(
        name="e17-workload",
        task=run_workload,
        grid={"protocol": list(protocols)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"n_txns": n_txns},
    )
    return _run_workload_spec(spec, workers, store, sink)


def heavy_failure_plan(
    rng,
    sites: list[int],
    episodes: int,
    episode_length: float,
    gap: float,
) -> FailurePlan:
    """The E18 fault schedule: ``episodes`` random partition/heal cycles.

    Each episode splits ``sites`` into 2–3 random components for
    ``episode_length`` virtual seconds, with ``gap`` of full
    connectivity before and between episodes.  Extracted so replay
    harnesses can substitute a recorded plan for a generated one.
    """
    plan = FailurePlan()
    t = gap
    for _ in range(episodes):
        groups = random_partition_groups(rng, sites, rng.choice([2, 2, 3]))
        plan.partition(t, *groups)
        plan.heal(t + episode_length)
        t += episode_length + gap
    return plan


def drive_stream(cluster, compiled, rng) -> tuple[dict[str, str], dict[str, object]]:
    """The E18 driver loop: feed a compiled op stream into a cluster.

    Schedules one client submission per arrival, runs the cluster to
    quiescence, and returns ``(outcomes, handles)`` — the client-side
    outcome per transaction (``"read-committed"`` / ``"client-aborted"``
    so far; protocol verdicts are filled in by :func:`tally_stream`) and
    the submitted handles awaiting a verdict.

    ``compiled`` is anything satisfying the
    :class:`~repro.workload.spec.CompiledWorkload` generator contract
    (``arrivals`` + ``next_op``) — a compiled spec or a
    :class:`~repro.replay.RecordedWorkload` replaying a harvested
    stream.  This split of *stream source* from *driver loop* is what
    makes a recorded trace just another workload.
    """
    outcomes: dict[str, str] = {}
    handles: dict[str, object] = {}

    def submit_one(index: int) -> None:
        op = compiled.next_op(rng)
        if op.origin not in cluster.sites or not cluster.sites[op.origin].alive:
            return
        txn = cluster.transaction(op.origin)
        try:
            if op.kind == "read":
                for item in op.items:
                    txn.read(item)
                txn.submit()  # read-only: client-side commit
                outcomes[txn.txn] = "read-committed"
                return
            for item in op.items:
                value = txn.read(item)
                txn.write(item, value + 1)
            handle = txn.submit()
        except TransactionAborted:
            outcomes[txn.txn] = "client-aborted"
            return
        except QuorumUnreachableError:
            txn.abort()
            outcomes[txn.txn] = "client-aborted"
            return
        handles[handle.txn] = handle

    for i, at in enumerate(compiled.arrivals(rng)):
        cluster.scheduler.call_at(at, submit_one, i)
    cluster.run()
    return outcomes, handles


def tally_stream(
    protocol: str,
    cluster: Cluster,
    outcomes: dict[str, str],
    handles: dict[str, object],
    probe: "Callable[[Cluster], None] | None" = None,
) -> WorkloadResult:
    """Resolve submitted handles against protocol verdicts and tally.

    ``probe`` runs after the verdict loop, just before the result is
    assembled — the historical hook position, preserved so harvested
    counters are byte-identical to the pre-split driver.
    """
    committed = protocol_aborted = blocked = 0
    for txn in handles:
        report = cluster.outcome(txn)
        outcome = report.outcome
        if outcome == "commit":
            committed += 1
        elif outcome == "abort":
            protocol_aborted += 1
        else:
            blocked += 1
        outcomes[txn] = outcome
    client_aborted = sum(1 for o in outcomes.values() if o == "client-aborted")
    reads_committed = sum(1 for o in outcomes.values() if o == "read-committed")

    if probe is not None:
        probe(cluster)
    history = cluster.committed_history()
    return WorkloadResult(
        protocol=protocol,
        submitted=len(outcomes),
        committed=committed,
        client_aborted=client_aborted,
        protocol_aborted=protocol_aborted,
        blocked=blocked,
        serializable=ConflictGraph(history).is_serializable(),
        readable_fraction=cluster.availability().readable_fraction,
        txn_outcomes=outcomes,
        reads_committed=reads_committed,
    )


def run_heavy_workload(
    protocol: str,
    seed: int = 0,
    n_txns: int = 120,
    n_sites: int = 12,
    n_items: int = 8,
    replication: int = 3,
    mean_spacing: float = 1.5,
    episodes: int = 2,
    episode_length: float = 30.0,
    gap: float = 20.0,
    probe: "Callable[[Cluster], None] | None" = None,
    workload: object | None = None,
    catalog: object | None = None,
    failures: FailurePlan | None = None,
) -> WorkloadResult:
    """E18 (extension) — heavy traffic through repeated partition episodes.

    The large-scale sibling of :func:`run_workload`: Poisson arrivals
    (many transactions genuinely in flight at once), a bigger database,
    and ``episodes`` successive partition/heal cycles instead of one.
    Each episode splits the network into 2–3 random components.  The
    correctness bar is unchanged — every committed history must be
    one-copy serializable and nothing may stay blocked after the final
    heal — measured here under real contention.

    The transaction stream comes from a
    :class:`~repro.workload.spec.WorkloadSpec`: the default spec
    (uniform popularity, single-item read-modify-write, Poisson
    arrivals from ``n_txns`` / ``mean_spacing``) replays the historical
    stream draw-for-draw, and passing ``workload`` opens the other
    regimes — Zipf skew, read-mostly mixes, wider footprints (the
    spec's ``n_txns`` / spacing then replace the arguments).  Anything
    without a ``compile`` method is taken to *be* a compiled stream
    already (e.g. a :class:`~repro.replay.RecordedWorkload` replaying a
    harvested trace) and is driven as-is.  Read-only operations commit
    on the client-side fast path and are tallied in
    ``reads_committed``.

    ``catalog`` / ``failures`` override the generated placement and
    fault schedule — the replay tournament pins all three (stream,
    catalog, plan) from a recorded artifact, leaving this function as
    pure driver loop.  ``probe``, if given, is called with the finished
    :class:`Cluster` just before the result is assembled — the
    benchmark harness uses it to harvest network / WAL / scheduler
    counters without widening the return type.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("heavy-workload")
    if catalog is None:
        # pure function of (stream state, shape): protocols replaying the
        # same seed fetch the catalog instead of rebuilding it per trial
        catalog = memoized_catalog(
            rng,
            ("heavy-workload", n_sites, n_items, replication),
            lambda r: random_catalog(r, n_sites=n_sites, n_items=n_items, replication=replication),
        )
    spec = workload if workload is not None else WorkloadSpec(
        n_txns=n_txns, mean_spacing=mean_spacing
    )
    compiled = spec.compile(catalog) if hasattr(spec, "compile") else spec
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    if failures is None:
        failures = heavy_failure_plan(rng, cluster.network.sites, episodes, episode_length, gap)
    cluster.arm_failures(failures)

    outcomes, handles = drive_stream(cluster, compiled, rng)
    return tally_stream(protocol, cluster, outcomes, handles, probe=probe)


def heavy_traffic_study(
    protocols: tuple[str, ...] = ("2pc", "skq", "qtp1", "qtp2"),
    runs: int = 3,
    n_txns: int = 120,
    base_seed: int = 0,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[WorkloadResult]:
    """E18 aggregated: heavy-traffic tallies per protocol, same seeds."""
    spec = SweepSpec(
        name="e18-heavy-traffic",
        task=run_heavy_workload,
        grid={"protocol": list(protocols)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"n_txns": n_txns},
    )
    return _run_workload_spec(spec, workers, store, sink)
