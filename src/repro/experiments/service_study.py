"""Experiment E26 — the open-loop tail-latency SLO service.

Every earlier experiment is closed-loop: a fixed transaction count with
pre-scheduled arrivals, asking "what happened to these N transactions".
A service asks the open-loop question instead: *at a sustained arrival
rate λ, what do clients experience* — tail latency, shed traffic,
sustainable throughput — while partitions come and go.  Two drivers:

* :func:`run_open_loop_service` — one service interval: a
  duration-bounded arrival stream (exponential gaps at ``rate``)
  through per-site admission control, with commit/abort latency folded
  into a streaming digest (p50/p99/p999, constant memory).
* :func:`discover_ceiling` — the SLO ramp: step the arrival rate
  across a schedule of fresh service intervals until the p99 knee or
  the abort-rate threshold trips; the last untripped rate is the
  installation's throughput ceiling.

Both run entirely on the virtual clock with a seeded RNG, so their
counters are deterministic and the benchmark suite pins them as
``BENCH_open_loop_service.json`` / ``BENCH_ramp_ceiling.json``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.db.cluster import Cluster
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.traffic import (
    DEFAULT_BINS,
    DEFAULT_WINDOW,
    OpenLoopResult,
    RampResult,
    TrafficEngine,
    ramp,
)
from repro.workload.generators import memoized_catalog, random_catalog
from repro.workload.spec import WorkloadSpec

#: the default service cluster: 9 sites, 6 items, 3-way replication.
SERVICE_SITES = 9
SERVICE_ITEMS = 6
SERVICE_REPLICATION = 3


def service_failure_plan(
    episode_start: float, episode_length: float, sites: Sequence[int]
) -> FailurePlan:
    """One deterministic mid-service partition episode.

    Splits the cluster into a majority and a minority component (first
    two-thirds of the site list vs the tail) for ``episode_length``
    virtual seconds.  Deterministic by construction — no RNG draws — so
    swapping it for a recorded plan never shifts the arrival stream.
    """
    sites = list(sites)
    cut = max(1, (2 * len(sites)) // 3)
    return (
        FailurePlan()
        .partition(episode_start, sites[:cut], sites[cut:])
        .heal(episode_start + episode_length)
    )


def run_open_loop_service(
    protocol: str,
    seed: int = 0,
    rate: float = 1.5,
    duration: float = 120.0,
    n_sites: int = SERVICE_SITES,
    n_items: int = SERVICE_ITEMS,
    replication: int = SERVICE_REPLICATION,
    read_fraction: float = 0.0,
    window: int = DEFAULT_WINDOW,
    latency_hi: float = 60.0,
    bins: int = DEFAULT_BINS,
    episode_window: "tuple[float, float] | None" = (30.0, 25.0),
    workload: object | None = None,
    catalog: object | None = None,
    failures: FailurePlan | None = None,
    adapt: object | None = None,
    probe: "Callable[[Cluster], None] | None" = None,
) -> OpenLoopResult:
    """E26: one open-loop service interval under a partition episode.

    Sustains ``rate`` arrivals per virtual second for ``duration``
    seconds against a ``n_sites``-site cluster; a partition episode
    (``episode_window = (start, length)``, or ``None`` for a quiet run)
    cuts the cluster mid-service.  Admission is per-site: each origin
    carries a bounded in-flight ``window``, saturated arrivals are shed
    with backpressure, arrivals at dead sites are shed as unreachable.

    ``workload`` / ``catalog`` / ``failures`` pin the stream, the
    placement and the fault schedule (the replay harness records and
    re-drives services exactly like the closed-loop drivers); anything
    without a ``compile`` method is taken to already *be* a compiled
    stream (e.g. a :class:`~repro.replay.RecordedWorkload`).  ``adapt``
    passes an :class:`~repro.traffic.AdaptiveWindow` controller through
    to the service (``None`` — the default — is the historical fixed
    window, byte-identical).  ``probe`` sees the finished cluster
    before the result is assembled.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("open-loop")
    if catalog is None:
        catalog = memoized_catalog(
            rng,
            ("open-loop", n_sites, n_items, replication),
            lambda r: random_catalog(
                r, n_sites=n_sites, n_items=n_items, replication=replication
            ),
        )
    spec = workload if workload is not None else WorkloadSpec(
        arrival="open", rate=rate, duration=duration, read_fraction=read_fraction
    )
    compiled = spec.compile(catalog) if hasattr(spec, "compile") else spec
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    if failures is None and episode_window is not None:
        failures = service_failure_plan(
            episode_window[0], episode_window[1], cluster.network.sites
        )
    if failures is not None:
        cluster.arm_failures(failures)

    engine = TrafficEngine(cluster, compiled, rng)
    return engine.run_open(
        protocol, window=window, latency_hi=latency_hi, bins=bins, adapt=adapt,
        probe=probe,
    )


def discover_ceiling(
    protocol: str,
    seed: int = 0,
    rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    duration: float = 60.0,
    n_sites: int = SERVICE_SITES,
    n_items: int = 24,
    replication: int = SERVICE_REPLICATION,
    window: int = DEFAULT_WINDOW,
    knee_factor: float = 4.0,
    abort_threshold: float = 0.25,
) -> RampResult:
    """E26 ramp: step the arrival rate until the SLO trips.

    Each step is a fresh, quiet (no-failure) service interval at the
    next rate of ``rates`` — independent measurements, not one long
    run — so the ceiling is a property of the installation, not of the
    previous step's leftover lock state.  The ramp stops at the first
    p99 knee (``knee_factor`` times the first measured p99) or abort
    rate above ``abort_threshold``; see :func:`repro.traffic.ramp`.

    The default catalog is wider than the service interval's (24 items
    vs 6): with the tiny catalog the no-wait conflict rate saturates at
    the lowest rate and every ramp trips on its first step, whereas the
    wider catalog makes contention *grow with the arrival rate* — which
    is the knee the ramp exists to find.
    """

    def step(rate: float) -> OpenLoopResult:
        return run_open_loop_service(
            protocol,
            seed=seed,
            rate=rate,
            duration=duration,
            n_sites=n_sites,
            n_items=n_items,
            replication=replication,
            window=window,
            episode_window=None,
        )

    return ramp(step, rates, knee_factor=knee_factor, abort_threshold=abort_threshold)
