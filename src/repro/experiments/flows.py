"""Experiments E1, E2, E10, E12 — message flows and commit latency.

The paper's Figs. 1, 2 and 9 are message-flow diagrams; their
executable counterparts here measure, for a failure-free commit over
``n`` participants:

* the message histogram (which message types, how many of each),
* the **decision time** — virtual time from ``begin_commit`` to the
  coordinator's decision record (the latency the client observes), and
* the quiescence time (when the last participant has terminated).

E12 sweeps the decision time across seeds with randomized per-message
delays, quantifying the paper's §5 claim: *commit protocol 2 runs
faster than commit protocol 1*, and both beat 3PC's wait-for-all-acks.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.db.cluster import Cluster
from repro.net.delays import UniformDelay
from repro.replication.catalog import CatalogBuilder, ReplicaCatalog


def _uniform_catalog(n_sites: int, r: int | None = None, w: int | None = None) -> ReplicaCatalog:
    """One item replicated at every site, one vote per copy."""
    builder = CatalogBuilder()
    sites = list(range(1, n_sites + 1))
    builder.replicated_item("x", sites=sites, r=r, w=w)
    return builder.build()


@dataclass
class CommitMetrics:
    """Metrics of one failure-free commit run."""

    protocol: str
    n_participants: int
    outcome: str
    decision_time: float
    quiescence_time: float
    messages: dict[str, int] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        """Total messages sent during the run."""
        return sum(self.messages.values())

    def format_row(self) -> str:
        """One aligned summary line for flow tables."""
        return (
            f"{self.protocol:<6} n={self.n_participants:<3} {self.outcome:<7} "
            f"decision t={self.decision_time:<8.3f} quiesce t={self.quiescence_time:<8.3f} "
            f"msgs={self.total_messages}"
        )


def measure_commit(
    protocol: str,
    n_sites: int = 5,
    seed: int = 0,
    jitter: bool = False,
    r: int | None = None,
    w: int | None = None,
) -> CommitMetrics:
    """Run one failure-free commit and collect its metrics.

    Args:
        protocol: protocol family name.
        n_sites: number of participant sites (all host the item).
        seed: run seed.
        jitter: use UniformDelay(0.1, 1.0) instead of the fixed delay —
            required to expose the CP1/CP2 early-commit difference.
        r, w: explicit quorum sizes (defaults: majority write).
    """
    catalog = _uniform_catalog(n_sites, r=r, w=w)
    delay = UniformDelay(0.1, 1.0) if jitter else None
    cluster = Cluster(catalog, protocol=protocol, seed=seed, delay_model=delay)
    txn = cluster.update(origin=1, writes={"x": 1})
    quiesce = cluster.run()
    decisions = cluster.tracer.where(category="coord-decision", txn=txn.txn)
    decision_time = decisions[0].time if decisions else float("nan")
    report = cluster.outcome(txn.txn)
    return CommitMetrics(
        protocol=protocol,
        n_participants=n_sites,
        outcome=report.outcome,
        decision_time=decision_time,
        quiescence_time=quiesce,
        messages=cluster.message_counts(),
    )


@dataclass
class LatencyRow:
    """Aggregated decision latency for one protocol in a sweep."""

    protocol: str
    n_participants: int
    runs: int
    mean: float
    p50: float
    p95: float

    def format_row(self) -> str:
        """One aligned summary line for latency tables."""
        return (
            f"{self.protocol:<6} n={self.n_participants:<3} runs={self.runs:<4} "
            f"mean={self.mean:.3f}  p50={self.p50:.3f}  p95={self.p95:.3f}"
        )


def latency_sweep(
    protocols: tuple[str, ...] = ("3pc", "qtp1", "qtp2"),
    n_sites: int = 7,
    runs: int = 50,
    base_seed: int = 0,
    r: int | None = None,
    w: int | None = None,
) -> list[LatencyRow]:
    """E12: decision-latency distribution per protocol, jittered delays.

    Expected shape (paper §5): ``qtp2 <= qtp1 <= 3pc`` in the mean —
    CP2 waits for the smallest PC-ACK quorum, CP1 for a write quorum,
    3PC for everyone.
    """
    rows = []
    for protocol in protocols:
        samples = [
            measure_commit(
                protocol, n_sites=n_sites, seed=base_seed + i, jitter=True, r=r, w=w
            ).decision_time
            for i in range(runs)
        ]
        quantiles = statistics.quantiles(samples, n=20)
        rows.append(
            LatencyRow(
                protocol=protocol,
                n_participants=n_sites,
                runs=runs,
                mean=statistics.fmean(samples),
                p50=statistics.median(samples),
                p95=quantiles[18],
            )
        )
    return rows


def format_flow(metrics: CommitMetrics) -> str:
    """Render the message histogram of a run (E1/E2/E10 output)."""
    lines = [metrics.format_row()]
    for mtype in sorted(metrics.messages):
        lines.append(f"    {mtype:<18} x{metrics.messages[mtype]}")
    return "\n".join(lines)
