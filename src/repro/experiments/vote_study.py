"""Experiment E19 (extension) — vote assignment policies under QTP1.

Gifford's scheme leaves the vote assignment free; the paper's protocols
inherit whatever assignment the database chose.  This study quantifies
how three classic policies trade read availability against write
availability *through the termination protocol* after random failures:

* **uniform-majority** — one vote per copy, w = majority, r the
  complement: the balanced default every other experiment uses.
* **read-one** — r = 1, w = v: reads are always local, but a single
  unreachable copy makes writes (and commit quorums) impossible.
* **primary-weighted** — one copy holds as many votes as the rest
  combined plus one... almost: v=6 over 4 copies with a 3-vote primary,
  w=4, r=3: quorums must include the primary, concentrating both the
  benefit (small quorums) and the risk (lose the primary, lose the
  item).

The same fault scenarios run against each policy; only the catalog
differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.cluster import Cluster
from repro.engine import CellFoldSink, ResultSink, ResultStore, SweepSpec, TeeSink, run_sweep
from repro.replication.catalog import CatalogBuilder, ReplicaCatalog
from repro.sim.rng import RngRegistry
from repro.workload.generators import random_fault_plan


def _policy_catalog(policy: str, sites: list[int]) -> ReplicaCatalog:
    """One item 'x' replicated at ``sites`` under the given policy."""
    builder = CatalogBuilder()
    if policy == "uniform-majority":
        builder.replicated_item("x", sites=sites)
    elif policy == "read-one":
        v = len(sites)
        builder.item("x", {s: 1 for s in sites}, r=1, w=v)
    elif policy == "primary-weighted":
        primary, *rest = sites
        votes = {primary: 3} | {s: 1 for s in rest}
        v = sum(votes.values())  # 3 + (n-1)
        w = v // 2 + 1
        r = v - w + 1
        builder.item("x", votes, r=r, w=w)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return builder.build()


@dataclass
class PolicyRow:
    """Aggregated outcome of one vote policy."""

    policy: str
    runs: int
    readable_fraction: float
    writable_fraction: float
    committed_runs: int
    blocked_runs: int
    violations: int

    def format_row(self) -> str:
        """One aligned summary line for study tables."""
        return (
            f"{self.policy:<17} runs={self.runs:<4} "
            f"readable={self.readable_fraction:6.1%} "
            f"writable={self.writable_fraction:6.1%} "
            f"committed={self.committed_runs:<4} blocked={self.blocked_runs:<4} "
            f"violations={self.violations}"
        )


POLICIES = ("uniform-majority", "read-one", "primary-weighted")


def policy_run(
    seed: int, policy: str, n_sites: int = 5
) -> tuple[float, float, bool, bool, bool]:
    """One E19 sample; returns (readable, writable, committed, blocked,
    violated)."""
    sites = list(range(1, n_sites + 1))
    rng = RngRegistry(seed).stream("vote-study")
    catalog = _policy_catalog(policy, sites)
    cluster = Cluster(catalog, protocol="qtp1", seed=seed)
    txn = cluster.update(origin=1, writes={"x": 1})
    plan = random_fault_plan(
        rng,
        cluster.network.sites,
        coordinator=1,
        t_window=(1.0, 4.5),
        n_groups=2,
    )
    cluster.arm_failures(plan)
    cluster.run()
    report = cluster.outcome(txn.txn)
    availability = cluster.availability()
    return (
        availability.readable_fraction,
        availability.writable_fraction,
        report.outcome == "commit",
        bool(cluster.live_undecided(txn.txn)),
        not report.atomic,
    )


def _fold_policy(state, result):
    """Per-cell streaming fold over (readable, writable, committed,
    blocked, violated) samples, in historical addition order."""
    if state is None:
        state = [0, 0, 0, 0, 0, 0]  # n, readable, writable, committed, blocked, violated
    readable, writable, committed, blocked, violated = result.value
    state[0] += 1
    state[1] += readable
    state[2] += writable
    state[3] += committed
    state[4] += blocked
    state[5] += violated
    return state


def vote_assignment_study(
    policies: tuple[str, ...] = POLICIES,
    runs: int = 40,
    base_seed: int = 0,
    n_sites: int = 5,
    workers: int = 1,
    store: ResultStore | None = None,
    sink: ResultSink | None = None,
) -> list[PolicyRow]:
    """E19: same faults, different vote assignments, QTP1 throughout."""
    spec = SweepSpec(
        name="e19-vote-policies",
        task=policy_run,
        grid={"policy": list(policies)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"n_sites": n_sites},
    )
    folder = CellFoldSink(_fold_policy)
    if sink is None:
        for result in run_sweep(spec, workers=workers, store=store).results:
            folder.emit(result)
    else:
        run_sweep(spec, workers=workers, store=store, sink=TeeSink(sink, folder))
    return [
        PolicyRow(
            policy=params["policy"],
            runs=state[0],
            readable_fraction=state[1] / state[0],
            writable_fraction=state[2] / state[0],
            committed_runs=state[3],
            blocked_runs=state[4],
            violations=state[5],
        )
        for params, state in folder.cells()
    ]
