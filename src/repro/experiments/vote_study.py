"""Experiment E19 (extension) — vote assignment policies under QTP1.

Gifford's scheme leaves the vote assignment free; the paper's protocols
inherit whatever assignment the database chose.  This study quantifies
how three classic policies trade read availability against write
availability *through the termination protocol* after random failures:

* **uniform-majority** — one vote per copy, w = majority, r the
  complement: the balanced default every other experiment uses.
* **read-one** — r = 1, w = v: reads are always local, but a single
  unreachable copy makes writes (and commit quorums) impossible.
* **primary-weighted** — one copy holds as many votes as the rest
  combined plus one... almost: v=6 over 4 copies with a 3-vote primary,
  w=4, r=3: quorums must include the primary, concentrating both the
  benefit (small quorums) and the risk (lose the primary, lose the
  item).

The same fault scenarios run against each policy; only the catalog
differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.cluster import Cluster
from repro.engine import ResultStore, SweepSpec, run_sweep
from repro.replication.catalog import CatalogBuilder, ReplicaCatalog
from repro.sim.rng import RngRegistry
from repro.workload.generators import random_fault_plan


def _policy_catalog(policy: str, sites: list[int]) -> ReplicaCatalog:
    """One item 'x' replicated at ``sites`` under the given policy."""
    builder = CatalogBuilder()
    if policy == "uniform-majority":
        builder.replicated_item("x", sites=sites)
    elif policy == "read-one":
        v = len(sites)
        builder.item("x", {s: 1 for s in sites}, r=1, w=v)
    elif policy == "primary-weighted":
        primary, *rest = sites
        votes = {primary: 3} | {s: 1 for s in rest}
        v = sum(votes.values())  # 3 + (n-1)
        w = v // 2 + 1
        r = v - w + 1
        builder.item("x", votes, r=r, w=w)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return builder.build()


@dataclass
class PolicyRow:
    """Aggregated outcome of one vote policy."""

    policy: str
    runs: int
    readable_fraction: float
    writable_fraction: float
    committed_runs: int
    blocked_runs: int
    violations: int

    def format_row(self) -> str:
        """One aligned summary line for study tables."""
        return (
            f"{self.policy:<17} runs={self.runs:<4} "
            f"readable={self.readable_fraction:6.1%} "
            f"writable={self.writable_fraction:6.1%} "
            f"committed={self.committed_runs:<4} blocked={self.blocked_runs:<4} "
            f"violations={self.violations}"
        )


POLICIES = ("uniform-majority", "read-one", "primary-weighted")


def policy_run(
    seed: int, policy: str, n_sites: int = 5
) -> tuple[float, float, bool, bool, bool]:
    """One E19 sample; returns (readable, writable, committed, blocked,
    violated)."""
    sites = list(range(1, n_sites + 1))
    rng = RngRegistry(seed).stream("vote-study")
    catalog = _policy_catalog(policy, sites)
    cluster = Cluster(catalog, protocol="qtp1", seed=seed)
    txn = cluster.update(origin=1, writes={"x": 1})
    plan = random_fault_plan(
        rng,
        cluster.network.sites,
        coordinator=1,
        t_window=(1.0, 4.5),
        n_groups=2,
    )
    cluster.arm_failures(plan)
    cluster.run()
    report = cluster.outcome(txn.txn)
    availability = cluster.availability()
    return (
        availability.readable_fraction,
        availability.writable_fraction,
        report.outcome == "commit",
        bool(cluster.live_undecided(txn.txn)),
        not report.atomic,
    )


def vote_assignment_study(
    policies: tuple[str, ...] = POLICIES,
    runs: int = 40,
    base_seed: int = 0,
    n_sites: int = 5,
    workers: int = 1,
    store: ResultStore | None = None,
) -> list[PolicyRow]:
    """E19: same faults, different vote assignments, QTP1 throughout."""
    spec = SweepSpec(
        name="e19-vote-policies",
        task=policy_run,
        grid={"policy": list(policies)},
        runs=runs,
        base_seed=base_seed,
        seeding="offset",
        fixed={"n_sites": n_sites},
    )
    rows = []
    for params, cell in run_sweep(spec, workers=workers, store=store).by_cell():
        samples = [r.value for r in cell]
        rows.append(
            PolicyRow(
                policy=params["policy"],
                runs=len(samples),
                readable_fraction=sum(s[0] for s in samples) / len(samples),
                writable_fraction=sum(s[1] for s in samples) / len(samples),
                committed_runs=sum(s[2] for s in samples),
                blocked_runs=sum(s[3] for s in samples),
                violations=sum(s[4] for s in samples),
            )
        )
    return rows
