"""Shared primitives used by every subsystem.

This package holds the small vocabulary of the whole library: identifier
types, error hierarchy, and configuration dataclasses.  Nothing here
depends on any other ``repro`` package.
"""

from repro.common.errors import (
    ConfigurationError,
    ElectionError,
    ProtocolError,
    QuorumUnreachableError,
    ReproError,
    SiteDownError,
    StorageError,
    StoreError,
    TransactionAborted,
    TransactionBlocked,
)
from repro.common.ids import SiteId, TxnId, make_txn_id

__all__ = [
    "ConfigurationError",
    "ElectionError",
    "ProtocolError",
    "QuorumUnreachableError",
    "ReproError",
    "SiteDownError",
    "SiteId",
    "StorageError",
    "StoreError",
    "TransactionAborted",
    "TransactionBlocked",
    "TxnId",
    "make_txn_id",
]
