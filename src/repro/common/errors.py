"""Error hierarchy for the whole library.

Every exception raised by ``repro`` derives from :class:`ReproError` so
applications can catch one base class.  Exceptions are used for genuine
error conditions only; expected protocol outcomes (a transaction being
blocked by the termination protocol, for instance) are modelled as
explicit result values in the protocol engines, *not* exceptions —
blocking is a normal, paper-mandated outcome, and the analysis layer
needs to observe it rather than unwind.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigurationError(ReproError):
    """A cluster / vote / protocol configuration violates an invariant.

    Raised eagerly at construction time: e.g. a Gifford vote assignment
    with ``r(x) + w(x) <= v(x)`` or ``2 * w(x) <= v(x)``, a replica
    placed on an unknown site, or a commit protocol asked to run a
    transaction with an empty writeset.
    """


class StorageError(ReproError):
    """A write-ahead-log or replica-store operation failed."""


class StoreError(ReproError, ValueError):
    """A persisted artifact (sweep result, bench baseline) is unusable.

    Raised on schema-version mismatch instead of handing back a stale
    payload the caller would misread.  Also a ``ValueError`` so callers
    that predate the dedicated class keep working.
    """


class SiteDownError(ReproError):
    """An operation was attempted on a crashed site.

    The simulator raises this when test code drives a crashed site
    directly; within the simulation, messages to crashed sites are
    silently dropped (that is the network's job, not an error).
    """


class ProtocolError(ReproError):
    """An internal commit/termination protocol invariant was violated.

    Seeing this exception in a run means the implementation (or a
    deliberately broken variant used in a counterexample experiment)
    performed an illegal state transition, e.g. PC -> PA which Fig. 6 of
    the paper forbids.
    """


class ElectionError(ReproError):
    """The election substrate was used incorrectly."""


class TransactionAborted(ReproError):
    """Raised to a client whose transaction was aborted."""

    def __init__(self, txn_id: str, reason: str = "") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason or 'unspecified'}")
        self.txn_id = txn_id
        self.reason = reason


class TransactionBlocked(ReproError):
    """Raised to a client that demanded a decided outcome for a blocked txn."""

    def __init__(self, txn_id: str) -> None:
        super().__init__(f"transaction {txn_id} is blocked awaiting failure recovery")
        self.txn_id = txn_id


class QuorumUnreachableError(ReproError):
    """A read/write quorum could not be assembled in the caller's partition.

    Carries enough context for availability accounting: the item, the
    kind of quorum sought, the votes gathered and the votes needed.
    """

    def __init__(self, item: str, kind: str, gathered: int, needed: int) -> None:
        super().__init__(
            f"cannot assemble {kind} quorum for {item!r}: "
            f"gathered {gathered} of {needed} votes"
        )
        self.item = item
        self.kind = kind
        self.gathered = gathered
        self.needed = needed
