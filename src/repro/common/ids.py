"""Identifier types.

Sites are identified by small integers (the paper writes ``site1`` ...
``site8``); transactions by opaque strings.  Keeping these as plain
builtin types keeps every dataclass hashable and trivially serializable,
but the aliases below document intent at call sites.
"""

from __future__ import annotations

import itertools

SiteId = int
TxnId = str

_txn_counter = itertools.count(1)


def make_txn_id(origin: SiteId, counter: int | None = None) -> TxnId:
    """Build a globally unique transaction identifier.

    The id embeds the originating site so that ids minted concurrently at
    different sites can never collide, mirroring the usual
    ``<site, local-sequence>`` construction in distributed databases.

    Args:
        origin: site where the transaction was issued.
        counter: explicit local sequence number; when omitted a
            process-wide counter is used (convenient for tests).

    Returns:
        A string such as ``"T3.17"`` (transaction 17 issued at site 3).
    """
    if counter is None:
        counter = next(_txn_counter)
    return f"T{origin}.{counter}"


def reset_txn_counter() -> None:
    """Reset the process-wide transaction counter (test isolation)."""
    global _txn_counter
    _txn_counter = itertools.count(1)
