"""The cluster facade — a whole distributed database in one object.

:class:`Cluster` wires together every substrate for one simulation run:
scheduler, tracer, RNG, network, sites (storage + locks + protocol
engine), failure injection, and the analysis hooks.  All examples,
tests and benchmarks drive the system through this class.

Protocol selection is by name:

=========  ==============================================  ===========
name       protocol                                        termination
=========  ==============================================  ===========
``2pc``    two-phase commit (Fig. 1)                       cooperative
``3pc``    three-phase commit (Fig. 2)                     Skeen [15]
``skq``    Skeen's site-quorum protocol [16]               site votes
``qtp1``   the paper's commit protocol 1 (Fig. 9)          Fig. 5
``qtp2``   the paper's commit protocol 2 (Fig. 9)          Fig. 8
=========  ==============================================  ===========
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.analysis.availability import AvailabilityReport, availability_snapshot
from repro.analysis.consistency import ConsistencyReport, check_atomicity
from repro.common.errors import ConfigurationError, QuorumUnreachableError
from repro.concurrency.serializability import CommittedTxn
from repro.common.ids import make_txn_id
from repro.db.site import Site, SiteHooks
from repro.db.txn import TxnHandle
from repro.net.delays import DelayModel
from repro.net.network import Network
from repro.protocols.qtp.commit import QTP1Engine, QTP2Engine
from repro.protocols.qtp.generalized import PrimaryTerminationRule, QTPPrimaryEngine
from repro.protocols.qtp.quorums import TerminationRule1, TerminationRule2
from repro.replication.primary import PrimaryCopyStrategy
from repro.protocols.skeen import SkeenEngine, SkeenQuorumRule
from repro.protocols.threepc import ThreePCEngine, ThreePCTerminationRule
from repro.protocols.twopc import CooperativeTerminationRule, TwoPCEngine
from repro.replication.accessor import QuorumPlanner, ReadResult
from repro.replication.catalog import ReplicaCatalog
from repro.replication.missing_writes import MissingWritesTracker
from repro.sim.failures import FailureInjector, FailurePlan, JoinSite, LeaveSite
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.transactions import InteractiveTransaction

PROTOCOL_NAMES = ("2pc", "3pc", "skq", "qtp1", "qtp2", "qtpp")


class Cluster:
    """A simulated distributed database running one commit protocol."""

    def __init__(
        self,
        catalog: ReplicaCatalog,
        protocol: str = "qtp1",
        seed: int = 0,
        delay_model: DelayModel | None = None,
        extra_sites: Iterable[int] = (),
        site_votes: Mapping[int, int] | None = None,
        commit_quorum: int | None = None,
        abort_quorum: int | None = None,
        primaries: Mapping[str, int] | None = None,
        enforce_ignore_rules: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        """Build a cluster.

        Args:
            catalog: replica placement and quorum sizes.
            protocol: one of :data:`PROTOCOL_NAMES` (``qtpp`` is the §5
                generalization over the primary-copy strategy).
            seed: run seed (drives delays, loss, workload randomness).
            delay_model: message latency model; default FixedDelay(1).
            extra_sites: sites hosting no copies (pure coordinators).
            site_votes: for ``skq``: votes per site (default 1 each).
            commit_quorum: for ``skq``: explicit Vc (default: adaptive
                majority over each transaction's participants).
            abort_quorum: for ``skq``: explicit Va.
            primaries: for ``qtpp``: item -> primary site (default:
                each item's lowest-id host).
            enforce_ignore_rules: pass False only to reproduce
                Example 3's broken variant.
            tracer: a pre-configured trace recorder (capacity-bounded,
                ring-buffered, or the legacy ``columnar=False`` store);
                default: an unbounded columnar :class:`Tracer`.
        """
        if protocol not in PROTOCOL_NAMES:
            raise ConfigurationError(
                f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}"
            )
        self.catalog = catalog
        self.protocol = protocol
        self._enforce_ignore_rules = enforce_ignore_rules
        self.scheduler = Scheduler()
        self.tracer = tracer if tracer is not None else Tracer()
        self.rng = RngRegistry(seed)
        self.network = Network(self.scheduler, self.tracer, self.rng, delay_model)
        self.sites: dict[int, Site] = {}
        site_ids = sorted(set(catalog.all_sites()) | set(extra_sites))
        for site_id in site_ids:
            self.sites[site_id] = Site(site_id, self.network, catalog)
        self._attach_engines(
            site_votes, commit_quorum, abort_quorum, primaries, enforce_ignore_rules
        )
        self.injector = FailureInjector(
            self.scheduler, self.network, membership=self._apply_membership
        )
        self.network.subscribe(self._on_connectivity_change)
        #: sites that left gracefully (kept for post-run inspection —
        #: their WALs and stores survive the decommission by design).
        self.departed: dict[int, Site] = {}
        self._txns: dict[str, TxnHandle] = {}
        self._read_footprints: dict[str, dict[str, int]] = {}
        self._readonly_committed: list[CommittedTxn] = []
        self.missing_writes = MissingWritesTracker()
        self._counter = 0

    def _attach_engines(
        self,
        site_votes: Mapping[int, int] | None,
        commit_quorum: int | None,
        abort_quorum: int | None,
        primaries: Mapping[str, int] | None,
        enforce_ignore_rules: bool,
    ) -> None:
        if self.protocol == "skq":
            votes = dict(site_votes) if site_votes else {s: 1 for s in self.sites}
            # explicit quorums pin Vc/Va globally (the paper's Example 1
            # setup); otherwise they adapt per transaction to its
            # participants' vote total (majority-style defaults).
            self.skeen_rule = SkeenQuorumRule(votes, commit_quorum, abort_quorum)
        if self.protocol == "qtpp":
            self.primary_strategy = PrimaryCopyStrategy(self.catalog, primaries)
        for site in self.sites.values():
            engine_cls, rule, extra = self._engine_for(site)
            engine = engine_cls(
                node=site,
                wal=site.wal,
                catalog=self.catalog,
                rule=rule,
                hooks=SiteHooks(site),
                enforce_ignore_rules=enforce_ignore_rules,
                **extra,
            )
            site.attach_engine(engine)

    def _engine_for(self, site: Site):
        if self.protocol == "2pc":
            return TwoPCEngine, CooperativeTerminationRule(), {}
        if self.protocol == "3pc":
            return ThreePCEngine, ThreePCTerminationRule(), {}
        if self.protocol == "skq":
            return SkeenEngine, self.skeen_rule, {}
        if self.protocol == "qtp1":
            return QTP1Engine, TerminationRule1(self.catalog), {}
        if self.protocol == "qtpp":
            return (
                QTPPrimaryEngine,
                PrimaryTerminationRule(self.primary_strategy),
                {"strategy": self.primary_strategy},
            )
        return QTP2Engine, TerminationRule2(self.catalog), {}

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def update(
        self,
        origin: int,
        writes: Mapping[str, Any],
        txn_id: str | None = None,
    ) -> TxnHandle:
        """Submit an update transaction and start its commit procedure.

        Gifford semantics: the participants are the *reachable* hosts
        of the writeset copies, and they must muster ``w(x)`` votes for
        every written item (unreachable copies go stale; version
        numbers mask them at read time).  New version numbers are
        resolved from the reachable copies (max observed + 1).  The
        commit protocol then runs asynchronously — call :meth:`run` to
        let it play out and :meth:`outcome` / :meth:`states` to
        inspect the result.

        Raises:
            QuorumUnreachableError: the origin's partition lacks a
                write quorum for some written item.
        """
        self._counter += 1
        txn = txn_id or make_txn_id(origin, self._counter)
        versioned: dict[str, tuple[Any, int]] = {}
        for item in sorted(writes):
            hosting = self.network.reachable_from(origin, self.catalog.sites_of(item))
            gathered = self.catalog.votes(item, hosting)
            if gathered < self.catalog.w(item):
                raise QuorumUnreachableError(item, "write", gathered, self.catalog.w(item))
            versions = [self.sites[s].store.read(item).version for s in hosting]
            versioned[item] = (writes[item], QuorumPlanner.next_version(versions))
        participants = tuple(
            self.network.reachable_from(origin, self.catalog.sites_of_any(versioned))
        )
        handle = TxnHandle(txn, origin, versioned, participants)
        self._txns[txn] = handle
        origin_site = self.sites[origin]
        assert origin_site.engine is not None
        origin_site.engine.begin_commit(txn, versioned, participants=participants)
        return handle

    def transaction(self, origin: int, txn_id: str | None = None) -> "InteractiveTransaction":
        """Open an interactive transaction (quorum reads + staged writes).

        Ids come from this cluster's own counter, so identically seeded
        runs produce identical transaction ids (the experiment harness
        compares runs by id).  See
        :class:`repro.db.transactions.InteractiveTransaction`.
        """
        from repro.db.transactions import InteractiveTransaction

        if txn_id is None:
            self._counter += 1
            txn_id = make_txn_id(origin, self._counter)
        return InteractiveTransaction(self, origin, txn_id)

    def register_submitted(self, handle: TxnHandle, reads: Mapping[str, int]) -> None:
        """Record a submitted interactive transaction's read footprint."""
        self._txns[handle.txn] = handle
        self._read_footprints[handle.txn] = dict(reads)

    def record_footprint(self, txn: str, reads: Mapping[str, int], writes: Mapping[str, int]) -> None:
        """Record a read-only transaction that committed client-side."""
        self._readonly_committed.append(CommittedTxn(txn, dict(reads), dict(writes)))

    def committed_history(self) -> list[CommittedTxn]:
        """The committed transactions' footprints, for 1SR checking.

        A transaction counts as committed when any participant recorded
        a commit decision (decisions are atomic across participants in
        the safe protocols — and if they were not, the consistency
        checker flags the run anyway).
        """
        history = list(self._readonly_committed)
        for txn, handle in self._txns.items():
            decisions = set(self.tracer.decisions(txn).values())
            if "commit" not in decisions:
                continue
            history.append(
                CommittedTxn(
                    txn,
                    reads=dict(self._read_footprints.get(txn, {})),
                    writes={item: version for item, (__, version) in handle.writes.items()},
                )
            )
        return history

    def read(self, origin: int, item: str) -> ReadResult:
        """Quorum-read an item from the origin's partition.

        Copies locked by undecided transactions are unusable (factor 1
        of the paper's availability analysis); the remaining reachable
        copies must muster ``r(x)`` votes (factor 2).

        Raises:
            QuorumUnreachableError: when the origin's partition cannot
                assemble a read quorum of unlocked copies.
        """
        planner = QuorumPlanner(self.catalog)
        blocked = self.blocked_map()
        hosting = self.network.reachable_from(origin, self.catalog.sites_of(item))
        usable = [
            s
            for s in hosting
            if not self.sites[s].locks.is_locked(item, blocked.get(s, set()))
        ]
        quorum = planner.plan_read(item, usable)
        replies = {s: self.sites[s].store.read(item) for s in quorum}
        return planner.resolve_read(item, replies)

    # ------------------------------------------------------------------
    # missing-writes adaptation (Eager & Sevcik [5]; cited in paper §2)
    # ------------------------------------------------------------------

    def sync_missing_writes(self) -> None:
        """Refresh the missing-writes bookkeeping from copy versions.

        The real scheme piggybacks missing-write lists on transactions;
        here an oracle pass compares each copy's version against the
        item's newest installed version — equivalent information,
        obtained from the simulator's global view.  Call after running
        the simulation and before :meth:`fast_read`.
        """
        for item in self.catalog.item_names:
            hosts = self.catalog.sites_of(item)
            versions = {s: self.sites[s].store.read(item).version for s in hosts}
            newest = max(versions.values())
            for site, version in versions.items():
                if version < newest:
                    # the copy missed every write up to `newest`
                    self.missing_writes.record_write(item, newest, [site], [])
                else:
                    self.missing_writes.record_repair(item, site, newest)

    def fast_read(self, origin: int, item: str) -> tuple[Any, int]:
        """Read with the missing-writes fast path.

        Returns ``(value, copies_consulted)``.  While no copy of the
        item has missing writes, *any single copy* is current and one
        suffices (``copies_consulted == 1``); otherwise this falls back
        to a full quorum read.  The benchmark for experiment E15
        measures the saving.
        """
        if self.missing_writes.read_one_allowed(item):
            hosting = self.network.reachable_from(origin, self.catalog.sites_of(item))
            blocked = self.blocked_map()
            for site in hosting:
                if not self.sites[site].locks.is_locked(item, blocked.get(site, set())):
                    return self.sites[site].store.read(item).value, 1
            raise QuorumUnreachableError(item, "read", 0, 1)
        result = self.read(origin, item)
        return result.value, len(result.quorum)

    def repair(self, item: str) -> int:
        """Bring stale reachable copies current (read-repair).

        Returns the number of copies refreshed.  Clearing the last
        stale copy re-enables the read-one fast path for the item.
        """
        hosts = self.catalog.sites_of(item)
        live = [s for s in hosts if self.sites[s].alive]
        if not live:
            return 0
        newest_site = max(live, key=lambda s: self.sites[s].store.read(item).version)
        newest = self.sites[newest_site].store.read(item)
        refreshed = 0
        for site in live:
            copy = self.sites[site].store.read(item)
            if copy.version < newest.version:
                self.sites[site].store.write(item, newest.value, newest.version)
                refreshed += 1
            self.missing_writes.record_repair(item, site, newest.version)
        return refreshed

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------

    def run(self) -> float:
        """Run the simulation to quiescence; returns final virtual time."""
        return self.scheduler.run()

    def run_until(self, deadline: float) -> float:
        """Run the simulation up to a virtual-time deadline."""
        return self.scheduler.run_until(deadline)

    def arm_failures(self, plan: FailurePlan) -> None:
        """Schedule a failure plan for this run."""
        self.injector.arm(plan)

    def _on_connectivity_change(self, event: str) -> None:
        for site in self.sites.values():
            if site.alive and site.engine is not None:
                site.engine.kick()

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------

    def join_site(
        self,
        site_id: int,
        copies: Mapping[str, int] | None = None,
        near: int | None = None,
    ) -> Site:
        """Register a brand-new site mid-run (elastic membership).

        Builds the full database stack for the site — WAL, replica
        store, lock manager and a protocol engine running this
        cluster's protocol — admits its ``copies`` into the shared
        catalog (quorums re-derived majority-style, see
        :meth:`ReplicaCatalog.admit_site
        <repro.replication.catalog.ReplicaCatalog.admit_site>`), and
        registers it on the network.  An active partition is preserved:
        the site joins as a singleton component unless ``near`` names
        the site it is wired to, in which case it lands in ``near``'s
        component.

        Joined copies receive a component-local state transfer (the
        newest reachable version; stale start at version 0 otherwise,
        which version masking already handles), so the join never
        *lowers* availability inside its component.  Commit protocols
        need no special case — later transactions simply see a new
        reachable participant with catalog votes.

        Raises:
            ConfigurationError: duplicate site id, unknown items, or a
                join the catalog / quorum rule rejects.  A rejected
                join leaves the cluster unchanged.
        """
        if site_id in self.sites:
            raise ConfigurationError(f"site {site_id} already exists")
        if near is not None and near not in self.sites:
            raise ConfigurationError(f"cannot join near unknown site {near}")
        copies = dict(copies or {})
        if self.protocol == "skq":
            # validate the vote admission before any state is built
            self.skeen_rule.add_site(site_id)
        try:
            self.catalog.admit_site(site_id, copies)
        except ConfigurationError:
            if self.protocol == "skq":
                self.skeen_rule.discard_site(site_id)
            raise
        site = Site(site_id, self.network, self.catalog)  # registers on the network
        self.sites[site_id] = site
        if near is not None:
            self.network.place_with(site_id, near)
        # component-local state transfer for the joined copies
        for item in sorted(copies):
            reachable = self.network.reachable_from(
                site_id, self.catalog.sites_of(item)
            )
            best = None
            for host in reachable:
                if host == site_id:
                    continue
                record = self.sites[host].store.read(item)
                if best is None or record.version > best.version:
                    best = record
            if best is not None and best.version > 0:
                site.store.write(item, best.value, best.version)
        engine_cls, rule, extra = self._engine_for(site)
        engine = engine_cls(
            node=site,
            wal=site.wal,
            catalog=self.catalog,
            rule=rule,
            hooks=SiteHooks(site),
            enforce_ignore_rules=self._enforce_ignore_rules,
            **extra,
        )
        site.attach_engine(engine)
        self.tracer.record(
            self.scheduler.now,
            site_id,
            "join",
            copies=sorted(copies),
            component=sorted(self.network.partition.component_of(site_id)),
        )
        return site

    def leave_site(
        self,
        site_id: int,
        drain_interval: float | None = None,
        drain_polls: int = 8,
    ) -> None:
        """Gracefully decommission a site mid-run (the dual of join).

        Three phases, all at virtual time:

        1. **Hand-off** — the site's copies are evicted from the shared
           catalog (quorum votes re-derived majority-style over the
           survivors, see :meth:`ReplicaCatalog.evict_site
           <repro.replication.catalog.ReplicaCatalog.evict_site>`), so
           no later transaction enlists it; its newest versions are
           pushed to the staler reachable surviving hosts first, so the
           hand-off never loses an installed write inside its component.
        2. **Drain** — while the site still holds undecided transactions
           it stays registered (its votes and locks keep serving the
           in-flight commit procedures), re-checked every
           ``drain_interval`` virtual seconds up to ``drain_polls``
           times.  A site that cannot drain in budget (e.g. blocked
           behind a partition) departs anyway, traced ``leave-forced``.
        3. **Deregister** — the network removes the node (messages in
           flight to it drop as ``departed-in-flight``) and the cluster
           moves it to :attr:`departed`.  Unlike a crash, nothing is
           lost and the trace records ``leave``, never ``crash``.

        Raises:
            ConfigurationError: unknown or crashed site, or an eviction
                the catalog rejects (the site holds some item's only
                copy).  A rejected leave changes nothing.
        """
        if site_id not in self.sites:
            raise ConfigurationError(f"cannot leave unknown site {site_id}")
        site = self.sites[site_id]
        if not site.alive:
            raise ConfigurationError(
                f"site {site_id} is down; a graceful leave needs a live site "
                "(crash/recover is the fail-stop path)"
            )
        evicted = self.catalog.evict_site(site_id)  # validates before mutating
        # push the leaver's newest versions to staler reachable survivors
        for item in sorted(evicted):
            record = site.store.read(item)
            if record.version <= 0:
                continue
            for host in self.network.reachable_from(site_id, self.catalog.sites_of(item)):
                if host == site_id:
                    continue
                copy = self.sites[host].store.read(item)
                if copy.version < record.version:
                    self.sites[host].store.write(item, record.value, record.version)
        self.tracer.record(
            self.scheduler.now, site_id, "leave-begin", items=sorted(evicted)
        )
        interval = drain_interval if drain_interval is not None else max(self.network.T, 1.0)

        def poll(remaining: int) -> None:
            if site.undecided_txns() and remaining > 0:
                self.scheduler.call_fixed_after(interval, poll, remaining - 1)
                return
            self._finish_leave(site_id, forced=bool(site.undecided_txns()))

        if site.undecided_txns():
            self.scheduler.call_fixed_after(interval, poll, drain_polls - 1)
        else:
            self._finish_leave(site_id, forced=False)

    def _finish_leave(self, site_id: int, forced: bool) -> None:
        """Phase 3 of :meth:`leave_site`: deregister the drained site."""
        if forced:
            self.tracer.record(self.scheduler.now, site_id, "leave-forced")
        if self.protocol == "skq":
            self.skeen_rule.discard_site(site_id)
        self.network.deregister(site_id)  # traces the canonical "leave"
        self.departed[site_id] = self.sites.pop(site_id)

    def _apply_membership(self, action: "JoinSite | LeaveSite") -> None:
        """The failure injector's membership hook (join / leave plans)."""
        if isinstance(action, LeaveSite):
            self.leave_site(action.site)
        else:
            self.join_site(action.site, dict(action.copies), near=action.near)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def T(self) -> float:
        """The network's longest end-to-end delay."""
        return self.network.T

    def txn_handle(self, txn: str) -> TxnHandle:
        """The handle for a submitted transaction."""
        return self._txns[txn]

    def states(self, txn: str) -> dict[int, str]:
        """Current local state name of ``txn`` at every live participant."""
        out = {}
        for site_id, site in self.sites.items():
            if site.engine is None or not site.alive:
                continue
            record = site.engine.record(txn)
            if record is not None:
                out[site_id] = record.state.name
        return out

    def outcome(self, txn: str) -> ConsistencyReport:
        """Consistency verdict for one transaction (from the trace)."""
        handle = self._txns.get(txn)
        participants = list(handle.participants) if handle else []
        return check_atomicity(self.tracer, txn, participants)

    def blocked_map(self) -> dict[int, set[str]]:
        """Per-site undecided transactions (their locks block access)."""
        return {sid: site.undecided_txns() for sid, site in self.sites.items()}

    def live_undecided(self, txn: str) -> list[int]:
        """Live participants still in doubt about ``txn``.

        Two exclusions: crashed sites (a down site neither holds usable
        copies nor counts against termination — it catches up at
        recovery), and sites that never durably *joined* the
        transaction (no WAL record at all: the vote-req was lost before
        arrival, so the site holds no locks and has nothing to
        terminate; it can only coexist with an abort or blocked
        outcome, never a commit, since commits need every vote).
        """
        handle = self._txns.get(txn)
        participants = set(handle.participants) if handle else set()
        decided = set(self.tracer.decisions(txn))
        return sorted(
            s
            for s in participants
            if s not in decided
            and s in self.sites
            and self.sites[s].alive
            and self.sites[s].wal.for_txn(txn)
        )

    def availability(self) -> AvailabilityReport:
        """Current data availability across all partitions."""
        return availability_snapshot(
            catalog=self.catalog,
            partition=self.network.partition,
            lock_managers={sid: s.locks for sid, s in self.sites.items()},
            blocked_txns=self.blocked_map(),
            active_sites={sid for sid, s in self.sites.items() if s.alive},
        )

    def message_counts(self) -> dict[str, int]:
        """Histogram of message types sent so far."""
        return self.tracer.message_counts()

    def __repr__(self) -> str:
        return (
            f"<Cluster {self.protocol} sites={sorted(self.sites)} "
            f"t={self.scheduler.now:g}>"
        )
