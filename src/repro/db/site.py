"""One database site: storage + locks + protocol engine on a network node.

A :class:`Site` composes the substrates built elsewhere:

* a :class:`~repro.storage.wal.WriteAheadLog` (survives crashes),
* a :class:`~repro.storage.store.ReplicaStore` holding this site's
  copies (also durable — it models disk),
* a :class:`~repro.concurrency.locks.LockManager` (volatile; locks of
  undecided transactions are *re-taken* during recovery, because a
  recovered in-doubt transaction still owns its data),
* a :class:`~repro.protocols.base.CommitProtocolEngine` (volatile,
  rebuilt from the WAL on recovery).

:class:`SiteHooks` is the glue: the protocol engine calls it to vote
(take locks), apply a commit (install versions, release locks) and
apply an abort (release locks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.concurrency.locks import LockManager, LockMode
from repro.net.node import Node
from repro.protocols.base import ProtocolHooks
from repro.protocols.states import TxnState
from repro.storage.recovery import replay_data
from repro.storage.store import ReplicaStore
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.protocols.base import CommitProtocolEngine
    from repro.replication.catalog import ReplicaCatalog


class SiteHooks(ProtocolHooks):
    """Database-layer callbacks for the commit protocol engine."""

    def __init__(self, site: "Site") -> None:
        self._site = site

    def vote(self, txn: str, writes: Mapping[str, tuple[Any, int]]) -> bool:
        """Vote yes iff every locally hosted writeset copy locks now.

        Partial acquisitions are rolled back before voting no, so a
        refused transaction leaves no residue.
        """
        site = self._site
        hosted = [item for item in sorted(writes) if site.store.hosts(item)]
        for item in hosted:
            if not site.locks.try_acquire(txn, item, LockMode.EXCLUSIVE):
                site.locks.release_all(txn)
                site.trace("vote-no", txn, item=item, reason="lock-conflict")
                return False
        return True

    def apply_commit(self, txn: str, writes: Mapping[str, tuple[Any, int]]) -> None:
        """Install the committed versions on hosted copies; unlock."""
        site = self._site
        for item in sorted(writes):
            if not site.store.hosts(item):
                continue
            value, version = writes[item]
            if site.store.read(item).version < version:
                site.wal.force(txn, "apply", item=item, value=value, version=version)
                site.store.write(item, value, version)
        site.locks.release_all(txn)

    def apply_abort(self, txn: str) -> None:
        """Discard the transaction's claim on this site; unlock."""
        self._site.locks.release_all(txn)


class Site(Node):
    """A database site; create via :class:`~repro.db.cluster.Cluster`."""

    def __init__(self, site_id: int, network: "Network", catalog: "ReplicaCatalog") -> None:
        super().__init__(site_id, network)
        self.catalog = catalog
        self.wal = WriteAheadLog(site_id)
        self.store = ReplicaStore(site_id)
        self.locks = LockManager(site_id)
        self.engine: "CommitProtocolEngine | None" = None
        for item in catalog.item_names:
            if site_id in catalog.item(item).copies:
                self.store.host(item, value=0, version=0)

    def attach_engine(self, engine: "CommitProtocolEngine") -> None:
        """Install the commit-protocol engine (exactly once)."""
        if self.engine is not None:
            raise ValueError(f"site {self.node_id} already has an engine")
        self.engine = engine

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Volatile state dies: engine records and the lock table."""
        if self.engine is not None:
            self.engine.on_crash()
        self.locks = LockManager(self.node_id)

    def on_recover(self) -> None:
        """Reconstruct from the WAL.

        Committed writes are replayed into the store; undecided
        transactions get their records (and their locks!) back — an
        in-doubt transaction owns its data across a crash, otherwise a
        crash would quietly break two-phase locking.
        """
        replay_data(self.wal, self.store)
        if self.engine is None:
            return
        undecided = self.engine.rebuild_from_wal()
        for txn in undecided:
            record = self.engine.record(txn)
            if record is None or record.state is TxnState.Q:
                continue  # a Q participant never voted, so it owns no locks
            for item in record.items:
                if self.store.hosts(item):
                    self.locks.try_acquire(txn, item, LockMode.EXCLUSIVE)

    def undecided_txns(self) -> set[str]:
        """Transactions at this site that have not reached a decision."""
        if self.engine is None:
            return set()
        return {
            txn for txn, rec in self.engine.records().items() if not rec.decided
        }
