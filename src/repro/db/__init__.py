"""Distributed database engine (system S19).

This is the substrate the examples and experiments actually run: a
:class:`~repro.db.cluster.Cluster` of :class:`~repro.db.site.Site`
actors over the simulated network, each composing durable storage, a
lock manager and a commit-protocol engine, with the Gifford voting
scheme for replica access.

Typical use::

    from repro import Cluster, CatalogBuilder

    catalog = (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
        .build()
    )
    cluster = Cluster(catalog, protocol="qtp1", seed=7)
    txn = cluster.update(origin=1, writes={"x": 42})
    cluster.run()
    assert cluster.outcome(txn.txn).outcome == "commit"
    assert cluster.read(1, "x").value == 42
"""

from repro.db.cluster import Cluster, PROTOCOL_NAMES
from repro.db.site import Site, SiteHooks
from repro.db.txn import TxnHandle

__all__ = ["Cluster", "PROTOCOL_NAMES", "Site", "SiteHooks", "TxnHandle"]
