"""Interactive transactions: quorum reads, staged writes, 2PL.

:meth:`Cluster.transaction <repro.db.cluster.Cluster.transaction>`
returns an :class:`InteractiveTransaction` — the client-side object a
user of the database holds while executing:

1. :meth:`InteractiveTransaction.read` plans a Gifford read quorum
   among reachable sites, takes **shared locks** on the quorum's
   copies, and returns the most recent value (version numbers identify
   it).  Reads are strict-2PL: those S locks are held to the decision.
2. :meth:`InteractiveTransaction.write` stages a new value.
3. :meth:`InteractiveTransaction.submit` hands the writeset to the
   commit protocol.  The participant set is the union of the writeset
   hosts and every read-locked site, so the protocol's decision
   releases *all* the transaction's locks — including read locks at
   sites that host none of the written items.

Lock conflicts surface immediately as :class:`TransactionAborted`
(no waiting): a participant that cannot lock now votes no / a reader
that cannot lock now aborts.  This no-wait policy makes deadlock
impossible by construction (there is never a waits-for edge), at the
cost of aborting under contention — the classical trade-off, chosen
here because the paper's subject is the *commit* path, not contention
management.

Every committed transaction's footprint (item -> version read /
written) is recorded on the cluster, so whole runs can be checked for
one-copy serializability with
:class:`~repro.concurrency.serializability.ConflictGraph`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from repro.common.errors import ProtocolError, TransactionAborted
from repro.common.ids import make_txn_id
from repro.concurrency.locks import LockMode
from repro.db.txn import TxnHandle
from repro.replication.accessor import QuorumPlanner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.cluster import Cluster


class TxnPhase(enum.Enum):
    """Client-side lifecycle of an interactive transaction."""

    ACTIVE = "active"
    SUBMITTED = "submitted"
    ABORTED = "aborted"
    COMMITTED = "committed"  # read-only fast path only


class InteractiveTransaction:
    """A client-held transaction against one cluster.

    Create via :meth:`Cluster.transaction`; not thread-safe (neither is
    the simulation).
    """

    def __init__(self, cluster: "Cluster", origin: int, txn_id: str | None = None) -> None:
        self._cluster = cluster
        self.origin = origin
        self.txn = txn_id or make_txn_id(origin)
        self.phase = TxnPhase.ACTIVE
        self._planner = QuorumPlanner(cluster.catalog)
        self._reads: dict[str, int] = {}  # item -> version read
        self._read_values: dict[str, Any] = {}
        self._writes: dict[str, Any] = {}
        self._locked_sites: set[int] = set()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def read(self, item: str) -> Any:
        """Quorum-read ``item`` under a shared lock.

        Returns the most recent value among a read quorum of reachable,
        lockable copies.  Re-reading an item (or reading one this
        transaction already wrote) is served locally — 2PL reads your
        own writes.

        Raises:
            TransactionAborted: a quorum copy is locked by another
                transaction (no-wait policy) — the transaction is dead;
                its locks are already released.
            QuorumUnreachableError: the origin's partition lacks r(x)
                votes; the transaction stays ACTIVE (the caller may try
                other items or abort).
        """
        self._require(TxnPhase.ACTIVE)
        if item in self._writes:
            return self._writes[item]
        if item in self._read_values:
            return self._read_values[item]
        network = self._cluster.network
        hosting = network.reachable_from(self.origin, self._cluster.catalog.sites_of(item))
        quorum = self._planner.plan_read(item, hosting)
        for site in quorum:
            manager = self._cluster.sites[site].locks
            if not manager.try_acquire(self.txn, item, LockMode.SHARED):
                self._release_everywhere()
                self.phase = TxnPhase.ABORTED
                raise TransactionAborted(self.txn, f"read lock conflict on {item!r} at site {site}")
            self._locked_sites.add(site)
        replies = {s: self._cluster.sites[s].store.read(item) for s in quorum}
        result = QuorumPlanner.resolve_read(item, replies)
        self._reads[item] = result.version
        self._read_values[item] = result.value
        return result.value

    def write(self, item: str, value: Any) -> None:
        """Stage a write; it takes effect only if the commit succeeds."""
        self._require(TxnPhase.ACTIVE)
        if item not in self._cluster.catalog:
            from repro.common.errors import ConfigurationError

            raise ConfigurationError(f"unknown item {item!r}")
        self._writes[item] = value

    def submit(self) -> TxnHandle:
        """Hand the transaction to the commit protocol.

        Read-only transactions commit immediately (nothing to make
        atomic); otherwise the origin site's engine runs the cluster's
        commit protocol over writeset hosts plus read-locked sites.
        Drive the simulation (``cluster.run()``) afterwards and inspect
        ``cluster.outcome(...)``.
        """
        self._require(TxnPhase.ACTIVE)
        catalog = self._cluster.catalog
        if not self._writes:
            self._release_everywhere()
            self.phase = TxnPhase.COMMITTED
            self._cluster.record_footprint(self.txn, self._reads, {})
            return TxnHandle(self.txn, self.origin, {}, ())
        from repro.common.errors import QuorumUnreachableError

        versioned: dict[str, tuple[Any, int]] = {}
        write_hosts: set[int] = set()
        for item in sorted(self._writes):
            hosting = self._cluster.network.reachable_from(
                self.origin, catalog.sites_of(item)
            )
            gathered = catalog.votes(item, hosting)
            if gathered < catalog.w(item):
                raise QuorumUnreachableError(item, "write", gathered, catalog.w(item))
            write_hosts.update(hosting)
            if item in self._reads:
                base = self._reads[item]
            else:
                versions = [self._cluster.sites[s].store.read(item).version for s in hosting]
                base = max(versions, default=0)
            versioned[item] = (self._writes[item], base + 1)
        participants = sorted(write_hosts | self._locked_sites)
        handle = TxnHandle(self.txn, self.origin, versioned, tuple(participants))
        self.phase = TxnPhase.SUBMITTED
        self._cluster.register_submitted(handle, dict(self._reads))
        origin_site = self._cluster.sites[self.origin]
        if origin_site.engine is None:  # pragma: no cover - sites always get engines
            raise ProtocolError(f"site {self.origin} has no engine")
        origin_site.engine.begin_commit(self.txn, versioned, participants=participants)
        return handle

    def abort(self) -> None:
        """Client-side abort before submit: release everything."""
        self._require(TxnPhase.ACTIVE)
        self._release_everywhere()
        self.phase = TxnPhase.ABORTED

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require(self, phase: TxnPhase) -> None:
        if self.phase is not phase:
            raise ProtocolError(
                f"transaction {self.txn} is {self.phase.value}, not {phase.value}"
            )

    def _release_everywhere(self) -> None:
        for site in self._locked_sites:
            self._cluster.sites[site].locks.release_all(self.txn)
        self._locked_sites.clear()

    def __repr__(self) -> str:
        return (
            f"<InteractiveTransaction {self.txn} {self.phase.value} "
            f"reads={sorted(self._reads)} writes={sorted(self._writes)}>"
        )
