"""Transaction handles returned to clients of the cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TxnHandle:
    """What a client holds after submitting a transaction.

    Attributes:
        txn: transaction id.
        origin: the site that coordinates the commit.
        writes: item -> (value, version) as distributed to participants.
        participants: the sites involved (hosts of writeset copies).
    """

    txn: str
    origin: int
    writes: dict[str, tuple[Any, int]] = field(default_factory=dict)
    participants: tuple[int, ...] = ()

    @property
    def items(self) -> list[str]:
        """The writeset item names, sorted."""
        return sorted(self.writes)

    def __str__(self) -> str:
        return f"{self.txn} (origin {self.origin}, writes {self.items})"
