"""The unified traffic engine: one submit/run/tally lifecycle.

Every experiment driver used to own a hand-rolled copy of the same
loop — schedule one client submission per arrival, run the cluster to
quiescence, resolve handles against protocol verdicts.  The
:class:`TrafficEngine` owns that lifecycle once, in two modes:

* **closed loop** (:meth:`TrafficEngine.run_closed`) — the historical
  pre-scheduled-arrivals drive: the compiled stream's arrival times are
  fetched up front, one submission event is scheduled per arrival, and
  the run is op-count-bounded.  This is a *pure extraction* of the
  E17/E18/E22–E25 loops — the submit policies below are draw-for-draw
  and event-for-event identical to the inlined originals, which is what
  keeps every committed ``BENCH_*.json`` trajectory byte-identical.
* **open loop** (:meth:`TrafficEngine.run_open`, in
  :mod:`repro.traffic.open_loop`) — a sustained arrival-rate service:
  duration-bounded, with per-site admission control, shed/backpressure
  counters, and streaming latency percentiles.

Two submit policies cover every closed-loop driver:

* :meth:`TrafficEngine.submit_interactive` — the E17/E18/E25 client:
  read-only transactions commit on the client-side fast path;
  read-modify-write transactions read, increment, and submit through
  the commit protocol; lock conflicts and missing quorums become
  ``"client-aborted"``.
* :meth:`TrafficEngine.submit_direct` — the E24 client: one direct
  ``cluster.update`` per op, with ``submitted`` / ``cross_origin`` /
  ``refused`` tallies.

``compiled`` is anything satisfying the
:class:`~repro.workload.spec.CompiledWorkload` generator contract
(``arrivals`` + ``next_op`` / ``next_update``) — a compiled spec or a
:class:`~repro.replay.RecordedWorkload` replaying a harvested stream.
This split of *stream source* from *driver loop* is what makes a
recorded trace just another workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import QuorumUnreachableError, TransactionAborted
from repro.concurrency.serializability import ConflictGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.cluster import Cluster


@dataclass
class WorkloadResult:
    """What the client population experienced in one run."""

    protocol: str
    submitted: int
    committed: int
    client_aborted: int
    protocol_aborted: int
    blocked: int
    serializable: bool
    readable_fraction: float
    txn_outcomes: dict[str, str] = field(default_factory=dict)
    #: read-only transactions that committed on the client-side fast
    #: path (only nonzero for specs with a read fraction).
    reads_committed: int = 0

    def format_row(self) -> str:
        """One aligned summary line for study tables."""
        return (
            f"{self.protocol:<6} submitted={self.submitted:<3} "
            f"committed={self.committed:<3} client-aborted={self.client_aborted:<3} "
            f"protocol-aborted={self.protocol_aborted:<3} blocked={self.blocked:<3} "
            f"1SR={self.serializable} readable={self.readable_fraction:.0%}"
        )


def tally_stream(
    protocol: str,
    cluster: "Cluster",
    outcomes: dict[str, str],
    handles: dict[str, object],
    probe: "Callable[[Cluster], None] | None" = None,
) -> WorkloadResult:
    """Resolve submitted handles against protocol verdicts and tally.

    ``probe`` runs after the verdict loop, just before the result is
    assembled — the historical hook position, preserved so harvested
    counters are byte-identical to the pre-split driver.
    """
    committed = protocol_aborted = blocked = 0
    for txn in handles:
        report = cluster.outcome(txn)
        outcome = report.outcome
        if outcome == "commit":
            committed += 1
        elif outcome == "abort":
            protocol_aborted += 1
        else:
            blocked += 1
        outcomes[txn] = outcome
    client_aborted = sum(1 for o in outcomes.values() if o == "client-aborted")
    reads_committed = sum(1 for o in outcomes.values() if o == "read-committed")

    if probe is not None:
        probe(cluster)
    history = cluster.committed_history()
    return WorkloadResult(
        protocol=protocol,
        submitted=len(outcomes),
        committed=committed,
        client_aborted=client_aborted,
        protocol_aborted=protocol_aborted,
        blocked=blocked,
        serializable=ConflictGraph(history).is_serializable(),
        readable_fraction=cluster.availability().readable_fraction,
        txn_outcomes=outcomes,
        reads_committed=reads_committed,
    )


class TrafficEngine:
    """Drives one compiled op stream through one cluster.

    One engine serves one run: ``outcomes`` / ``handles`` / ``tallies``
    accumulate across its lifetime, and the stream cursor of a replayed
    workload is stateful.  The constructor schedules nothing — failure
    plans armed before :meth:`run_closed` keep their historical
    scheduler sequence numbers, so event tie-breaking is unchanged.
    """

    def __init__(self, cluster: "Cluster", compiled, rng, retry=None) -> None:
        self.cluster = cluster
        self.compiled = compiled
        self.rng = rng
        #: client retry policy for the interactive submit path (an
        #: :class:`~repro.engine.resilience.RetryPolicy` or ``None``).
        #: ``None`` — and ``max_attempts=1`` — are byte-identical to
        #: the historical no-retry client.
        self.retry = retry
        #: client-side outcome per transaction (``"read-committed"`` /
        #: ``"client-aborted"``; protocol verdicts fill in at tally).
        self.outcomes: dict[str, str] = {}
        #: submitted handles awaiting a protocol verdict.
        self.handles: dict[str, object] = {}
        #: the direct-submit policy's admission tallies (E24 shape).
        self.tallies: dict[str, int] = {"submitted": 0, "refused": 0, "cross_origin": 0}
        #: interactive re-submissions performed under :attr:`retry`.
        self.retry_attempts = 0
        #: what the last ``_submit_op`` call decided (client-visible
        #: status; plain attribute writes, so the historical drivers'
        #: counters are untouched).
        self.last_outcome: str | None = None

    # ------------------------------------------------------------------
    # submit policies
    # ------------------------------------------------------------------

    def submit_interactive(self, index: int) -> None:
        """One interactive client submission (the E18 policy).

        With a :attr:`retry` policy set, a client-aborted attempt is
        re-submitted as the *same already-drawn op* after the policy's
        deterministic capped backoff on the virtual clock — retries draw
        nothing from the workload generator, so the offered stream stays
        a pure function of the seed whether retries are on or off.
        """
        op = self.compiled.next_op(self.rng)
        if self.retry is None or self.retry.max_attempts <= 1:
            self._submit_op(op)
            return
        self._submit_attempt(op, 1)

    def _submit_attempt(self, op, attempt: int) -> None:
        """Submit ``op``; on a client abort, schedule the next attempt.

        The client-abort verdict is synchronous (lock conflicts and
        missing quorums surface at submit time), so the backoff delay
        doubles as the client's retry timeout — attempt ``k+1`` fires
        ``retry.delay(k)`` virtual seconds after attempt ``k`` failed.
        """
        self._submit_op(op)
        if self.last_outcome == "client-aborted" and attempt < self.retry.max_attempts:
            self.retry_attempts += 1
            self.cluster.scheduler.call_fixed_after(
                self.retry.delay(attempt), self._submit_attempt, op, attempt + 1
            )

    def _submit_op(self, op):
        """Submit one already-drawn :class:`WorkloadOp`; returns the
        handle of a protocol-bound update, else ``None``.

        Split from :meth:`submit_interactive` so the open-loop admission
        path can draw the op first (it needs the origin to check the
        in-flight window) and submit the identical way afterwards.
        Sets :attr:`last_outcome` either way, so callers can tell the
        ``None`` cases apart (read commit / client abort / unreachable
        origin).
        """
        cluster = self.cluster
        if op.origin not in cluster.sites or not cluster.sites[op.origin].alive:
            # the origin left, crashed, or never existed: the op is
            # offered but undeliverable.  Tallied only when it happens,
            # so historical payloads stay byte-stable.
            self.tallies["unreachable_origin"] = self.tallies.get("unreachable_origin", 0) + 1
            self.last_outcome = "unreachable"
            return None
        txn = cluster.transaction(op.origin)
        try:
            if op.kind == "read":
                for item in op.items:
                    txn.read(item)
                txn.submit()  # read-only: client-side commit
                self.outcomes[txn.txn] = "read-committed"
                self.last_outcome = "read-committed"
                return None
            for item in op.items:
                value = txn.read(item)
                txn.write(item, value + 1)
            handle = txn.submit()
        except TransactionAborted:
            self.outcomes[txn.txn] = "client-aborted"
            self.last_outcome = "client-aborted"
            return None
        except QuorumUnreachableError:
            txn.abort()
            self.outcomes[txn.txn] = "client-aborted"
            self.last_outcome = "client-aborted"
            return None
        self.handles[handle.txn] = handle
        self.last_outcome = "submitted"
        return handle

    def submit_direct(self, index: int) -> None:
        """One direct-update submission (the E24 policy).

        Draws ``next_update``, tallies ``submitted`` / ``cross_origin``
        (the generator drew the origin from the hosts of the *first
        picked* item — ``writes`` preserves that pick order), and counts
        a missing write quorum as ``refused``.
        """
        cluster = self.cluster
        origin, writes = self.compiled.next_update(self.rng)
        if origin not in cluster.sites or not cluster.sites[origin].alive:
            self.tallies["unreachable_origin"] = self.tallies.get("unreachable_origin", 0) + 1
            return
        first = next(iter(writes))
        remote = origin not in self.compiled.catalog.sites_of(first)
        self.tallies["submitted"] += 1
        self.tallies["cross_origin"] += remote
        try:
            handle = cluster.update(origin, writes)
        except QuorumUnreachableError:
            self.tallies["refused"] += 1
            return
        self.handles[handle.txn] = handle

    def submit_now(self):
        """Submit one direct update immediately (the E21 single shot).

        No scheduling, no exception shield: the caller owns the clock
        (the WAN storm submits at t=0, before any fault fires) and a
        missing quorum there is a configuration error, not traffic.
        """
        origin, writes = self.compiled.next_update(self.rng)
        return self.cluster.update(origin, writes)

    # ------------------------------------------------------------------
    # closed-loop drive
    # ------------------------------------------------------------------

    def run_closed(
        self, submit: Callable[[int], None] | None = None
    ) -> tuple[dict[str, str], dict[str, object]]:
        """The closed-loop drive: feed the compiled stream into the cluster.

        Schedules one ``submit(i)`` per arrival (default: the
        interactive policy), runs the cluster to quiescence, and returns
        ``(outcomes, handles)``.
        """
        if submit is None:
            submit = self.submit_interactive
        for i, at in enumerate(self.compiled.arrivals(self.rng)):
            self.cluster.scheduler.call_at(at, submit, i)
        self.cluster.run()
        return self.outcomes, self.handles

    def run_to_quiescence(self) -> float:
        """Drain the cluster (the single-shot drivers' run stage)."""
        return self.cluster.run()

    # ------------------------------------------------------------------
    # tally
    # ------------------------------------------------------------------

    def tally(
        self, protocol: str, probe: "Callable[[Cluster], None] | None" = None
    ) -> WorkloadResult:
        """Resolve this engine's handles into a :class:`WorkloadResult`."""
        return tally_stream(
            protocol, self.cluster, self.outcomes, self.handles, probe=probe
        )

    # ------------------------------------------------------------------
    # open-loop drive (implemented in repro.traffic.open_loop)
    # ------------------------------------------------------------------

    def run_open(self, protocol: str, **kwargs) -> "Any":
        """Run the stream as an open-loop service; see
        :func:`repro.traffic.open_loop.run_open_loop`."""
        from repro.traffic.open_loop import run_open_loop

        return run_open_loop(self, protocol, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TrafficEngine outcomes={len(self.outcomes)} "
            f"handles={len(self.handles)} now={self.cluster.scheduler.now}>"
        )
