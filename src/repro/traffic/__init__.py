"""Unified traffic layer: closed- and open-loop drive loops.

See :mod:`repro.traffic.engine` for the :class:`TrafficEngine`
lifecycle (the extraction of every E-series drive loop) and
:mod:`repro.traffic.open_loop` for the sustained-arrival-rate service
mode with admission control, tail-latency digests, and throughput
ceiling discovery; ``README.md`` in this package documents the
semantics and comparability rules.
"""

from repro.traffic.engine import TrafficEngine, WorkloadResult, tally_stream
from repro.traffic.open_loop import (
    DEFAULT_BINS,
    DEFAULT_WINDOW,
    AdaptiveWindow,
    OpenLoopResult,
    RampResult,
    latency_summary,
    ramp,
    run_open_loop,
)

__all__ = [
    "DEFAULT_BINS",
    "DEFAULT_WINDOW",
    "AdaptiveWindow",
    "OpenLoopResult",
    "RampResult",
    "TrafficEngine",
    "WorkloadResult",
    "latency_summary",
    "ramp",
    "run_open_loop",
    "tally_stream",
]
