"""Open-loop service mode: sustained arrival rates, admission, SLOs.

The closed-loop drivers ask "what happened to these N transactions";
a service asks "what does a client population experience at λ requests
per second, sustained".  :func:`run_open_loop` drives a cluster that
way on the virtual clock:

* **duration-bounded arrivals** — a self-scheduling chain of arrival
  events; each draws the next exponential gap
  (:meth:`~repro.workload.spec.CompiledWorkload.next_gap`) and
  re-arms itself via the scheduler's deadline hook
  (:meth:`~repro.sim.scheduler.Scheduler.call_fixed_until`), so the
  stream stops at ``start + duration`` rather than at an op count.
* **per-site admission control** — each origin site carries a bounded
  in-flight window; an arrival whose origin is saturated is *shed*
  (``shed_backpressure``) and one whose origin is down or unknown is
  refused (``shed_unreachable``).  Shed ops still consume their
  generator draws, so the offered stream is a pure function of the
  seed regardless of admission outcomes.
* **streaming latency percentiles** — commit/abort latency (first
  protocol decision minus submit time) folds into a fixed-size
  :class:`~repro.engine.aggregate.QuantileDigest`; no per-op lists,
  so memory is constant in the offered load and the p50/p99/p999
  estimates are a pure function of the folded multiset.  Read-only
  fast-path commits and client-side aborts complete synchronously on
  the virtual clock (zero latency) and are tallied, not folded.
* **throughput-ceiling discovery** — :func:`ramp` steps the arrival
  rate across a schedule until the p99 knee or the abort-rate
  threshold trips, and reports the last sustainable rate.
* **adaptive admission** (:class:`AdaptiveWindow`, default off) — the
  graceful-degradation arm: a periodic retuning event compares the
  streaming p99 against a target SLO and widens or narrows the
  per-site window one step at a time, with a hysteresis dead band so
  the controller does not chatter around the target.  Off (``None``),
  the admission path is byte-identical to the fixed-window service.

Everything runs on the deterministic virtual clock with draws from the
caller's RNG, so open-loop results are byte-identical across repeated
runs and across sweep worker counts — the same fixed-point contract
the closed-loop baselines pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.aggregate import QuantileDigest
from repro.traffic.engine import TrafficEngine, tally_stream

#: default per-site in-flight window (admission control).
DEFAULT_WINDOW = 4

#: default latency digest layout: [0, hi) split into this many bins.
DEFAULT_BINS = 64


@dataclass(frozen=True)
class AdaptiveWindow:
    """Adaptive admission-window policy (graceful degradation).

    Every ``interval`` virtual seconds the controller reads the p99 of
    the latencies folded *since its last reading* (a windowed tail, so
    a past surge cannot pin the controller forever) and moves the
    per-site window one step: above ``target_p99 * (1 + hysteresis)``
    it narrows (shed earlier, protect the tail), below
    ``target_p99 * (1 - hysteresis)`` it widens (admit more, use the
    headroom).  Inside the dead band — or over an interval with no
    decided latencies — it holds; the hysteresis is what keeps the
    controller from oscillating when p99 sits near the target.  The
    window is clamped to ``[low, high]``.
    """

    target_p99: float
    low: int = 1
    high: int = 16
    interval: float = 10.0
    hysteresis: float = 0.25

    def __post_init__(self) -> None:
        if self.target_p99 <= 0:
            raise ValueError(f"target_p99 must be positive, got {self.target_p99}")
        if not 1 <= self.low <= self.high:
            raise ValueError(
                f"need 1 <= low <= high, got low={self.low} high={self.high}"
            )
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if not 0.0 <= self.hysteresis < 1.0:
            raise ValueError(f"hysteresis {self.hysteresis} outside [0, 1)")


@dataclass
class OpenLoopResult:
    """One open-loop service run, summarized.

    ``offered = admitted + shed_backpressure + shed_unreachable`` always
    holds; ``admitted`` splits into protocol-bound updates (eventually
    ``committed`` / ``protocol_aborted`` / ``unresolved``), client-side
    ``client_aborted``, and fast-path ``reads_committed``.
    """

    protocol: str
    rate: float
    duration: float
    offered: int
    admitted: int
    shed_backpressure: int
    shed_unreachable: int
    committed: int
    reads_committed: int
    client_aborted: int
    protocol_aborted: int
    unresolved: int
    serializable: bool
    readable_fraction: float
    #: streaming latency summary: n / min / max / p50 / p99 / p999.
    latency: dict[str, float] = field(default_factory=dict)
    #: the full digest state (exact bin counts), mergeable across runs
    #: via :meth:`~repro.engine.aggregate.QuantileDigest.absorb`.
    digest_state: dict[str, Any] = field(default_factory=dict)
    #: adaptive-admission trajectory (``None`` unless an
    #: :class:`AdaptiveWindow` drove the run; counters stay conditional
    #: so fixed-window payloads are byte-stable).
    window_final: int | None = None
    window_widened: int = 0
    window_narrowed: int = 0

    @property
    def sustained_throughput(self) -> float:
        """Committed transactions per virtual second."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def abort_rate(self) -> float:
        """Aborts (client + protocol) per admitted operation."""
        aborted = self.client_aborted + self.protocol_aborted
        return aborted / self.admitted if self.admitted else 0.0

    @property
    def shed_rate(self) -> float:
        """Shed arrivals (both kinds) per offered arrival."""
        shed = self.shed_backpressure + self.shed_unreachable
        return shed / self.offered if self.offered else 0.0

    def counters(self) -> dict[str, Any]:
        """Flat deterministic tallies (the bench-baseline fingerprint)."""
        out = {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_backpressure": self.shed_backpressure,
            "shed_unreachable": self.shed_unreachable,
            "committed": self.committed,
            "reads_committed": self.reads_committed,
            "client_aborted": self.client_aborted,
            "protocol_aborted": self.protocol_aborted,
            "unresolved": self.unresolved,
            "serializable": self.serializable,
            "latency_n": self.latency.get("n", 0),
            "latency_p50": self.latency.get("p50", 0.0),
            "latency_p99": self.latency.get("p99", 0.0),
            "latency_p999": self.latency.get("p999", 0.0),
        }
        if self.window_final is not None:
            # adaptive runs only: fixed-window fingerprints never carry
            # these keys, so historical payloads stay byte-stable.
            out["window_final"] = self.window_final
            out["window_widened"] = self.window_widened
            out["window_narrowed"] = self.window_narrowed
        return out

    def format_row(self) -> str:
        """One aligned summary line for service tables."""
        return (
            f"{self.protocol:<6} rate={self.rate:<6g} offered={self.offered:<4} "
            f"shed={self.shed_backpressure:<3} committed={self.committed:<4} "
            f"aborted={self.client_aborted + self.protocol_aborted:<3} "
            f"p99={self.latency.get('p99', 0.0):6.2f} "
            f"p999={self.latency.get('p999', 0.0):6.2f} "
            f"thru={self.sustained_throughput:.3f}/s"
        )


def latency_summary(digest: QuantileDigest) -> dict[str, float]:
    """The digest's tail-latency summary, p999 included.

    Kept separate from :meth:`QuantileDigest.summary` (which commits
    p50/p90/p99 inside existing sweep baselines) so widening the SLO
    surface never shifts committed bytes.
    """
    return {
        "n": digest.n,
        "min": digest.min if digest.min is not None else 0.0,
        "max": digest.max if digest.max is not None else 0.0,
        "p50": digest.quantile(0.50),
        "p99": digest.quantile(0.99),
        "p999": digest.quantile(0.999),
    }


def run_open_loop(
    engine: TrafficEngine,
    protocol: str,
    *,
    window: int = DEFAULT_WINDOW,
    latency_hi: float = 60.0,
    bins: int = DEFAULT_BINS,
    adapt: AdaptiveWindow | None = None,
    probe: Callable[[Any], None] | None = None,
) -> OpenLoopResult:
    """Drive the engine's stream as an open-loop service.

    The compiled workload must be an open-arrival spec (or a recorded
    open-loop stream): ``spec.rate`` / ``spec.duration`` bound the
    arrival chain, ``next_op`` / ``next_gap`` feed it.  The cluster's
    failure plan, if any, must already be armed.

    Args:
        engine: the traffic engine (cluster + compiled stream + rng).
        protocol: protocol name for the result row.
        window: per-site in-flight admission window (>= 1; the
            *starting* window under an adaptive policy).
        latency_hi: latency digest upper bound (virtual seconds).
        bins: latency digest bin count.
        adapt: optional :class:`AdaptiveWindow` policy — retunes the
            window against the streaming p99 every ``adapt.interval``
            seconds.  ``None`` (default) keeps the fixed window and a
            byte-identical event sequence.
        probe: sees the finished cluster before the result is
            assembled (the benchmark harness harvests counters here).
    """
    if window < 1:
        raise ValueError(f"admission window must be >= 1, got {window}")
    spec = engine.compiled.spec
    rate = float(spec.rate)
    duration = float(spec.duration)
    cluster = engine.cluster
    scheduler = cluster.scheduler
    rng = engine.rng
    deadline = spec.start + duration

    digest = QuantileDigest(0.0, latency_hi, bins)
    #: origin -> {txn: submit_time}; dicts, not sets, so retirement
    #: iterates in insertion order (hash order would leak into the
    #: digest's min/max fold and break run-to-run determinism).
    in_flight: dict[int, dict[str, float]] = {}
    counters = {"offered": 0, "admitted": 0, "shed_backpressure": 0, "shed_unreachable": 0}
    #: the live admission window — a one-cell box so the arrival
    #: closure and the adaptive controller share it.  Without an
    #: adaptive policy nothing ever writes it, so the fixed-window
    #: behavior is unchanged.
    window_box = {"window": min(max(window, adapt.low), adapt.high) if adapt else window}
    adaptive = {"widened": 0, "narrowed": 0}

    tracer = cluster.tracer

    def retire_decided() -> None:
        """Fold the latency of every in-flight txn that has decided."""
        for origin, pending in in_flight.items():
            done = [
                (txn, records)
                for txn, records in (
                    (txn, tracer.where(category="decision", txn=txn))
                    for txn in pending
                )
                if records
            ]
            for txn, records in done:
                decided_at = min(record.time for record in records)
                digest.add(decided_at - pending.pop(txn))

    def arrive() -> None:
        counters["offered"] += 1
        retire_decided()
        op = engine.compiled.next_op(rng)
        pending = in_flight.setdefault(op.origin, {})
        if op.origin not in cluster.sites or not cluster.sites[op.origin].alive:
            counters["shed_unreachable"] += 1
        elif len(pending) >= window_box["window"]:
            counters["shed_backpressure"] += 1
        else:
            counters["admitted"] += 1
            handle = engine._submit_op(op)
            if handle is not None:
                pending[handle.txn] = scheduler.now
        gap = engine.compiled.next_gap(rng, scheduler.now)
        scheduler.call_fixed_until(scheduler.now + gap, deadline, arrive)

    if adapt is not None:
        #: digest snapshot at the last retune, so each reading sees only
        #: the latencies folded during its own interval
        seen = {"n": 0, "counts": [0] * digest.bins}

        def retune() -> None:
            recent_n = digest.n - seen["n"]
            if recent_n:
                recent = QuantileDigest(digest.lo, digest.hi, digest.bins)
                recent.n = recent_n
                recent.counts = [
                    count - prior for count, prior in zip(digest.counts, seen["counts"])
                ]
                seen["n"] = digest.n
                seen["counts"] = list(digest.counts)
                p99 = recent.quantile(0.99)
                cur = window_box["window"]
                if p99 > adapt.target_p99 * (1.0 + adapt.hysteresis) and cur > adapt.low:
                    window_box["window"] = cur - 1
                    adaptive["narrowed"] += 1
                elif p99 < adapt.target_p99 * (1.0 - adapt.hysteresis) and cur < adapt.high:
                    window_box["window"] = cur + 1
                    adaptive["widened"] += 1
            scheduler.call_fixed_until(scheduler.now + adapt.interval, deadline, retune)

        scheduler.call_fixed_until(spec.start + adapt.interval, deadline, retune)

    scheduler.call_fixed_until(spec.start, deadline, arrive)
    cluster.run()
    retire_decided()
    unresolved = sum(len(pending) for pending in in_flight.values())

    base = tally_stream(protocol, cluster, engine.outcomes, engine.handles, probe=probe)
    return OpenLoopResult(
        protocol=protocol,
        rate=rate,
        duration=duration,
        offered=counters["offered"],
        admitted=counters["admitted"],
        shed_backpressure=counters["shed_backpressure"],
        shed_unreachable=counters["shed_unreachable"],
        committed=base.committed,
        reads_committed=base.reads_committed,
        client_aborted=base.client_aborted,
        protocol_aborted=base.protocol_aborted,
        unresolved=unresolved,
        serializable=base.serializable,
        readable_fraction=base.readable_fraction,
        latency=latency_summary(digest),
        digest_state=digest.state(),
        window_final=window_box["window"] if adapt is not None else None,
        window_widened=adaptive["widened"],
        window_narrowed=adaptive["narrowed"],
    )


# ----------------------------------------------------------------------
# throughput-ceiling discovery
# ----------------------------------------------------------------------


@dataclass
class RampResult:
    """The outcome of one :func:`ramp` discovery sweep.

    ``ceiling`` is the last arrival rate that met the SLO (``None`` if
    even the first step tripped); ``tripped`` names what ended the ramp
    (``"latency_knee"`` / ``"abort_rate"``, or ``None`` when the rate
    schedule was exhausted without tripping).
    """

    ceiling: float | None
    tripped: str | None
    steps: list[OpenLoopResult] = field(default_factory=list)

    def counters(self) -> dict[str, Any]:
        """Flat deterministic tallies (the bench-baseline fingerprint)."""
        return {
            "steps": len(self.steps),
            "ceiling": self.ceiling if self.ceiling is not None else -1.0,
            "tripped": self.tripped or "none",
            "p99_by_step": [step.latency.get("p99", 0.0) for step in self.steps],
            "committed_by_step": [step.committed for step in self.steps],
            "shed_by_step": [step.shed_backpressure for step in self.steps],
        }


def ramp(
    step_fn: Callable[[float], OpenLoopResult],
    rates: Iterable[float] | Sequence[float],
    *,
    knee_factor: float = 4.0,
    abort_threshold: float = 0.25,
) -> RampResult:
    """Step the arrival rate until the p99 knee or abort threshold trips.

    ``step_fn(rate)`` runs one fresh open-loop service at ``rate`` (a
    new cluster per step — steps are independent measurements, not one
    long run).  The first step with a non-empty latency sample anchors
    the baseline p99; a later step whose p99 exceeds ``knee_factor``
    times that baseline trips ``"latency_knee"``, and a step whose
    abort rate exceeds ``abort_threshold`` trips ``"abort_rate"``.
    The ramp stops at the first trip; rates before it are sustainable.
    """
    steps: list[OpenLoopResult] = []
    baseline_p99: float | None = None
    ceiling: float | None = None
    tripped: str | None = None
    for rate in rates:
        result = step_fn(rate)
        steps.append(result)
        p99 = result.latency.get("p99", 0.0)
        if baseline_p99 is None and result.latency.get("n", 0):
            baseline_p99 = p99
        if (
            baseline_p99 is not None
            and baseline_p99 > 0.0
            and p99 > knee_factor * baseline_p99
        ):
            tripped = "latency_knee"
            break
        if result.abort_rate > abort_threshold:
            tripped = "abort_rate"
            break
        ceiling = rate
    return RampResult(ceiling=ceiling, tripped=tripped, steps=steps)
