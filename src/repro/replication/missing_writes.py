"""Missing-writes adaptation (Eager & Sevcik [5]) — cited extension.

The paper's §2 mentions the missing-writes scheme as "an adaptive
voting strategy that improves performance when there are no failures".
The idea: while no failures are suspected, transactions may read a
single copy (cheap) provided writes go to *all* copies; once a write
fails to reach some copy, that copy carries a *missing-writes list*
and readers must fall back to full quorum reads until the copy is
brought current and the list cleared.

This module implements the bookkeeping half — which copies are known
to have missed writes, whether an item is in "optimistic" (read-one)
or "pessimistic" (quorum) mode — as a tracker the database layer
consults.  It is an optional optimisation: the core experiments run
with plain Gifford quorums, and a dedicated benchmark compares access
cost with and without the adaptation in failure-free runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _ItemStatus:
    missing: dict[int, set[int]] = field(default_factory=dict)  # site -> missed versions


class MissingWritesTracker:
    """Tracks which copies missed which writes, per item."""

    def __init__(self) -> None:
        self._items: dict[str, _ItemStatus] = {}

    def _status(self, item: str) -> _ItemStatus:
        status = self._items.get(item)
        if status is None:
            status = _ItemStatus()
            self._items[item] = status
        return status

    def record_write(self, item: str, version: int, all_sites: list[int], reached: list[int]) -> None:
        """Record one write: sites not reached accrue a missing write."""
        status = self._status(item)
        for site in all_sites:
            if site not in reached:
                status.missing.setdefault(site, set()).add(version)

    def record_repair(self, item: str, site: int, through_version: int) -> None:
        """A copy was brought current through ``through_version``."""
        status = self._status(item)
        missed = status.missing.get(site)
        if not missed:
            return
        remaining = {v for v in missed if v > through_version}
        if remaining:
            status.missing[site] = remaining
        else:
            del status.missing[site]

    def copy_is_current(self, item: str, site: int) -> bool:
        """True when the copy at ``site`` has no recorded missing writes."""
        return site not in self._status(item).missing

    def read_one_allowed(self, item: str) -> bool:
        """True when *every* copy is current — single-copy reads are safe.

        This is the optimistic fast path: with no missing writes
        anywhere, any copy holds the latest version, so r(x) can act
        as 1 regardless of the configured quorum.
        """
        return not self._status(item).missing

    def missing_map(self, item: str) -> dict[int, set[int]]:
        """site -> set of missed versions (defensive copy)."""
        return {s: set(v) for s, v in self._status(item).missing.items()}
