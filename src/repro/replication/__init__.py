"""Weighted-voting replica control — Gifford's scheme [8] (system S6).

Every copy of a data item carries votes.  A transaction must gather
``r(x)`` votes to read item x and ``w(x)`` votes to write it, with

* ``r(x) + w(x) > v(x)``  (reads see the most recent write; a
  partitioned system cannot read x in one component and write it in
  another), and
* ``2 * w(x) > v(x)``    (two writes can never proceed in parallel in
  different components).

The :class:`~repro.replication.catalog.ReplicaCatalog` is also the vote
oracle of the paper's commit/termination protocols: their quorum
predicates ask "how many votes for item x do *these sites* hold?" —
:meth:`~repro.replication.catalog.ReplicaCatalog.votes`.

:mod:`~repro.replication.accessor` implements quorum read / write
planning and version resolution; :mod:`~repro.replication.missing_writes`
implements the Eager & Sevcik adaptive optimisation the paper cites [5].
"""

from repro.replication.accessor import QuorumPlanner, ReadResult
from repro.replication.catalog import CatalogBuilder, ItemConfig, ReplicaCatalog
from repro.replication.missing_writes import MissingWritesTracker
from repro.replication.primary import PrimaryCopyStrategy

__all__ = [
    "CatalogBuilder",
    "ItemConfig",
    "MissingWritesTracker",
    "PrimaryCopyStrategy",
    "QuorumPlanner",
    "ReadResult",
    "ReplicaCatalog",
]
