"""Primary-copy partition processing (Alsberg & Day [1] / true-copy [12]).

The paper's §5 notes its termination idea "can be generalized to work
with other partition-processing strategies".  This module provides the
second strategy that demonstrates it: each item has a designated
**primary copy**; a partition may read or write the item iff it
contains the primary's site.  Uniqueness of the primary gives the same
cross-partition exclusion Gifford quorums give — two disjoint
partitions can never both access an item — which is all the
generalized termination rule needs.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError
from repro.replication.catalog import ReplicaCatalog


class PrimaryCopyStrategy:
    """Primary-site assignment over a replica catalog."""

    def __init__(
        self,
        catalog: ReplicaCatalog,
        primaries: Mapping[str, int] | None = None,
    ) -> None:
        """Assign a primary to every item.

        Args:
            catalog: the replica catalog.
            primaries: item -> primary site; defaults to each item's
                lowest-id host.

        Raises:
            ConfigurationError: when a primary does not host a copy of
                its item, or an item lacks an assignment.
        """
        self._catalog = catalog
        self._primaries: dict[str, int] = {}
        for item in catalog.item_names:
            primary = (primaries or {}).get(item, catalog.sites_of(item)[0])
            if primary not in catalog.item(item).copies:
                raise ConfigurationError(
                    f"primary {primary} hosts no copy of {item!r}"
                )
            self._primaries[item] = primary

    @property
    def catalog(self) -> ReplicaCatalog:
        """The underlying catalog."""
        return self._catalog

    def primary_of(self, item: str) -> int:
        """The primary site of an item."""
        try:
            return self._primaries[item]
        except KeyError:
            raise ConfigurationError(f"unknown item {item!r}") from None

    def holds_primary(self, item: str, sites: Iterable[int]) -> bool:
        """Do ``sites`` include the item's primary?"""
        return self.primary_of(item) in set(sites)

    def holds_all_primaries(self, items: list[str], sites: Iterable[int]) -> bool:
        """Do ``sites`` include the primaries of *every* item?"""
        site_set = set(sites)
        return bool(items) and all(self.primary_of(x) in site_set for x in items)

    def holds_some_primary(self, items: list[str], sites: Iterable[int]) -> bool:
        """Do ``sites`` include the primary of *some* item?"""
        site_set = set(sites)
        return any(self.primary_of(x) in site_set for x in items)

    def accessible(self, item: str, sites: Iterable[int]) -> bool:
        """May a partition of ``sites`` access the item at all?"""
        return self.holds_primary(item, sites)

    def __repr__(self) -> str:
        return f"<PrimaryCopyStrategy {self._primaries}>"
