"""Replica catalog: where each item's copies live and their votes.

The catalog is consulted by three different layers, which is exactly
the integration the paper advocates:

1. the **database layer** plans quorum reads and writes from it;
2. the **commit protocols** (Fig. 9) derive their PC-ACK thresholds
   from ``w(x)`` / ``r(x)``;
3. the **termination protocols** (Fig. 5 / Fig. 8) evaluate commit and
   abort quorums over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ItemConfig:
    """Vote configuration of one data item.

    Attributes:
        name: item name (the paper's x, y, ...).
        copies: site -> votes held by that site's copy.
        read_quorum: r(x).
        write_quorum: w(x).
    """

    name: str
    copies: Mapping[int, int]
    read_quorum: int
    write_quorum: int

    @property
    def total_votes(self) -> int:
        """v(x): the total number of votes of the item."""
        return sum(self.copies.values())

    def validate(self) -> None:
        """Enforce Gifford's two constraints plus basic sanity.

        Raises:
            ConfigurationError: with a message naming the violated
                constraint (tests match on these).
        """
        if not self.copies:
            raise ConfigurationError(f"item {self.name!r} has no copies")
        if any(v <= 0 for v in self.copies.values()):
            raise ConfigurationError(f"item {self.name!r} has a non-positive vote")
        v = self.total_votes
        r, w = self.read_quorum, self.write_quorum
        if r <= 0 or w <= 0:
            raise ConfigurationError(f"item {self.name!r}: quorums must be positive")
        if r + w <= v:
            raise ConfigurationError(
                f"item {self.name!r}: r + w = {r + w} must exceed v = {v}"
            )
        if 2 * w <= v:
            raise ConfigurationError(
                f"item {self.name!r}: 2w = {2 * w} must exceed v = {v}"
            )
        if w > v or r > v:
            raise ConfigurationError(
                f"item {self.name!r}: a quorum exceeds the total votes v = {v}"
            )


class ReplicaCatalog:
    """Map of items to their placement and quorum sizes.

    Immutable in normal operation — every layer reads it live.  The
    sanctioned mutations are :meth:`admit_site` and :meth:`evict_site`
    (elastic membership): a site joining mid-run adds copies, a site
    leaving gracefully sheds them, and because the protocol engines and
    quorum planners all hold *this* object, they see the new placement
    the moment it lands — a joined site is simply a new reachable
    participant, a departed one simply stops being enlisted.
    """

    def __init__(self, items: Iterable[ItemConfig]) -> None:
        self._items: dict[str, ItemConfig] = {}
        for config in items:
            if config.name in self._items:
                raise ConfigurationError(f"duplicate item {config.name!r}")
            config.validate()
            self._items[config.name] = config

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def __contains__(self, item: str) -> bool:
        return item in self._items

    def item(self, name: str) -> ItemConfig:
        """Config of one item (raises ConfigurationError when unknown)."""
        try:
            return self._items[name]
        except KeyError:
            raise ConfigurationError(f"unknown item {name!r}") from None

    @property
    def item_names(self) -> list[str]:
        """All item names, sorted."""
        return sorted(self._items)

    def sites_of(self, item: str) -> list[int]:
        """Sites hosting a copy of ``item``, sorted."""
        return sorted(self.item(item).copies)

    def sites_of_any(self, items: Iterable[str]) -> list[int]:
        """Sites hosting a copy of at least one of ``items`` — the
        participant set of a transaction writing those items."""
        out: set[int] = set()
        for item in items:
            out.update(self.item(item).copies)
        return sorted(out)

    def all_sites(self) -> list[int]:
        """Every site hosting any copy, sorted."""
        return self.sites_of_any(self._items)

    def r(self, item: str) -> int:
        """Read quorum r(x)."""
        return self.item(item).read_quorum

    def w(self, item: str) -> int:
        """Write quorum w(x)."""
        return self.item(item).write_quorum

    def v(self, item: str) -> int:
        """Total votes v(x)."""
        return self.item(item).total_votes

    # ------------------------------------------------------------------
    # vote arithmetic (the protocols' oracle)
    # ------------------------------------------------------------------

    def votes(self, item: str, sites: Iterable[int]) -> int:
        """Votes for ``item`` held by the copies at ``sites``."""
        copies = self.item(item).copies
        return sum(copies.get(s, 0) for s in set(sites))

    def has_read_quorum(self, item: str, sites: Iterable[int]) -> bool:
        """Do ``sites`` hold at least r(x) votes for ``item``?"""
        return self.votes(item, sites) >= self.r(item)

    def has_write_quorum(self, item: str, sites: Iterable[int]) -> bool:
        """Do ``sites`` hold at least w(x) votes for ``item``?"""
        return self.votes(item, sites) >= self.w(item)

    def fork(self) -> "ReplicaCatalog":
        """A mutation-isolated copy of this catalog.

        Shares the frozen per-item :class:`ItemConfig` objects (they are
        immutable) but owns its item map, so :meth:`admit_site` on the
        fork never leaks into the original.  Used by the catalog memo:
        a cached catalog handed to a driver that joins sites mid-run
        must not poison later trials in the same worker.  Skips
        re-validation — the source catalog already validated every item.
        """
        clone = ReplicaCatalog.__new__(ReplicaCatalog)
        clone._items = dict(self._items)
        return clone

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------

    def admit_site(
        self,
        site: int,
        copies: Mapping[str, int],
        rebalance: bool = True,
    ) -> None:
        """Add a joining site's copies to existing items, in place.

        With ``rebalance=True`` (default) each touched item's quorums
        are re-derived majority-style over the enlarged vote total
        (``w = v//2 + 1``, ``r = v - w + 1`` — the same defaults
        :meth:`CatalogBuilder.replicated_item` uses), so the Gifford
        constraints hold by construction.  With ``rebalance=False`` the
        old quorums are kept and re-validated — the join is rejected if
        the added votes break ``r + w > v`` or ``2w > v``.

        Either way validation runs *before* any item is touched, so a
        rejected join leaves the catalog unchanged.

        Raises:
            ConfigurationError: unknown item, non-positive votes, a
                duplicate copy, or (``rebalance=False``) broken quorum
                constraints.
        """
        updated: dict[str, ItemConfig] = {}
        for item in sorted(copies):
            votes = copies[item]
            config = self.item(item)
            if site in config.copies:
                raise ConfigurationError(
                    f"site {site} already hosts a copy of {item!r}"
                )
            new_copies = {**config.copies, site: votes}
            v = sum(new_copies.values())
            if rebalance:
                w = v // 2 + 1
                r = v - w + 1
            else:
                r, w = config.read_quorum, config.write_quorum
            candidate = ItemConfig(item, new_copies, r, w)
            candidate.validate()
            updated[item] = candidate
        self._items.update(updated)

    def evict_site(self, site: int, rebalance: bool = True) -> dict[str, int]:
        """Remove a leaving site's copies from every item, in place.

        The dual of :meth:`admit_site` (graceful decommission): each
        item the site hosts sheds that copy's votes, and with
        ``rebalance=True`` (default) the quorums are re-derived
        majority-style over the shrunken vote total (``w = v//2 + 1``,
        ``r = v - w + 1``) — the same hand-off arithmetic a join uses,
        run in reverse.  With ``rebalance=False`` the old quorums are
        kept and re-validated, so the eviction is rejected when the
        remaining votes can no longer satisfy them.

        Validation runs *before* any item is touched: an eviction that
        would leave some item with no copies at all (the departing site
        held the only one) raises and leaves the catalog unchanged.

        Returns:
            the evicted copies as ``{item: votes}`` — what the site
            handed off, for the caller's bookkeeping.

        Raises:
            ConfigurationError: an item would lose its last copy, or
                (``rebalance=False``) the shrunken votes break the
                quorum constraints.
        """
        updated: dict[str, ItemConfig] = {}
        evicted: dict[str, int] = {}
        for item in sorted(self._items):
            config = self._items[item]
            if site not in config.copies:
                continue
            new_copies = {s: v for s, v in config.copies.items() if s != site}
            if not new_copies:
                raise ConfigurationError(
                    f"site {site} holds the only copy of {item!r}; "
                    "cannot evict without losing the item"
                )
            v = sum(new_copies.values())
            if rebalance:
                w = v // 2 + 1
                r = v - w + 1
            else:
                r, w = config.read_quorum, config.write_quorum
            candidate = ItemConfig(item, new_copies, r, w)
            candidate.validate()
            updated[item] = candidate
            evicted[item] = config.copies[site]
        self._items.update(updated)
        return evicted


class CatalogBuilder:
    """Fluent construction of a :class:`ReplicaCatalog`.

    Example (the paper's Example 1 database)::

        catalog = (
            CatalogBuilder()
            .item("x", copies={1: 1, 2: 1, 3: 1, 4: 1}, r=2, w=3)
            .item("y", copies={5: 1, 6: 1, 7: 1, 8: 1}, r=2, w=3)
            .build()
        )
    """

    def __init__(self) -> None:
        self._configs: list[ItemConfig] = []

    def item(
        self,
        name: str,
        copies: Mapping[int, int],
        r: int,
        w: int,
    ) -> "CatalogBuilder":
        """Add one item; returns self for chaining."""
        self._configs.append(ItemConfig(name, dict(copies), r, w))
        return self

    def replicated_item(
        self,
        name: str,
        sites: Iterable[int],
        r: int | None = None,
        w: int | None = None,
    ) -> "CatalogBuilder":
        """Add an item with one vote per copy and majority-style defaults.

        Defaults: ``w = floor(v/2) + 1`` (majority) and ``r = v - w + 1``
        (the smallest read quorum satisfying r + w > v).
        """
        site_list = sorted(set(sites))
        v = len(site_list)
        if w is None:
            w = v // 2 + 1
        if r is None:
            r = v - w + 1
        return self.item(name, {s: 1 for s in site_list}, r, w)

    def build(self) -> ReplicaCatalog:
        """Validate everything and freeze the catalog."""
        return ReplicaCatalog(self._configs)
