"""Quorum read / write planning and version resolution.

The planner answers, for a given set of *reachable, unlocked* copies:
which sites form a read (write) quorum for item x, and — given the
versions those sites returned — what is the current value and what
version must a new write install.

Planning is deterministic: candidate sites are taken in descending
(votes, -site) order, so the smallest-cardinality quorum with a stable
tie-break is selected.  Determinism matters because the experiment
sweeps compare protocols on identical access plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import QuorumUnreachableError
from repro.replication.catalog import ReplicaCatalog
from repro.storage.store import VersionedValue


@dataclass(frozen=True)
class ReadResult:
    """Outcome of resolving a quorum read.

    Attributes:
        item: the item read.
        value: the most recent value among the quorum's copies.
        version: its version number.
        quorum: the sites whose copies were consulted.
        stale_sites: quorum members holding an older version (candidates
            for read-repair; the database layer refreshes them).
    """

    item: str
    value: object
    version: int
    quorum: tuple[int, ...]
    stale_sites: tuple[int, ...]


class QuorumPlanner:
    """Plans quorum accesses against a catalog."""

    def __init__(self, catalog: ReplicaCatalog) -> None:
        self._catalog = catalog

    def _select(self, item: str, available: Iterable[int], needed: int, kind: str) -> tuple[int, ...]:
        copies = self._catalog.item(item).copies
        candidates = sorted(
            (s for s in set(available) if s in copies),
            key=lambda s: (-copies[s], s),
        )
        chosen: list[int] = []
        gathered = 0
        for site in candidates:
            chosen.append(site)
            gathered += copies[site]
            if gathered >= needed:
                return tuple(sorted(chosen))
        raise QuorumUnreachableError(item, kind, gathered, needed)

    def plan_read(self, item: str, available: Iterable[int]) -> tuple[int, ...]:
        """Pick a read quorum (>= r(x) votes) from ``available`` sites.

        Raises:
            QuorumUnreachableError: if ``available`` holds fewer than
                r(x) votes — the item is unreadable in this partition.
        """
        return self._select(item, available, self._catalog.r(item), "read")

    def plan_write(self, item: str, available: Iterable[int]) -> tuple[int, ...]:
        """Pick a write quorum (>= w(x) votes) from ``available`` sites.

        Note that a write quorum is a set of sites to *update*; Gifford
        writes go to the quorum's copies, and copies outside it become
        stale (their version lags), which read quorums later mask.
        """
        return self._select(item, available, self._catalog.w(item), "write")

    @staticmethod
    def resolve_read(item: str, replies: Mapping[int, VersionedValue]) -> ReadResult:
        """Combine per-site read replies into the quorum's answer.

        The most recent copy wins (Gifford: "version numbers are used to
        identify the most recent copy").
        """
        if not replies:
            raise QuorumUnreachableError(item, "read", 0, 1)
        best_site = max(replies, key=lambda s: (replies[s].version, -s))
        best = replies[best_site]
        stale = tuple(sorted(s for s, vv in replies.items() if vv.version < best.version))
        return ReadResult(item, best.value, best.version, tuple(sorted(replies)), stale)

    @staticmethod
    def next_version(current_versions: Iterable[int]) -> int:
        """Version a write must install: one past the max it observed."""
        return max(current_versions, default=0) + 1
