"""Network partition model.

A partition divides the site set into disjoint components with no
communication between components (the paper, §1).  The view is a plain
value object; the :class:`~repro.net.network.Network` swaps views when
the failure injector fires a partition / heal event.

The view also answers the question the analysis layer keeps asking:
"which *active* sites does component G contain right now?" — that set
is exactly the population the termination protocol polls in phase 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class PartitionView:
    """Immutable snapshot of connectivity over a fixed site universe."""

    def __init__(self, sites: Iterable[int], groups: Sequence[Sequence[int]] | None = None) -> None:
        """Build a view.

        Args:
            sites: the full site universe.
            groups: disjoint components.  Sites missing from every group
                become singleton components (fully isolated).  ``None``
                means fully connected.

        Raises:
            ValueError: if groups overlap or mention unknown sites.
        """
        universe = frozenset(sites)
        if groups is None:
            components = [universe] if universe else []
        else:
            seen: set[int] = set()
            components = []
            for group in groups:
                gset = frozenset(group)
                if not gset:
                    continue
                unknown = gset - universe
                if unknown:
                    raise ValueError(f"unknown sites in partition group: {sorted(unknown)}")
                overlap = gset & seen
                if overlap:
                    raise ValueError(f"sites in multiple groups: {sorted(overlap)}")
                seen |= gset
                components.append(gset)
            components.extend(frozenset([s]) for s in sorted(universe - seen))
        self._universe = universe
        self._components = tuple(components)
        self._component_of = {s: comp for comp in components for s in comp}
        # order-insensitive identity, computed once: __eq__ / __hash__
        # run on every interning lookup and view comparison, and used to
        # rebuild set(self._components) per call before.
        self._component_set = frozenset(self._components)
        self._hash = hash(self._component_set)
        self._sorted: list[list[int]] | None = None

    @property
    def sites(self) -> frozenset[int]:
        """The full site universe."""
        return self._universe

    @property
    def components(self) -> tuple[frozenset[int], ...]:
        """All components, in construction order."""
        return self._components

    @property
    def is_partitioned(self) -> bool:
        """True when the universe is split into more than one component."""
        return len(self._components) > 1

    def component_of(self, site: int) -> frozenset[int]:
        """The component containing ``site``."""
        try:
            return self._component_of[site]
        except KeyError:
            raise ValueError(f"unknown site {site}") from None

    def reachable(self, src: int, dst: int) -> bool:
        """True when ``src`` and ``dst`` are in the same component."""
        return self.component_of(src) is self.component_of(dst)

    def healed(self) -> "PartitionView":
        """A fully connected view over the same universe."""
        return PartitionView(self._universe)

    def sorted_components(self) -> list[list[int]]:
        """Components as sorted site lists, memoized (do not mutate).

        The rendering every ``partition`` trace record carries; caching
        it on the view means interned views (storm plans replaying the
        same groups) sort once instead of once per event.
        """
        if self._sorted is None:
            self._sorted = [sorted(c) for c in self._components]
        return self._sorted

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionView):
            return NotImplemented
        return self._component_set == other._component_set

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        comps = " | ".join("{" + ",".join(map(str, sorted(c))) + "}" for c in self._components)
        return f"<PartitionView {comps}>"
