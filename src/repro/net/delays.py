"""Message delay models.

Every model is bounded above by ``max_delay`` — the paper's ``T``.  The
protocol engines read ``network.T`` to derive their ``2T`` / ``3T``
timeout windows, so the bound is load-bearing: if a delay model could
exceed ``T``, a correct protocol could be driven into spurious timeouts
that the paper's analysis excludes.  (Timeout *sensitivity* — what
happens if the bound is misestimated — is explored by a dedicated
ablation benchmark; safety never depends on it, only liveness.)
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Mapping


class DelayModel(ABC):
    """Interface: per-message latency, bounded by :attr:`max_delay`."""

    @property
    @abstractmethod
    def max_delay(self) -> float:
        """Upper bound on any sampled delay (the paper's ``T``)."""

    @abstractmethod
    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Latency for one message ``src -> dst``."""


class FixedDelay(DelayModel):
    """Constant latency on every link — the default for unit tests.

    With a fixed delay the event order of a run is a pure function of
    the scenario, which makes protocol traces easy to reason about.
    """

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self._delay = delay

    @property
    def max_delay(self) -> float:
        """The constant delay is its own bound."""
        return self._delay

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Constant, regardless of endpoints."""
        return self._delay

    def __repr__(self) -> str:
        return f"FixedDelay({self._delay})"


class GroupedDelay(DelayModel):
    """Two-tier latency: fast inside a site group, slow across groups.

    Models the classic WAN deployment (sites grouped into datacenters):
    intra-group messages take ``intra`` time units, cross-group messages
    ``inter``, each with optional multiplicative jitter drawn from
    ``[1, 1 + jitter]``.  ``T`` (``max_delay``) is the worst case —
    ``inter * (1 + jitter)`` — so the protocols' timeout windows stay
    sound, at the price the paper's model implies: timeouts sized for
    the WAN worst case even for LAN-local exchanges.
    """

    def __init__(
        self,
        groups: Mapping[int, int],
        intra: float = 0.1,
        inter: float = 1.0,
        jitter: float = 0.0,
    ) -> None:
        if not 0 < intra <= inter:
            raise ValueError("need 0 < intra <= inter")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._groups = dict(groups)
        self._intra = intra
        self._inter = inter
        self._jitter = jitter

    @property
    def max_delay(self) -> float:
        """Worst case: a cross-group message with full jitter."""
        return self._inter * (1 + self._jitter)

    def group_of(self, site: int) -> int | None:
        """The group a site belongs to (None when unassigned)."""
        return self._groups.get(site)

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Intra- or inter-group base delay, with multiplicative jitter."""
        same = (
            src in self._groups
            and dst in self._groups
            and self._groups[src] == self._groups[dst]
        )
        base = self._intra if same else self._inter
        if self._jitter:
            base *= 1 + rng.uniform(0, self._jitter)
        return base

    def __repr__(self) -> str:
        return f"GroupedDelay(intra={self._intra}, inter={self._inter}, jitter={self._jitter})"


class UniformDelay(DelayModel):
    """Latency drawn uniformly from ``[low, high]`` per message.

    Used by the randomized model-checking experiments: varying delivery
    order explores interleavings that a fixed delay cannot reach (e.g.
    a PREPARE-TO-COMMIT racing a state-request).
    """

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self._low = low
        self._high = high

    @property
    def max_delay(self) -> float:
        """The distribution's upper bound."""
        return self._high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """One uniform draw per message."""
        return rng.uniform(self._low, self._high)

    def __repr__(self) -> str:
        return f"UniformDelay({self._low}, {self._high})"
