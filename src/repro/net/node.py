"""Message-driven actor base class.

A :class:`Node` is one site's network persona: it registers handlers by
message type, sends messages, and owns timers that are automatically
cancelled when the site crashes (a crashed site must not act).  The
database :class:`~repro.db.site.Site` and the protocol engines build on
this class.

Crash semantics follow the paper's model:

* ``crash()`` cancels every pending timer and flips ``alive``; the
  network then drops traffic in both directions.
* ``recover()`` flips ``alive`` back and invokes :meth:`on_recover`,
  where subclasses reconstruct state from durable storage (the WAL).
  Volatile state does *not* survive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.common.errors import SiteDownError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network
    from repro.sim.scheduler import EventHandle


class Node:
    """One network endpoint with typed message handlers and safe timers."""

    def __init__(self, node_id: int, network: "Network") -> None:
        self.node_id = node_id
        self.network = network
        self.alive = True
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._timers: list["EventHandle"] = []
        # the tracer is fixed for the network's lifetime; binding it
        # here saves two attribute hops on every trace() call (state
        # transitions trace on each protocol step)
        self._tracer = network.tracer
        network.register(self)

    # ------------------------------------------------------------------
    # handler registration / dispatch
    # ------------------------------------------------------------------

    def on(self, mtype: str, handler: Callable[[Message], None]) -> None:
        """Register the handler for a message type (one handler per type)."""
        if mtype in self._handlers:
            raise ValueError(f"node {self.node_id}: duplicate handler for {mtype!r}")
        self._handlers[mtype] = handler

    def deliver(self, msg: Message) -> None:
        """Called by the network when a message arrives.

        Unhandled message types are traced and ignored rather than
        raising: a recovered site legitimately receives stragglers for
        protocols it no longer tracks.
        """
        if not self.alive:  # defensive; the network already filters
            return
        handler = self._handlers.get(msg.mtype)
        if handler is None:
            self._tracer.record(
                self.now, self.node_id, "unhandled", msg.txn, mtype=msg.mtype
            )
            return
        handler(msg)

    # ------------------------------------------------------------------
    # sending and timing
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.network.scheduler.now

    def send(self, dst: int, mtype: str, txn: str = "", **payload: Any) -> None:
        """Send one message (no-op with an error if this site is down)."""
        if not self.alive:
            raise SiteDownError(f"site {self.node_id} is down")
        self.network.send(Message(self.node_id, dst, mtype, txn, payload))

    def broadcast(self, dsts: list[int], mtype: str, txn: str = "", **payload: Any) -> None:
        """Send the same message to every destination (excluding self).

        Routed through :meth:`Network.fanout
        <repro.net.network.Network.fanout>`, which hoists the per-source
        connectivity work out of the per-destination loop.
        """
        if not self.alive:
            raise SiteDownError(f"site {self.node_id} is down")
        self.network.fanout(
            self.node_id,
            [dst for dst in dsts if dst != self.node_id],
            mtype,
            txn,
            payload,
        )

    def multicast(self, dsts: Iterable[int], mtype: str, txn: str = "", **payload: Any) -> None:
        """Send the same message to every destination, self included.

        The protocol engines' fan-out primitive (vote requests, PREPARE,
        decisions, termination polls): a coordinator is usually also a
        participant and must deliver its own copy as a local message.
        Same :meth:`Network.fanout <repro.net.network.Network.fanout>`
        hot path as :meth:`broadcast`; the payload dict is shared across
        the fan-out, which is safe because messages are immutable by
        contract.
        """
        if not self.alive:
            raise SiteDownError(f"site {self.node_id} is down")
        self.network.fanout(self.node_id, dsts, mtype, txn, payload)

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any, label: str = "") -> "EventHandle":
        """Schedule a callback that is cancelled if this site crashes first."""
        if not self.alive:
            raise SiteDownError(f"site {self.node_id} is down")
        handle = self.network.scheduler.call_after(
            delay, self._guarded, fn, args, label=label or f"timer@{self.node_id}"
        )
        self._timers.append(handle)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.active]
        return handle

    def _guarded(self, fn: Callable[..., None], args: tuple[Any, ...]) -> None:
        """Run a timer callback only while alive (belt over crash-cancel)."""
        if self.alive:
            fn(*args)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose volatile state: cancel timers, stop acting."""
        self.alive = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.on_crash()

    def recover(self) -> None:
        """Come back up; subclasses rebuild from durable state."""
        self.alive = True
        self.on_recover()

    def on_crash(self) -> None:
        """Hook for subclasses (default: nothing)."""

    def on_recover(self) -> None:
        """Hook for subclasses (default: nothing)."""

    def trace(self, category: str, txn: str = "", **detail: Any) -> None:
        """Record a trace event attributed to this site."""
        self._tracer.record(self.now, self.node_id, category, txn, **detail)

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return f"<Node {self.node_id} {status}>"
