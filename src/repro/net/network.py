"""The network: routing, partitions, loss, crash-awareness, tracing.

``Network`` is the single facade the rest of the library talks to:

* protocol engines call :meth:`send`;
* the failure injector calls :meth:`crash_site`, :meth:`recover_site`,
  :meth:`set_partition`, :meth:`heal`, :meth:`set_link_loss`;
* the analysis layer reads :attr:`partition` and :meth:`active_sites`.

Semantics (matching the paper's fault model):

* A message to / from a crashed site is dropped.  Crashed sites receive
  nothing, ever — recovery does not replay in-flight traffic (a crashed
  site reconstructs from its write-ahead log, not from the wire).
* A message across a partition boundary is dropped.  Connectivity is
  evaluated at *delivery* time as well as send time, so a message in
  flight when the partition forms is lost — this is exactly how the
  two-coordinator scenario of Example 3 arises.
* Directed links can be lossy (probability ``p``), independently of
  partitions; ``p = 1`` models a severed link.
* A *degraded* site is slow, not dead (the gray-failure model): every
  message it sends or receives samples its delivery delay as usual and
  the result is stretched by the site's multiplicative factor (factors
  compose when both endpoints are degraded).  Local deliveries stay
  immediate and the RNG draw sequence is untouched, so a run with no
  degradations is byte-identical to one where the overlay code does
  not exist.
* A site can *leave* gracefully (:meth:`deregister`): it is removed
  from the universe without losing durable state — messages in flight
  to it drop as ``departed-in-flight``, distinct from any crash
  reason.

Hot-path notes: connectivity used to be re-evaluated per message (two
``PartitionView.component_of`` lookups at send time and two more at
delivery time).  The randomized studies push 10^5+ messages per run, so
the network now precomputes, per *connectivity epoch*, the reachable
peer set of each source.  An epoch is bumped — and the cache busted —
by every event that can change who may talk to whom or who is alive:
``set_partition``, ``heal``, ``crash_site``, ``recover_site`` and
``register``.  A message sent under epoch ``e`` to a then-live
destination is delivered without re-checking connectivity as long as
the epoch is still ``e`` on arrival (nothing can have changed); any
epoch change in flight falls back to the full per-message re-check, so
drop reasons (``partitioned-in-flight``, ``destination-down``) are
bit-identical to the unoptimized path.  ``fanout_cache=False`` restores
the legacy per-message evaluation — kept for A/B measurement by the
``net_deliver_fanout`` bench case.

Two further hot paths are cached here:

* **Partition views are interned.**  Storm-heavy failure plans apply
  the same group layout over and over; building a
  :class:`~repro.net.partitions.PartitionView` re-validates the groups
  and rebuilds every component ``frozenset`` each time.  With
  ``intern_views=True`` (default) the network keeps a view cache keyed
  by the normalized group signature — repeated ``set_partition`` calls
  (and every ``heal``) reuse the cached view, whose memoized
  ``sorted_components()`` also serves the ``partition`` trace record.
  The cache is cleared whenever the site universe changes
  (``register``).  ``intern_views=False`` rebuilds per event — kept
  for A/B measurement by the ``partition_churn`` bench case.
* **Trace appends use the tracer's fast paths.**  The per-message
  ``send`` / ``deliver`` / ``drop`` records go through
  :meth:`Tracer.record_send` and friends, which append straight into
  the columnar store without building a detail dict or a record object.
* **Fan-outs stamp a shared envelope.**  A protocol fan-out repeats the
  same ``src`` / ``mtype`` / ``txn`` / ``payload`` per destination; with
  ``flyweight=True`` (default) :meth:`fanout` builds one
  :class:`~repro.net.message.MessageTemplate` and stamps a thin
  per-destination clone (plain slot stores) instead of constructing a
  full frozen-dataclass :class:`Message` per destination.  Delivery,
  tracing, drop bookkeeping and ``msg_id`` draws are identical —
  stamps duck-type messages exactly.  ``flyweight=False`` restores the
  legacy per-object construction — kept for A/B measurement by the
  ``net_fanout_flyweight`` bench case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.net.delays import DelayModel, FixedDelay
from repro.net.message import Message, MessageTemplate
from repro.net.partitions import PartitionView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node
    from repro.sim.rng import RngRegistry
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import Tracer

GLOBAL_SITE = -1  # trace attribution for network-wide events


class Network:
    """Simulated point-to-point network over registered nodes."""

    def __init__(
        self,
        scheduler: "Scheduler",
        tracer: "Tracer",
        rng: "RngRegistry",
        delay_model: DelayModel | None = None,
        fanout_cache: bool = True,
        intern_views: bool = True,
        flyweight: bool = True,
    ) -> None:
        self._scheduler = scheduler
        self._tracer = tracer
        self._rng = rng.stream("net")
        self._delay_model = delay_model or FixedDelay(1.0)
        self._nodes: dict[int, "Node"] = {}
        self._partition = PartitionView([])
        self._link_loss: dict[tuple[int, int], float] = {}
        # gray-failure latency overlay: site -> multiplicative factor
        # (absent = 1.0); consulted only when non-empty, so historical
        # runs never touch it.
        self._degraded: dict[int, float] = {}
        self._filters: list[Callable[[Message], bool]] = []
        self._observers: list[Callable[[str], None]] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        # connectivity-epoch cache (see module docstring): the epoch
        # counts connectivity/liveness changes; _sendable maps a source
        # to the frozenset of sites in its component under the current
        # epoch; _labels memoizes per-mtype scheduler labels.
        self._fanout_cache = fanout_cache
        self._epoch = 0
        self._sendable: dict[int, frozenset[int]] = {}
        self._labels: dict[str, str] = {}
        self._fast_path = fanout_cache
        # interned partition views, keyed by normalized group signature
        # (None = the healed view); cleared when the universe changes.
        self._intern_views = intern_views
        self._view_cache: dict[tuple[tuple[int, ...], ...] | None, PartitionView] = {}
        # shared-envelope fan-out stamps (legacy Message-per-dst when off)
        self._flyweight = flyweight

    # ------------------------------------------------------------------
    # registration and topology
    # ------------------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Add a node to the universe (rebuilds the connectivity view).

        An active partition is preserved: the existing components stay
        exactly as they are and the new node starts as a singleton
        component (a site joining mid-partition cannot conjure links to
        anyone — use :meth:`place_with` to land it in a component).  On
        a healed network the node simply joins the universal component.
        """
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        was_partitioned = self._partition.is_partitioned
        groups = (
            tuple(tuple(c) for c in self._partition.sorted_components())
            if was_partitioned
            else None
        )
        self._nodes[node.node_id] = node
        self._view_cache.clear()  # interned views are universe-specific
        # unlisted sites become singletons, so the new node lands alone
        self._partition = self._interned_view(groups)
        self._bump_epoch()

    def deregister(self, site: int) -> None:
        """Remove a node from the universe (graceful leave, not a crash).

        The departing site keeps its durable state and is excised from
        its partition component (empty components vanish; a healed
        network stays healed over the survivors).  Messages still in
        flight to it drop as ``departed-in-flight`` — a reason distinct
        from every crash-path reason, so counters tell a leave from a
        failure.  Lossy-link entries and any degradation overlay
        touching the site are cleaned up with it.
        """
        if site not in self._nodes:
            raise ValueError(f"unknown site {site}")
        groups = None
        if self._partition.is_partitioned:
            groups = tuple(
                kept
                for members in self._partition.sorted_components()
                if (kept := tuple(s for s in members if s != site))
            )
        del self._nodes[site]
        self._view_cache.clear()  # interned views are universe-specific
        self._partition = self._interned_view(groups)
        self._bump_epoch()
        self._degraded.pop(site, None)
        stale = [pair for pair in self._link_loss if site in pair]
        for pair in stale:
            del self._link_loss[pair]
        self._refresh_fast_path()
        self._tracer.record(self._scheduler.now, site, "leave")

    def place_with(self, site: int, near: int) -> None:
        """Move ``site`` into ``near``'s partition component.

        The elastic-membership hook: a site joining mid-partition is
        registered as a singleton, then placed into the component it is
        physically wired to.  A no-op when the two already share a
        component (in particular on a healed network).
        """
        component = self._partition.component_of(near)  # raises on unknown near
        if site in component:
            return
        self._partition.component_of(site)  # raises on unknown site
        groups = []
        for members in self._partition.sorted_components():
            kept = [s for s in members if s != site]
            if near in members:
                kept.append(site)
            if kept:
                groups.append(tuple(kept))
        self._partition = self._interned_view(tuple(groups))
        self._bump_epoch()
        self._tracer.record(
            self._scheduler.now, GLOBAL_SITE, "place", moved=site, near=near
        )

    @property
    def epoch(self) -> int:
        """The connectivity epoch (bumps on partition/heal/crash/recover/register)."""
        return self._epoch

    def _bump_epoch(self) -> None:
        """Invalidate the reachable-peer cache after a connectivity change."""
        self._epoch += 1
        self._sendable.clear()

    def _interned_view(self, groups: Sequence[Sequence[int]] | None) -> PartitionView:
        """The partition view for ``groups``, interned when enabled.

        ``None`` means fully connected (the healed view).  The key is
        the group layout verbatim — an equivalent layout written in a
        different order is a harmless cache miss, and validation of a
        *new* layout still happens inside the ``PartitionView``
        constructor on first sight.
        """
        if not self._intern_views:
            return PartitionView(self._nodes, groups)
        # tuple() is identity on tuples, so pre-normalized plans
        # (FailureInjector actions) build their key without re-copying
        # any group.
        key = None if groups is None else tuple(map(tuple, groups))
        view = self._view_cache.get(key)
        if view is None:
            view = self._view_cache[key] = PartitionView(self._nodes, groups)
        return view

    def _refresh_fast_path(self) -> None:
        """Fast sends are only legal with no filters and no lossy links."""
        self._fast_path = (
            self._fanout_cache and not self._filters and not self._link_loss
        )

    @property
    def scheduler(self) -> "Scheduler":
        """The scheduler this network runs on."""
        return self._scheduler

    @property
    def tracer(self) -> "Tracer":
        """The run's trace recorder."""
        return self._tracer

    @property
    def T(self) -> float:
        """Longest end-to-end propagation delay (paper's ``T``)."""
        return self._delay_model.max_delay

    @property
    def sites(self) -> list[int]:
        """All registered site ids, sorted."""
        return sorted(self._nodes)

    def node(self, site: int) -> "Node":
        """The node object for ``site``."""
        return self._nodes[site]

    @property
    def partition(self) -> PartitionView:
        """Current connectivity view."""
        return self._partition

    def active_sites(self, among: Iterable[int] | None = None) -> list[int]:
        """Sites that are currently up (optionally restricted to ``among``)."""
        pool = self._nodes if among is None else among
        return sorted(s for s in pool if s in self._nodes and self._nodes[s].alive)

    def reachable_from(self, src: int, among: Iterable[int] | None = None) -> list[int]:
        """Active sites in ``src``'s component (optionally within ``among``).

        Includes ``src`` itself when alive.  This is the population a
        newly elected coordinator can poll in phase 1 of a termination
        protocol.
        """
        pool = self._nodes if among is None else among
        return sorted(
            s
            for s in pool
            if s in self._nodes
            and self._nodes[s].alive
            and self._partition.reachable(src, s)
        )

    # ------------------------------------------------------------------
    # fault control (called by the FailureInjector and by tests)
    # ------------------------------------------------------------------

    def subscribe(self, observer: Callable[[str], None]) -> None:
        """Register a connectivity-change observer.

        Observers fire after every partition / heal / recovery event with
        the event name.  The database cluster uses this to re-kick
        termination for transactions that blocked in an earlier
        connectivity epoch — the paper's "wait for the failures to
        recover" made operational.
        """
        self._observers.append(observer)

    def _notify(self, event: str) -> None:
        for observer in self._observers:
            observer(event)

    def crash_site(self, site: int) -> None:
        """Crash a node: volatile state lost, timers cancelled."""
        self._nodes[site].crash()
        self._bump_epoch()
        self._tracer.record(self._scheduler.now, site, "crash")

    def recover_site(self, site: int) -> None:
        """Recover a node from its durable state."""
        self._nodes[site].recover()
        self._bump_epoch()
        self._tracer.record(self._scheduler.now, site, "recover")
        self._notify("recover")

    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the network into the given disjoint components."""
        self._partition = self._interned_view(groups)
        self._bump_epoch()
        self._tracer.record(
            self._scheduler.now,
            GLOBAL_SITE,
            "partition",
            groups=self._partition.sorted_components(),
        )
        self._notify("partition")

    def heal(self) -> None:
        """Restore full connectivity (and clear per-link loss)."""
        self._partition = (
            self._interned_view(None) if self._intern_views else self._partition.healed()
        )
        self._link_loss.clear()
        self._bump_epoch()
        self._refresh_fast_path()
        self._tracer.record(self._scheduler.now, GLOBAL_SITE, "heal")
        self._notify("heal")

    def degrade_site(self, site: int, factor: float) -> None:
        """Stretch every message delay to/from ``site`` by ``factor``.

        The gray slow-site fault: the site stays alive, keeps voting and
        keeps its timers — only its wire latency stretches.  Factors do
        not stack; a second call replaces the first.  ``factor=1.0`` is
        an exact no-op (the overlay entry is removed, so the hot paths
        never even multiply).
        """
        if site not in self._nodes:
            raise ValueError(f"unknown site {site}")
        if factor <= 0.0:
            raise ValueError(f"degradation factor must be positive, got {factor}")
        if factor == 1.0:
            self._degraded.pop(site, None)
        else:
            self._degraded[site] = factor
        self._tracer.record(self._scheduler.now, site, "degrade", factor=factor)

    def restore_site(self, site: int) -> None:
        """Remove ``site``'s latency-degradation overlay (if any)."""
        self._degraded.pop(site, None)
        self._tracer.record(self._scheduler.now, site, "restore")

    def set_link_loss(self, src: int, dst: int, p: float) -> None:
        """Set the drop probability of the directed link ``src -> dst``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        if p == 0.0:
            self._link_loss.pop((src, dst), None)
        else:
            self._link_loss[(src, dst)] = p
        self._refresh_fast_path()

    def add_filter(self, pred: Callable[[Message], bool]) -> None:
        """Install a message filter; messages with ``pred(msg) == True`` drop.

        Filters are the scalpel for counterexample scenarios ("lose every
        message from site2 to site5 of type X"); random loss is the
        blunt instrument for sweeps.
        """
        self._filters.append(pred)
        self._refresh_fast_path()

    def clear_filters(self) -> None:
        """Remove all installed message filters."""
        self._filters.clear()
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Transmit a message, subject to the fault model.

        The message is dropped (with a traced reason) when the sender is
        down, the destination is unknown, a filter matches, the link is
        lossy, or the partition separates the pair at send time.  It is
        dropped again at delivery time if the destination crashed or the
        partition changed while it was in flight.
        """
        self.sent += 1
        src = msg.src
        dst = msg.dst
        sched = self._scheduler
        self._tracer.record_send(sched.now, src, msg.txn, msg.mtype, dst)
        if not self._fast_path:
            self._send_slow(msg)
            return
        # Fast path: no filters, no lossy links.  Same checks in the
        # same precedence order as _drop_reason_at_send, but against the
        # per-epoch reachable-peer cache instead of per-message
        # connectivity evaluation.
        nodes = self._nodes
        dst_node = nodes.get(dst)
        if dst_node is None:
            self._drop(msg, "unknown-destination")
            return
        src_node = nodes.get(src)
        if src_node is not None and not src_node.alive:
            self._drop(msg, "sender-down")
            return
        peers = self._sendable.get(src)
        if peers is None:
            # component_of raises on an unknown source, exactly like the
            # legacy reachable() check did.
            peers = self._partition.component_of(src)
            self._sendable[src] = peers
        if dst not in peers:
            self._drop(msg, "partitioned")
            return
        if src == dst:
            # local processing: no propagation delay, but still a separate
            # scheduler event so handlers never re-enter each other.
            delay = 0.0
        else:
            delay = self._delay_model.sample(self._rng, src, dst)
            degraded = self._degraded
            if degraded:
                delay *= degraded.get(src, 1.0) * degraded.get(dst, 1.0)
        if dst_node.alive:
            # destination is live and reachable now; as long as the
            # epoch is unchanged on arrival nothing can have changed,
            # so delivery skips the per-message re-checks.  Deliveries
            # are never cancelled, so no EventHandle is needed.
            sched.call_fixed(sched.now + delay, self._deliver_fast, dst_node, msg, self._epoch)
        else:
            # destined to drop as "destination-down" unless the target
            # recovers in flight — keep the fully checked path.
            sched.call_fixed(sched.now + delay, self._deliver, msg)

    def fanout(
        self,
        src: int,
        dsts: Iterable[int],
        mtype: str,
        txn: str = "",
        payload: dict | None = None,
    ) -> None:
        """Send one message per destination, hoisting per-source work.

        The fan-out primitive behind :meth:`Node.broadcast
        <repro.net.node.Node.broadcast>` and :meth:`Node.multicast
        <repro.net.node.Node.multicast>`: the protocol engines route
        vote requests, PREPAREs, decisions and termination polls here.
        Per-destination messages are distinct objects with distinct
        ``msg_id``\\ s (delivery, tracing and drop bookkeeping are per
        message, exactly as with :meth:`send`), but the sender-liveness
        check, the reachable-peer set and the virtual clock are read
        once per fan-out instead of once per destination — no events run
        between the per-destination sends, so the clock cannot advance
        mid-loop.  With ``flyweight=True`` the shared fields live in one
        :class:`~repro.net.message.MessageTemplate` envelope and each
        destination gets a thin stamp; either way the payload dict is
        shared across the fan-out — messages are immutable by contract.

        Falls back to per-message :meth:`send` whenever filters or lossy
        links are active (or the cache is disabled), so the fault model
        and RNG draw order are bit-identical to a manual send loop.
        """
        payload = payload if payload is not None else {}
        if not self._fast_path:
            for dst in dsts:
                self.send(Message(src, dst, mtype, txn, payload))
            return
        nodes = self._nodes
        record_send = self._tracer.record_send
        sched = self._scheduler
        drop = self._drop
        src_node = nodes.get(src)
        src_down = src_node is not None and not src_node.alive
        peers = self._sendable.get(src)
        sample = self._delay_model.sample
        rng = self._rng
        degraded = self._degraded
        epoch = self._epoch
        deliver_fast = self._deliver_fast
        now = sched.now
        template = MessageTemplate(src, mtype, txn, payload) if self._flyweight else None
        for dst in dsts:
            self.sent += 1
            record_send(now, src, txn, mtype, dst)
            if template is not None:
                msg = template.for_dst(dst)
            else:
                msg = Message(src, dst, mtype, txn, payload)
            dst_node = nodes.get(dst)
            if dst_node is None:
                drop(msg, "unknown-destination")
                continue
            if src_down:
                drop(msg, "sender-down")
                continue
            if peers is None:
                peers = self._sendable[src] = self._partition.component_of(src)
            if dst not in peers:
                drop(msg, "partitioned")
                continue
            delay = 0.0 if src == dst else sample(rng, src, dst)
            if degraded and delay:
                delay *= degraded.get(src, 1.0) * degraded.get(dst, 1.0)
            if dst_node.alive:
                sched.call_fixed(now + delay, deliver_fast, dst_node, msg, epoch)
            else:
                sched.call_fixed(now + delay, self._deliver, msg)

    def _send_slow(self, msg: Message) -> None:
        """The legacy send path: per-message fault evaluation."""
        reason = self._drop_reason_at_send(msg)
        if reason is not None:
            self._drop(msg, reason)
            return
        if msg.src == msg.dst:
            delay = 0.0
        else:
            delay = self._delay_model.sample(self._rng, msg.src, msg.dst)
            degraded = self._degraded
            if degraded:
                delay *= degraded.get(msg.src, 1.0) * degraded.get(msg.dst, 1.0)
        label = self._labels.get(msg.mtype)
        if label is None:
            label = self._labels[msg.mtype] = f"deliver:{msg.mtype}"
        self._scheduler.call_after(delay, self._deliver, msg, label=label)

    def _drop_reason_at_send(self, msg: Message) -> str | None:
        if msg.dst not in self._nodes:
            return "unknown-destination"
        if msg.src in self._nodes and not self._nodes[msg.src].alive:
            return "sender-down"
        for pred in self._filters:
            if pred(msg):
                return "filtered"
        p = self._link_loss.get((msg.src, msg.dst))
        if p is not None and (p >= 1.0 or self._rng.random() < p):
            return "link-loss"
        if not self._partition.reachable(msg.src, msg.dst):
            return "partitioned"
        return None

    def _deliver_fast(self, node: "Node", msg: Message, epoch: int) -> None:
        """Deliver a message whose connectivity was proven at send time.

        Valid only while the connectivity epoch is unchanged (no
        partition / heal / crash / recover since the send-time check);
        otherwise — or if the destination died through a side door that
        bypassed :meth:`crash_site` — fall back to the fully checked
        delivery so drop reasons stay exact.
        """
        if epoch != self._epoch or not node.alive:
            self._deliver(msg)
            return
        self.delivered += 1
        self._tracer.record_deliver(
            self._scheduler.now, msg.dst, msg.txn, msg.mtype, msg.src
        )
        node.deliver(msg)

    def _deliver(self, msg: Message) -> None:
        node = self._nodes.get(msg.dst)
        if node is None:
            # destination deregistered (graceful leave) while in flight
            self._drop(msg, "departed-in-flight")
            return
        if not node.alive:
            self._drop(msg, "destination-down")
            return
        # a departed *sender* has no component in the current view; its
        # in-flight tail delivers like a crashed sender's would (leave
        # must never be harsher than crash)
        if msg.src in self._nodes and not self._partition.reachable(msg.src, msg.dst):
            self._drop(msg, "partitioned-in-flight")
            return
        self.delivered += 1
        self._tracer.record_deliver(self._scheduler.now, msg.dst, msg.txn, msg.mtype, msg.src)
        node.deliver(msg)

    def _drop(self, msg: Message, reason: str) -> None:
        self.dropped += 1
        self._tracer.record_drop(
            self._scheduler.now, msg.src, msg.txn, msg.mtype, msg.dst, reason
        )
