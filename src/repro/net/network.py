"""The network: routing, partitions, loss, crash-awareness, tracing.

``Network`` is the single facade the rest of the library talks to:

* protocol engines call :meth:`send`;
* the failure injector calls :meth:`crash_site`, :meth:`recover_site`,
  :meth:`set_partition`, :meth:`heal`, :meth:`set_link_loss`;
* the analysis layer reads :attr:`partition` and :meth:`active_sites`.

Semantics (matching the paper's fault model):

* A message to / from a crashed site is dropped.  Crashed sites receive
  nothing, ever — recovery does not replay in-flight traffic (a crashed
  site reconstructs from its write-ahead log, not from the wire).
* A message across a partition boundary is dropped.  Connectivity is
  evaluated at *delivery* time as well as send time, so a message in
  flight when the partition forms is lost — this is exactly how the
  two-coordinator scenario of Example 3 arises.
* Directed links can be lossy (probability ``p``), independently of
  partitions; ``p = 1`` models a severed link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.net.delays import DelayModel, FixedDelay
from repro.net.message import Message
from repro.net.partitions import PartitionView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node
    from repro.sim.rng import RngRegistry
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import Tracer

GLOBAL_SITE = -1  # trace attribution for network-wide events


class Network:
    """Simulated point-to-point network over registered nodes."""

    def __init__(
        self,
        scheduler: "Scheduler",
        tracer: "Tracer",
        rng: "RngRegistry",
        delay_model: DelayModel | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._tracer = tracer
        self._rng = rng.stream("net")
        self._delay_model = delay_model or FixedDelay(1.0)
        self._nodes: dict[int, "Node"] = {}
        self._partition = PartitionView([])
        self._link_loss: dict[tuple[int, int], float] = {}
        self._filters: list[Callable[[Message], bool]] = []
        self._observers: list[Callable[[str], None]] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # registration and topology
    # ------------------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Add a node to the universe (rebuilds the connectivity view)."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._partition = PartitionView(self._nodes)

    @property
    def scheduler(self) -> "Scheduler":
        """The scheduler this network runs on."""
        return self._scheduler

    @property
    def tracer(self) -> "Tracer":
        """The run's trace recorder."""
        return self._tracer

    @property
    def T(self) -> float:
        """Longest end-to-end propagation delay (paper's ``T``)."""
        return self._delay_model.max_delay

    @property
    def sites(self) -> list[int]:
        """All registered site ids, sorted."""
        return sorted(self._nodes)

    def node(self, site: int) -> "Node":
        """The node object for ``site``."""
        return self._nodes[site]

    @property
    def partition(self) -> PartitionView:
        """Current connectivity view."""
        return self._partition

    def active_sites(self, among: Iterable[int] | None = None) -> list[int]:
        """Sites that are currently up (optionally restricted to ``among``)."""
        pool = self._nodes if among is None else among
        return sorted(s for s in pool if s in self._nodes and self._nodes[s].alive)

    def reachable_from(self, src: int, among: Iterable[int] | None = None) -> list[int]:
        """Active sites in ``src``'s component (optionally within ``among``).

        Includes ``src`` itself when alive.  This is the population a
        newly elected coordinator can poll in phase 1 of a termination
        protocol.
        """
        pool = self._nodes if among is None else among
        return sorted(
            s
            for s in pool
            if s in self._nodes
            and self._nodes[s].alive
            and self._partition.reachable(src, s)
        )

    # ------------------------------------------------------------------
    # fault control (called by the FailureInjector and by tests)
    # ------------------------------------------------------------------

    def subscribe(self, observer: Callable[[str], None]) -> None:
        """Register a connectivity-change observer.

        Observers fire after every partition / heal / recovery event with
        the event name.  The database cluster uses this to re-kick
        termination for transactions that blocked in an earlier
        connectivity epoch — the paper's "wait for the failures to
        recover" made operational.
        """
        self._observers.append(observer)

    def _notify(self, event: str) -> None:
        for observer in self._observers:
            observer(event)

    def crash_site(self, site: int) -> None:
        """Crash a node: volatile state lost, timers cancelled."""
        self._nodes[site].crash()
        self._tracer.record(self._scheduler.now, site, "crash")

    def recover_site(self, site: int) -> None:
        """Recover a node from its durable state."""
        self._nodes[site].recover()
        self._tracer.record(self._scheduler.now, site, "recover")
        self._notify("recover")

    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the network into the given disjoint components."""
        self._partition = PartitionView(self._nodes, groups)
        self._tracer.record(
            self._scheduler.now,
            GLOBAL_SITE,
            "partition",
            groups=[sorted(c) for c in self._partition.components],
        )
        self._notify("partition")

    def heal(self) -> None:
        """Restore full connectivity (and clear per-link loss)."""
        self._partition = self._partition.healed()
        self._link_loss.clear()
        self._tracer.record(self._scheduler.now, GLOBAL_SITE, "heal")
        self._notify("heal")

    def set_link_loss(self, src: int, dst: int, p: float) -> None:
        """Set the drop probability of the directed link ``src -> dst``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        if p == 0.0:
            self._link_loss.pop((src, dst), None)
        else:
            self._link_loss[(src, dst)] = p

    def add_filter(self, pred: Callable[[Message], bool]) -> None:
        """Install a message filter; messages with ``pred(msg) == True`` drop.

        Filters are the scalpel for counterexample scenarios ("lose every
        message from site2 to site5 of type X"); random loss is the
        blunt instrument for sweeps.
        """
        self._filters.append(pred)

    def clear_filters(self) -> None:
        """Remove all installed message filters."""
        self._filters.clear()

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Transmit a message, subject to the fault model.

        The message is dropped (with a traced reason) when the sender is
        down, the destination is unknown, a filter matches, the link is
        lossy, or the partition separates the pair at send time.  It is
        dropped again at delivery time if the destination crashed or the
        partition changed while it was in flight.
        """
        self.sent += 1
        self._tracer.record(self._scheduler.now, msg.src, "send", msg.txn, mtype=msg.mtype, dst=msg.dst)
        reason = self._drop_reason_at_send(msg)
        if reason is not None:
            self._drop(msg, reason)
            return
        if msg.src == msg.dst:
            # local processing: no propagation delay, but still a separate
            # scheduler event so handlers never re-enter each other.
            delay = 0.0
        else:
            delay = self._delay_model.sample(self._rng, msg.src, msg.dst)
        self._scheduler.call_after(delay, self._deliver, msg, label=f"deliver:{msg.mtype}")

    def _drop_reason_at_send(self, msg: Message) -> str | None:
        if msg.dst not in self._nodes:
            return "unknown-destination"
        if msg.src in self._nodes and not self._nodes[msg.src].alive:
            return "sender-down"
        for pred in self._filters:
            if pred(msg):
                return "filtered"
        p = self._link_loss.get((msg.src, msg.dst))
        if p is not None and (p >= 1.0 or self._rng.random() < p):
            return "link-loss"
        if not self._partition.reachable(msg.src, msg.dst):
            return "partitioned"
        return None

    def _deliver(self, msg: Message) -> None:
        node = self._nodes[msg.dst]
        if not node.alive:
            self._drop(msg, "destination-down")
            return
        if not self._partition.reachable(msg.src, msg.dst):
            self._drop(msg, "partitioned-in-flight")
            return
        self.delivered += 1
        self._tracer.record(self._scheduler.now, msg.dst, "deliver", msg.txn, mtype=msg.mtype, src=msg.src)
        node.deliver(msg)

    def _drop(self, msg: Message, reason: str) -> None:
        self.dropped += 1
        self._tracer.record(
            self._scheduler.now, msg.src, "drop", msg.txn, mtype=msg.mtype, dst=msg.dst, reason=reason
        )
