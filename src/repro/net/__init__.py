"""Simulated point-to-point network substrate (system S2).

The paper assumes a network with a *longest end-to-end propagation
delay* ``T``; protocol timeouts are expressed as multiples of ``T``
(``2T`` for acknowledgement windows, ``3T`` for coordinator-silence
detection).  This package provides that network:

* :class:`~repro.net.message.Message` — the unit of communication.
* :class:`~repro.net.delays.DelayModel` — per-message latency, bounded
  by ``T`` so the paper's timeout arithmetic is sound.
* :class:`~repro.net.partitions.PartitionView` — current connectivity.
* :class:`~repro.net.network.Network` — routing, loss, partitions,
  crash-awareness; every send/drop/delivery is traced.
* :class:`~repro.net.node.Node` — message-driven actor base class that
  sites are built from.
"""

from repro.net.delays import DelayModel, FixedDelay, UniformDelay
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.net.partitions import PartitionView

__all__ = [
    "DelayModel",
    "FixedDelay",
    "Message",
    "Network",
    "Node",
    "PartitionView",
    "UniformDelay",
]
