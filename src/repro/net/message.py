"""Network message type.

One flat dataclass covers every protocol in the library; the ``mtype``
string namespaces the protocol family (``"2pc.vote-req"``,
``"qtp.prepare-to-commit"``, ``"elect.announce"`` ...) and ``payload``
carries protocol-specific fields.  Keeping one type means the network,
tracer, and failure injector never need protocol-specific knowledge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable message in flight.

    Attributes:
        src: sender site id.
        dst: destination site id.
        mtype: dotted message type, e.g. ``"qtp.pc-ack"``.
        txn: transaction id this message concerns ("" for non-transaction
            traffic such as elections... elections are still txn-scoped in
            this library, so in practice txn is almost always set).
        payload: protocol-specific fields (plain values only).
        msg_id: unique id for tracing and duplicate-detection tests.
    """

    src: int
    dst: int
    mtype: str
    txn: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    @property
    def family(self) -> str:
        """The protocol family prefix of ``mtype`` (before the first dot)."""
        head, _, __ = self.mtype.partition(".")
        return head

    def __str__(self) -> str:
        body = f" {self.payload}" if self.payload else ""
        txn = f" [{self.txn}]" if self.txn else ""
        return f"{self.src}->{self.dst} {self.mtype}{txn}{body}"
