"""Network message types.

One flat dataclass covers every protocol in the library; the ``mtype``
string namespaces the protocol family (``"2pc.vote-req"``,
``"qtp.prepare-to-commit"``, ``"elect.announce"`` ...) and ``payload``
carries protocol-specific fields.  Keeping one type means the network,
tracer, and failure injector never need protocol-specific knowledge.

Hot-path note: a protocol fan-out sends the *same* ``src`` / ``mtype``
/ ``txn`` / ``payload`` to every destination, yet the legacy path built
one full :class:`Message` per destination — and a frozen dataclass pays
one ``object.__setattr__`` call per field on construction.
:class:`MessageTemplate` is the flyweight answer: the shared envelope
is built once per fan-out and :meth:`MessageTemplate.for_dst` stamps
out per-destination messages with plain slot stores (~3x cheaper to
construct).  A stamp duck-types :class:`Message` exactly — same
attributes, same ``family`` / ``__str__``, and a ``msg_id`` drawn from
the *same* process-wide counter, so tracing and duplicate-detection
semantics are unchanged.  Handlers must treat stamps as immutable, just
like messages (the payload dict is shared across the whole fan-out).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable message in flight.

    Attributes:
        src: sender site id.
        dst: destination site id.
        mtype: dotted message type, e.g. ``"qtp.pc-ack"``.
        txn: transaction id this message concerns ("" for non-transaction
            traffic such as elections... elections are still txn-scoped in
            this library, so in practice txn is almost always set).
        payload: protocol-specific fields (plain values only).
        msg_id: unique id for tracing and duplicate-detection tests.
    """

    src: int
    dst: int
    mtype: str
    txn: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    @property
    def family(self) -> str:
        """The protocol family prefix of ``mtype`` (before the first dot)."""
        head, _, __ = self.mtype.partition(".")
        return head

    def __str__(self) -> str:
        body = f" {self.payload}" if self.payload else ""
        txn = f" [{self.txn}]" if self.txn else ""
        return f"{self.src}->{self.dst} {self.mtype}{txn}{body}"


class MessageStamp:
    """A per-destination stamp of a :class:`MessageTemplate` envelope.

    Field-compatible with :class:`Message` (the network, tracer and
    every handler read the same attribute names); constructed via
    :meth:`MessageTemplate.for_dst`, never directly.  Immutable by
    contract — nothing in the library mutates a message in flight.
    """

    __slots__ = ("src", "dst", "mtype", "txn", "payload", "msg_id")

    src: int
    dst: int
    mtype: str
    txn: str
    payload: dict[str, Any]
    msg_id: int

    @property
    def family(self) -> str:
        """The protocol family prefix of ``mtype`` (before the first dot)."""
        head, _, __ = self.mtype.partition(".")
        return head

    def __str__(self) -> str:
        body = f" {self.payload}" if self.payload else ""
        txn = f" [{self.txn}]" if self.txn else ""
        return f"{self.src}->{self.dst} {self.mtype}{txn}{body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageStamp(src={self.src!r}, dst={self.dst!r}, "
            f"mtype={self.mtype!r}, txn={self.txn!r}, "
            f"payload={self.payload!r}, msg_id={self.msg_id!r})"
        )


class MessageTemplate:
    """The shared envelope of one fan-out (flyweight for :class:`Message`).

    Holds the fields every destination shares; :meth:`for_dst` clones a
    thin :class:`MessageStamp` per destination with plain slot stores —
    no dataclass ``__setattr__`` round-trips — while still drawing each
    stamp's ``msg_id`` from the process-wide message counter.
    """

    __slots__ = ("src", "mtype", "txn", "payload")

    def __init__(
        self, src: int, mtype: str, txn: str = "", payload: dict[str, Any] | None = None
    ) -> None:
        self.src = src
        self.mtype = mtype
        self.txn = txn
        self.payload = payload if payload is not None else {}

    def for_dst(self, dst: int) -> MessageStamp:
        """Stamp the envelope for one destination (fresh ``msg_id``)."""
        stamp = MessageStamp.__new__(MessageStamp)
        stamp.src = self.src
        stamp.dst = dst
        stamp.mtype = self.mtype
        stamp.txn = self.txn
        stamp.payload = self.payload
        stamp.msg_id = next(_msg_counter)
        return stamp
