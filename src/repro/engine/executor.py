"""Sweep execution: serial, fanned out over a process pool, or onto a
persistent warm pool reused across sweeps.

The contract that makes parallelism safe here is one-way data flow:
every :class:`~repro.engine.spec.RunTask` carries its own seed and
builds its own simulator, so tasks share nothing and the executor can
batch them onto workers in any layout.  Results are always returned in
task-index order, so a sweep's output is bit-identical at every worker
count — a property the suite's property tests pin down.

Two pool modes exist:

* the default creates a pool per :func:`run_sweep` call — simple, and
  fine when one sweep dominates the session;
* :class:`SweepRunner` (or ``persistent_pool=True``) keeps **one warm
  pool alive across sweeps**.  Workers are created once with an
  initializer that pre-imports the simulator stack, so a campaign of
  many small sweeps (the bench suite's cases, a 10^5-run study split
  into shards) amortizes process creation and module import instead of
  paying them per sweep.  Results are still bit-identical: warm workers
  hold no per-task state, only imported modules and
  :func:`worker_cache` entries that are pure functions of their keys.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.engine.spec import RunResult, RunTask, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.aggregate import RowReducer
    from repro.engine.sink import ResultSink
    from repro.engine.store import ResultStore


def _execute_task(task: RunTask) -> RunResult:
    """Top-level trampoline so tasks pickle into pool workers."""
    return task.execute()


def default_workers() -> int:
    """A sensible worker count for this machine (>= 1)."""
    return max(1, os.cpu_count() or 1)


def default_chunksize(n_tasks: int, workers: int) -> int:
    """Batch tasks so each worker sees a few chunks, not one task each.

    Four chunks per worker amortizes task pickling without letting one
    slow chunk straggle the whole pool.
    """
    return max(1, n_tasks // (workers * 4) or 1)


# ----------------------------------------------------------------------
# warm-worker state
# ----------------------------------------------------------------------

#: per-worker memo for deterministic shared artifacts (see worker_cache).
_WORKER_CACHE: dict[Any, Any] = {}

#: cap on distinct worker_cache entries per process.  A long-lived warm
#: pool sees every sweep of a campaign; without a bound, each new
#: (catalog, topology, trace) key pins its artifact forever.  FIFO like
#: ``CATALOG_MEMO_LIMIT``: entries are pure functions of their keys, so
#: eviction only ever costs a rebuild, never correctness.
WORKER_CACHE_LIMIT = 128


def worker_cache(key: Any, build: Callable[[], Any]) -> Any:
    """Per-process memo for artifacts that are pure functions of ``key``.

    Persistent workers survive across tasks, so a catalog or topology
    that every task of a sweep rebuilds identically can be built once
    per worker: ``catalog = worker_cache(("wan", 4, 8), build_catalog)``.

    Only cache values that are (a) deterministic given the key and (b)
    never mutated by a run — and never cache anything whose construction
    *consumes a shared RNG stream*, because skipping those draws on a
    warm worker would change every draw that follows and break the
    byte-identical-trajectories guarantee.

    Bounded at :data:`WORKER_CACHE_LIMIT` entries with FIFO eviction,
    so a pool reused across many sweeps cannot grow its memo without
    bound.
    """
    try:
        return _WORKER_CACHE[key]
    except KeyError:
        value = build()
        while len(_WORKER_CACHE) >= WORKER_CACHE_LIMIT:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[key] = value
        return value


def clear_worker_cache() -> None:
    """Drop this process's :func:`worker_cache` entries (tests use this)."""
    _WORKER_CACHE.clear()


def _warm_worker() -> None:
    """Pool initializer: pre-import the simulator stack.

    A cold worker pays these imports lazily inside its first task; a
    spawned (non-fork) worker pays them per *pool*.  Importing them in
    the initializer moves that cost to pool creation, which the
    persistent runner pays exactly once per campaign.
    """
    import repro.db.cluster  # noqa: F401  (pulls protocols, net, sim, storage)
    import repro.experiments.workload_study  # noqa: F401
    import repro.workload.generators  # noqa: F401
    import repro.workload.scenarios  # noqa: F401


#: exceptions meaning "this environment cannot create that pool" — the
#: serial fallback covers them; anything else is a real bug and raises.
#: AssertionError is multiprocessing's daemonic-children refusal, hit
#: when a bench task running *inside* a pool worker opens its own pool.
_POOL_UNAVAILABLE = (ImportError, OSError, PermissionError, AssertionError)


@dataclass
class SweepOutcome:
    """An executed sweep: the spec summary plus ordered results.

    ``aggregate`` is populated by the streaming paths (``sink=`` /
    ``reduce=``): the sink or reducer summary — row count, the
    order-independent row digest, and any reducer metrics.  On the
    default (row-keeping) path it stays ``None``.

    ``resilience`` is populated only by the fault-tolerant path
    (``on_error=`` / ``resume_from=``): completed/resumed/retried/
    quarantined/respawns provenance, so a partial result can never be
    mistaken for a full one.  ``failures`` then lists the quarantined
    cells as :class:`~repro.engine.resilience.TaskFailure` records.
    """

    spec: dict[str, Any]
    results: list[RunResult] = field(default_factory=list)
    aggregate: dict[str, Any] | None = None
    resilience: dict[str, Any] | None = None
    failures: list[Any] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The sweep's name."""
        return self.spec["name"]

    def values(self) -> list[Any]:
        """Raw task return values, in task order."""
        return [r.value for r in self.results]

    def by_cell(self) -> list[tuple[dict[str, Any], list[RunResult]]]:
        """Results grouped per grid cell, preserving expansion order.

        All results of one sweep share a parameter-name set, so the
        cell key is the value tuple under one sorted name list computed
        once — not a re-sorted item tuple per result.  (Rows with a
        divergent name set — hand-built outcomes — fall back to the
        per-row sorted-items key.)
        """
        groups: dict[tuple, tuple[dict[str, Any], list[RunResult]]] = {}
        names: tuple[str, ...] | None = None
        for result in self.results:
            params = result.params
            if names is None or len(params) != len(names):
                names = tuple(sorted(params))
            try:
                key = tuple(params[name] for name in names)
            except KeyError:  # divergent name set
                key = tuple(sorted(params.items(), key=lambda kv: kv[0]))
            groups.setdefault(key, (params, []))[1].append(result)
        return list(groups.values())

    def cell(self, **params: Any) -> list[RunResult]:
        """Results of the single cell matching ``params`` (subset match)."""
        return [
            r
            for r in self.results
            if all(r.params.get(k) == v for k, v in params.items())
        ]


class SweepRunner:
    """A sweep executor that keeps one warm process pool across sweeps.

    Opt-in persistent-pool mode: create the runner once, push any
    number of sweeps through :meth:`run_sweep`, and close it (it is
    also a context manager).  The pool is created lazily on the first
    parallel sweep, with :func:`_warm_worker` pre-importing the
    simulator stack in every worker; environments where pools cannot
    be created (sandboxes, nested pools) degrade to serial execution,
    exactly like :func:`run_sweep`.

    Results are bit-identical to the per-sweep-pool and serial paths —
    seeds travel with tasks and warm workers hold no run state.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else default_workers()
        self._pool: Any = None
        self._pool_failed = False
        self.sweeps_run = 0
        self.pools_created = 0

    def _ensure_pool(self) -> Any:
        """The shared pool, or None when this environment cannot pool."""
        if self._pool is None and not self._pool_failed:
            try:
                import multiprocessing

                # import the stack in the *parent* first: fork children
                # then inherit warm modules outright, and the initializer
                # only pays real import work under a spawn start method.
                _warm_worker()
                ctx = multiprocessing.get_context()
                self._pool = ctx.Pool(processes=self.workers, initializer=_warm_worker)
                self.pools_created += 1
            except _POOL_UNAVAILABLE:
                self._pool_failed = True
        return self._pool

    def run_sweep(
        self,
        spec: SweepSpec,
        chunksize: int | None = None,
        store: "ResultStore | None" = None,
        sink: "ResultSink | None" = None,
        reduce: "RowReducer | None" = None,
        on_error: Any = None,
        resume_from: Any = None,
    ) -> SweepOutcome:
        """Execute one sweep on the warm pool (API mirrors :func:`run_sweep`)."""
        if sink is not None and reduce is not None:
            raise ValueError("pass sink= or reduce=, not both")
        if on_error is not None or resume_from is not None:
            # The resilient backend owns its pool (it must be able to
            # kill and respawn workers); the warm pool stays untouched.
            if reduce is not None:
                raise ValueError("on_error/resume_from do not compose with reduce=")
            from repro.engine.resilience import resolve_policy, run_resilient

            outcome = run_resilient(
                spec,
                workers=self.workers,
                chunksize=chunksize,
                sink=sink,
                policy=resolve_policy(on_error),
                resume_from=resume_from,
            )
            self.sweeps_run += 1
            if store is not None:
                store.save(outcome)
            return outcome
        if sink is not None or reduce is not None:
            pool = self._ensure_pool() if self.workers > 1 and spec.n_tasks > 1 else None
            workers = self.workers if pool is not None else 1
            if reduce is not None:
                outcome = _run_reduced(spec, workers, chunksize, reduce, pool=pool)
            else:
                outcome = _run_sink(spec, workers, chunksize, sink, pool=pool)
            self.sweeps_run += 1
            if store is not None:
                store.save(outcome)
            return outcome
        tasks = spec.tasks()
        pool = self._ensure_pool() if self.workers > 1 and len(tasks) > 1 else None
        if pool is not None:
            results = pool.map(
                _execute_task,
                tasks,
                chunksize or default_chunksize(len(tasks), self.workers),
            )
        else:
            results = [task.execute() for task in tasks]
        self.sweeps_run += 1
        outcome = SweepOutcome(spec=spec.summary(), results=results)
        if store is not None:
            store.save(outcome)
        return outcome

    def close(self) -> None:
        """Tear the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    chunksize: int | None = None,
    store: "ResultStore | None" = None,
    persistent_pool: bool = False,
    sink: "ResultSink | None" = None,
    reduce: "RowReducer | None" = None,
    on_error: Any = None,
    resume_from: Any = None,
) -> SweepOutcome:
    """Execute a sweep and (optionally) persist its artifact.

    Args:
        spec: the sweep to run.
        workers: process count; ``1`` (or anything lower) runs serially
            in this process, which is also the automatic fallback when
            a pool cannot be created (restricted environments, missing
            ``fork``/``spawn`` support).
        chunksize: tasks per worker batch; default
            :func:`default_chunksize`.
        store: when given, the outcome is saved under ``spec.name``
            before returning.  (With a non-row-keeping ``sink`` the
            saved artifact has an empty ``results`` body — stream the
            rows through a :class:`~repro.engine.sink.JsonlSink`
            instead when they must be persisted.)
        persistent_pool: run on the process-wide shared
            :class:`SweepRunner` for this worker count, keeping the
            pool warm for later ``run_sweep`` calls, instead of
            creating (and tearing down) a pool just for this sweep.
        sink: streaming backend — every result is pushed into the sink
            in task-index order as it completes, tasks are generated
            lazily, and only row-keeping sinks (``MemorySink``) retain
            rows in the outcome.  The default (``None``) is the classic
            keep-everything path, byte-identical to prior releases.
        reduce: a :class:`~repro.engine.aggregate.RowReducer`
            *template*: each worker chunk folds its rows into a fresh
            partial and ships the partial back instead of the row list;
            partials merge in chunk order and the outcome carries only
            ``aggregate``.  Mutually exclusive with ``sink``.
        on_error: fault policy for failing tasks.  ``None`` (default)
            is the exact historical behaviour — the first task
            exception aborts the sweep.  ``"retry"`` re-runs failed
            tasks from their pinned per-cell seed under the default
            :class:`~repro.engine.resilience.RetryPolicy`;
            ``"quarantine"`` additionally records cells that exhaust
            their retries into the outcome's failure manifest and
            keeps sweeping; pass a ``RetryPolicy`` for full control.
            Any non-``None`` value routes execution through the
            resilient backend, which also survives worker-process
            death (the pool is respawned and unacknowledged chunks
            re-dispatched, exactly-once by task index).
        resume_from: path of a partial :class:`~repro.engine.sink.JsonlSink`
            artifact from a crashed run.  Committed rows are salvaged
            and replayed instead of re-executed, and the finished
            artifact is byte-identical to an uninterrupted run.  When
            ``sink`` is ``None``, a ``JsonlSink`` at that path is
            implied.  Composes with ``on_error``; not with ``reduce``.

    Returns:
        A :class:`SweepOutcome` whose ``results`` are in task order —
        identical content for every ``workers`` value.  Streaming paths
        additionally seat the sink/reducer summary in ``aggregate``;
        its row digest is byte-identical across all backends and worker
        counts.
    """
    if sink is not None and reduce is not None:
        raise ValueError("pass sink= or reduce=, not both")
    if on_error is not None or resume_from is not None:
        if reduce is not None:
            raise ValueError("on_error/resume_from do not compose with reduce=")
        from repro.engine.resilience import resolve_policy, run_resilient

        outcome = run_resilient(
            spec,
            workers=workers,
            chunksize=chunksize,
            sink=sink,
            policy=resolve_policy(on_error),
            resume_from=resume_from,
        )
        if store is not None:
            store.save(outcome)
        return outcome
    if persistent_pool and workers > 1:
        return shared_runner(workers).run_sweep(
            spec, chunksize=chunksize, store=store, sink=sink, reduce=reduce
        )
    if reduce is not None:
        outcome = _run_reduced(spec, workers, chunksize, reduce, pool=None)
    elif sink is not None:
        outcome = _run_sink(spec, workers, chunksize, sink, pool=None)
    else:
        tasks = spec.tasks()
        if workers > 1 and len(tasks) > 1:
            results = _run_pool(tasks, workers, chunksize)
        else:
            results = [task.execute() for task in tasks]
        outcome = SweepOutcome(spec=spec.summary(), results=results)
    if store is not None:
        store.save(outcome)
    return outcome


#: process-wide persistent runners, one per worker count.
_SHARED_RUNNERS: dict[int, SweepRunner] = {}


def shared_runner(workers: int) -> SweepRunner:
    """The process-wide persistent :class:`SweepRunner` for ``workers``.

    :func:`shutdown_shared_runners` is registered with ``atexit`` at
    import time (see module bottom), so warm pools opened via
    ``persistent_pool=True`` are closed at interpreter exit even if the
    caller never cleans up — including after a SIGINT that aborted a
    sweep mid-flight, which otherwise leaks pool semaphores.
    """
    runner = _SHARED_RUNNERS.get(workers)
    if runner is None:
        runner = _SHARED_RUNNERS[workers] = SweepRunner(workers=workers)
    return runner


def shutdown_shared_runners() -> None:
    """Close every process-wide persistent runner (tests / atexit).

    Idempotent: runners are drained from the registry before closing,
    each :meth:`SweepRunner.close` tolerates an already-closed pool,
    and one runner failing to close never strands the rest.
    """
    while _SHARED_RUNNERS:
        _, runner = _SHARED_RUNNERS.popitem()
        try:
            runner.close()
        except Exception:  # pragma: no cover - interpreter-teardown noise
            pass


# Registered unconditionally at import: the hook is harmless when no
# shared runner was ever created (the registry is empty) and guarantees
# cleanup when one was — even for runs interrupted before their own
# teardown.  Re-imports don't stack duplicates (modules import once),
# and the function is idempotent regardless.
atexit.register(shutdown_shared_runners)


def _run_pool(
    tasks: list[RunTask],
    workers: int,
    chunksize: int | None,
) -> list[RunResult]:
    """Map tasks over a process pool; fall back to serial on failure.

    ``Pool.map`` preserves input order, so no re-sorting is needed; the
    fallback covers sandboxes where process creation is forbidden and
    nested pools (a task already running inside a pool worker).
    """
    try:
        import multiprocessing

        ctx = multiprocessing.get_context()
        pool = ctx.Pool(processes=workers)
    except _POOL_UNAVAILABLE:
        # only pool *creation* falls back; an error raised by a task
        # must surface, not silently re-run the whole sweep serially
        return [task.execute() for task in tasks]
    with pool:
        return pool.map(
            _execute_task,
            tasks,
            chunksize or default_chunksize(len(tasks), workers),
        )


# ----------------------------------------------------------------------
# streaming backends (sink= / reduce=)
# ----------------------------------------------------------------------

def _stream_results(
    spec: SweepSpec,
    workers: int,
    chunksize: int | None,
    pool: Any,
) -> Iterable[RunResult]:
    """Results in task-index order, produced incrementally.

    Tasks come from ``spec.iter_tasks()`` (never materialized as a
    list) and ``Pool.imap`` preserves input order while yielding as
    chunks complete, so the consumer sees a bounded window of rows no
    matter how large the sweep is.
    """
    n = spec.n_tasks
    if workers > 1 and n > 1:
        if pool is not None:
            return pool.imap(
                _execute_task,
                spec.iter_tasks(),
                chunksize or default_chunksize(n, workers),
            )
        return _stream_fresh_pool(spec, workers, chunksize)
    return (task.execute() for task in spec.iter_tasks())


def _stream_fresh_pool(
    spec: SweepSpec, workers: int, chunksize: int | None
) -> Iterable[RunResult]:
    """One-shot-pool flavour of :func:`_stream_results` (same fallback
    rule as :func:`_run_pool`: only pool *creation* degrades to serial)."""
    try:
        import multiprocessing

        ctx = multiprocessing.get_context()
        pool = ctx.Pool(processes=workers)
    except _POOL_UNAVAILABLE:
        yield from (task.execute() for task in spec.iter_tasks())
        return
    with pool:
        yield from pool.imap(
            _execute_task,
            spec.iter_tasks(),
            chunksize or default_chunksize(spec.n_tasks, workers),
        )


def _run_sink(
    spec: SweepSpec,
    workers: int,
    chunksize: int | None,
    sink: "ResultSink",
    pool: Any,
) -> SweepOutcome:
    """Drive one sweep through a sink (the ``sink=`` backend).

    On any failure the sink is aborted, not closed — a streaming file
    sink then leaves a detectably-truncated artifact behind instead of
    a well-formed file holding half a sweep.
    """
    summary = spec.summary()
    sink.open(summary)
    try:
        for result in _stream_results(spec, workers, chunksize, pool):
            sink.emit(result)
    except BaseException:
        sink.abort()
        raise
    sink.close()
    results = list(sink.results) if sink.keeps_rows else []
    return SweepOutcome(spec=summary, results=results, aggregate=sink.summary())


def _chunked(items: Iterable[Any], size: int) -> Iterable[list[Any]]:
    """Split an iterable into lists of at most ``size`` items."""
    chunk: list[Any] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _execute_reduced_chunk(payload: tuple[list[RunTask], "RowReducer"]) -> "RowReducer":
    """Worker side of ``reduce=``: fold one task chunk into a fresh
    partial and ship the partial back (top-level so it pickles)."""
    tasks, template = payload
    partial = template.fresh()
    for task in tasks:
        partial.fold(task.execute())
    return partial


def _run_reduced(
    spec: SweepSpec,
    workers: int,
    chunksize: int | None,
    reduce: "RowReducer",
    pool: Any,
) -> SweepOutcome:
    """Drive one sweep through per-chunk partial reducers (``reduce=``).

    ``reduce`` is a template and is never mutated: every chunk folds
    into its own fresh partial, and partials merge in chunk (= task)
    order.  Accumulators are exactly mergeable, so the summary is
    byte-identical to a serial fold at every worker count.
    """
    n = spec.n_tasks
    total = reduce.fresh()
    if workers > 1 and n > 1:
        owned = None
        if pool is None:
            try:
                import multiprocessing

                pool = owned = multiprocessing.get_context().Pool(processes=workers)
            except _POOL_UNAVAILABLE:
                pool = None
        if pool is not None:
            size = chunksize or default_chunksize(n, workers)
            chunks = ((chunk, reduce) for chunk in _chunked(spec.iter_tasks(), size))
            try:
                for partial in pool.imap(_execute_reduced_chunk, chunks):
                    total.merge(partial)
            finally:
                if owned is not None:
                    owned.terminate()
                    owned.join()
            return SweepOutcome(
                spec=spec.summary(), results=[], aggregate=total.summary()
            )
    for task in spec.iter_tasks():
        total.fold(task.execute())
    return SweepOutcome(spec=spec.summary(), results=[], aggregate=total.summary())


def map_runs(
    task: Callable[..., Any],
    seeds: Iterable[int],
    workers: int = 1,
    **params: Any,
) -> list[Any]:
    """Convenience: run ``task(seed=s, **params)`` for every seed.

    A one-cell sweep without declaring a spec — handy for quick studies
    and for porting existing ``for i in range(runs)`` loops.
    """
    seeds = list(seeds)
    tasks = [
        RunTask(index=i, sweep="map-runs", task=task, params=dict(params), run=i, seed=s)
        for i, s in enumerate(seeds)
    ]
    if workers > 1 and len(tasks) > 1:
        return [r.value for r in _run_pool(tasks, workers, None)]
    return [t.execute().value for t in tasks]
