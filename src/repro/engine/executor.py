"""Sweep execution: serial, or fanned out over a process pool.

The contract that makes parallelism safe here is one-way data flow:
every :class:`~repro.engine.spec.RunTask` carries its own seed and
builds its own simulator, so tasks share nothing and the executor can
batch them onto workers in any layout.  Results are always returned in
task-index order, so a sweep's output is bit-identical at every worker
count — a property the suite's property tests pin down.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.engine.spec import RunResult, RunTask, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.store import ResultStore


def _execute_task(task: RunTask) -> RunResult:
    """Top-level trampoline so tasks pickle into pool workers."""
    return task.execute()


def default_workers() -> int:
    """A sensible worker count for this machine (>= 1)."""
    return max(1, os.cpu_count() or 1)


def default_chunksize(n_tasks: int, workers: int) -> int:
    """Batch tasks so each worker sees a few chunks, not one task each.

    Four chunks per worker amortizes task pickling without letting one
    slow chunk straggle the whole pool.
    """
    return max(1, n_tasks // (workers * 4) or 1)


@dataclass
class SweepOutcome:
    """An executed sweep: the spec summary plus ordered results."""

    spec: dict[str, Any]
    results: list[RunResult] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The sweep's name."""
        return self.spec["name"]

    def values(self) -> list[Any]:
        """Raw task return values, in task order."""
        return [r.value for r in self.results]

    def by_cell(self) -> list[tuple[dict[str, Any], list[RunResult]]]:
        """Results grouped per grid cell, preserving expansion order."""
        groups: dict[tuple, tuple[dict[str, Any], list[RunResult]]] = {}
        for result in self.results:
            key = tuple(sorted(result.params.items(), key=lambda kv: kv[0]))
            groups.setdefault(key, (result.params, []))[1].append(result)
        return list(groups.values())

    def cell(self, **params: Any) -> list[RunResult]:
        """Results of the single cell matching ``params`` (subset match)."""
        return [
            r
            for r in self.results
            if all(r.params.get(k) == v for k, v in params.items())
        ]


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    chunksize: int | None = None,
    store: "ResultStore | None" = None,
) -> SweepOutcome:
    """Execute a sweep and (optionally) persist its artifact.

    Args:
        spec: the sweep to run.
        workers: process count; ``1`` (or anything lower) runs serially
            in this process, which is also the automatic fallback when
            a pool cannot be created (restricted environments, missing
            ``fork``/``spawn`` support).
        chunksize: tasks per worker batch; default
            :func:`default_chunksize`.
        store: when given, the outcome is saved under ``spec.name``
            before returning.

    Returns:
        A :class:`SweepOutcome` whose ``results`` are in task order —
        identical content for every ``workers`` value.
    """
    tasks = spec.tasks()
    if workers > 1 and len(tasks) > 1:
        results = _run_pool(tasks, workers, chunksize)
    else:
        results = [task.execute() for task in tasks]
    outcome = SweepOutcome(spec=spec.summary(), results=results)
    if store is not None:
        store.save(outcome)
    return outcome


def _run_pool(
    tasks: list[RunTask],
    workers: int,
    chunksize: int | None,
) -> list[RunResult]:
    """Map tasks over a process pool; fall back to serial on failure.

    ``Pool.map`` preserves input order, so no re-sorting is needed; the
    fallback covers sandboxes where process creation is forbidden.
    """
    try:
        import multiprocessing

        ctx = multiprocessing.get_context()
        pool = ctx.Pool(processes=workers)
    except (ImportError, OSError, PermissionError):
        # only pool *creation* falls back; an error raised by a task
        # must surface, not silently re-run the whole sweep serially
        return [task.execute() for task in tasks]
    with pool:
        return pool.map(
            _execute_task,
            tasks,
            chunksize or default_chunksize(len(tasks), workers),
        )


def map_runs(
    task: Callable[..., Any],
    seeds: Iterable[int],
    workers: int = 1,
    **params: Any,
) -> list[Any]:
    """Convenience: run ``task(seed=s, **params)`` for every seed.

    A one-cell sweep without declaring a spec — handy for quick studies
    and for porting existing ``for i in range(runs)`` loops.
    """
    seeds = list(seeds)
    tasks = [
        RunTask(index=i, sweep="map-runs", task=task, params=dict(params), run=i, seed=s)
        for i, s in enumerate(seeds)
    ]
    if workers > 1 and len(tasks) > 1:
        return [r.value for r in _run_pool(tasks, workers, None)]
    return [t.execute().value for t in tasks]
