"""Pluggable result sinks: where a sweep's rows go as they complete.

The default sweep path accumulates every :class:`~repro.engine.spec.RunResult`
in RAM and hands them back inside the outcome — fine at 10^3 cells,
fatal at 10^6.  A :class:`ResultSink` decouples *producing* rows from
*keeping* them: the executor pushes each result into the sink the
moment it arrives (always in task-index order), and the sink decides
whether to keep it (:class:`MemorySink`), stream it to disk
(:class:`JsonlSink`), fold it into aggregates (:class:`ReducerSink`,
:class:`CellFoldSink`), print it (:class:`PrintingSink`), fan it out
(:class:`TeeSink`) or drop it (:class:`NoopSink`).

Every sink tracks two backend-independent invariants as it goes:
``rows_emitted`` and an order-independent row ``digest`` (see
:mod:`repro.engine.aggregate`).  Because both the eager path and every
sink encode rows through :meth:`ResultStore.row_payload`, the digest of
a sweep is byte-identical across `MemorySink`/`JsonlSink`/reducers and
across every worker count — the property the streaming bench case and
the engine property tests pin.

Lifecycle: ``open(spec_summary)`` → ``emit(result)`` per row →
``close()``; the executor calls ``abort()`` instead of ``close()`` when
a task raises, so a partially-written :class:`JsonlSink` file has no
``end`` record and its truncation tripwire fires on load.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, TextIO

from repro.common.errors import StoreError
from repro.engine.aggregate import RowReducer, merge_digests, row_digest
from repro.engine.spec import RunResult
from repro.engine.store import ResultStore, canonical_line, jsonable

#: streamed-artifact schema version; bump on any layout change.
STREAM_SCHEMA = 1

#: the header ``kind`` tag distinguishing row streams from traces.
STREAM_KIND = "repro-sweep-rows"


class ResultSink:
    """Base sink: bookkeeping only (row count + order-independent digest).

    Subclasses extend :meth:`emit` (always calling ``super().emit`` or
    maintaining the counters themselves) and may override the lifecycle
    hooks, which default to no-ops.  ``emit`` receives the live result
    plus, optionally, its precomputed canonical row — a
    :class:`TeeSink` encodes each row once and shares it with every
    branch instead of re-encoding per child.
    """

    #: does this sink retain full rows for the outcome's ``results``?
    keeps_rows = False

    def __init__(self) -> None:
        self.rows_emitted = 0
        self.digest = 0
        self.spec: dict[str, Any] | None = None
        self.quarantined: list[int] = []

    def open(self, spec_summary: dict[str, Any]) -> None:
        """Called once before the first row."""
        self.spec = spec_summary

    def note_quarantined(self, index: int) -> None:
        """Record a poison cell the resilient executor quarantined
        instead of emitting — no row exists for it, but the gap must be
        attributable, so sinks carry the indices into their summaries
        (and :class:`JsonlSink` into the artifact's ``end`` record)."""
        self.quarantined.append(index)

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        """Receive one result, in task-index order."""
        if row is None:
            row = ResultStore.row_payload(result)
        self.rows_emitted += 1
        self.digest = merge_digests(self.digest, row_digest(row))

    def close(self) -> None:
        """Called once after the last row (success path only)."""

    def abort(self) -> None:
        """Called instead of :meth:`close` when the sweep fails."""

    def summary(self) -> dict[str, Any]:
        """The sink's JSON-able aggregate, seated in the outcome.

        The ``quarantined`` key appears only when cells were actually
        quarantined, so fault-free summaries keep their historical shape
        byte-for-byte.
        """
        out: dict[str, Any] = {"rows": self.rows_emitted, "digest": self.digest}
        if self.quarantined:
            out["quarantined"] = sorted(self.quarantined)
        return out


class NoopSink(ResultSink):
    """Count and digest rows, keep nothing — the pure-throughput sink."""


class MemorySink(ResultSink):
    """Keep every row in RAM — the classic (and default) behaviour."""

    keeps_rows = True

    def __init__(self) -> None:
        super().__init__()
        self.results: list[RunResult] = []

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        super().emit(result, row)
        self.results.append(result)


class PrintingSink(ResultSink):
    """Write one canonical JSON line per row to a text stream.

    Progress/debug sink for long sweeps — pipe it to a pager or a log
    file.  Lines are the same canonical row encoding every other
    backend digests, so ad-hoc downstream tooling sees stable bytes.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        super().__init__()
        import sys

        self.stream = stream if stream is not None else sys.stdout

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        if row is None:
            row = ResultStore.row_payload(result)
        super().emit(result, row)
        self.stream.write(canonical_line(row) + "\n")


class JsonlSink(ResultSink):
    """Stream rows into a schema-versioned gzip'd JSONL artifact.

    The on-disk dialect mirrors ``replay/artifact.py``: one canonical
    JSON object per line (``sort_keys`` + compact separators), a typed
    ``header`` first line carrying schema/kind/sweep/spec, one ``row``
    line per result, and a final ``end`` record with the line count as
    a truncation tripwire.  Compression pins ``mtime=0`` and an empty
    embedded filename, so two runs of the same sweep produce identical
    *bytes* regardless of worker count, wall clock, or output path
    — incremental writes and a single batch write are byte-identical
    too, because zlib's output is a pure function of the byte stream
    when nothing flushes mid-stream.

    ``compresslevel`` defaults to 6 (zlib default): at 10^5+ rows/sec
    the level-9 sliver of extra compression costs more wall time than
    the rows themselves.
    """

    def __init__(self, path: str | Path, compresslevel: int = 6) -> None:
        super().__init__()
        self.path = Path(path)
        self.compresslevel = compresslevel
        self._file: Any = None
        self._gz: Any = None
        self._lines = 0

    def open(self, spec_summary: dict[str, Any]) -> None:
        super().open(spec_summary)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "wb")
        # filename="" suppresses the FNAME header (GzipFile would lift
        # the path off the fileobj); mtime=0 pins the timestamp — the
        # artifact's bytes then depend only on its logical content.
        self._gz = gzip.GzipFile(
            fileobj=self._file,
            mode="wb",
            compresslevel=self.compresslevel,
            mtime=0,
            filename="",
        )
        self._write_line(
            {
                "type": "header",
                "schema": STREAM_SCHEMA,
                "kind": STREAM_KIND,
                "sweep": spec_summary.get("name"),
                "spec": jsonable(spec_summary),
            }
        )

    def _write_line(self, record: dict[str, Any]) -> None:
        self._gz.write((canonical_line(record) + "\n").encode("utf-8"))
        self._lines += 1

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        if row is None:
            row = ResultStore.row_payload(result)
        super().emit(result, row)
        self._write_line({"type": "row", **row})

    def close(self) -> None:
        if self._gz is None:
            return
        end: dict[str, Any] = {"type": "end", "records": self._lines}
        if self.quarantined:
            # Poison cells leave index gaps in the stream; the end
            # record owns up to them so a reader can distinguish "these
            # cells failed" from "this artifact is damaged".  Absent on
            # fault-free runs, keeping historical artifacts byte-stable.
            end["quarantined"] = sorted(self.quarantined)
        self._write_line(end)
        self._gz.close()
        self._file.close()
        self._gz = self._file = None

    def abort(self) -> None:
        """Tear down WITHOUT the end record: the file stays detectably
        truncated, so a later load fails loudly instead of analysing a
        partial sweep."""
        if self._gz is None:
            return
        self._gz.close()
        self._file.close()
        self._gz = self._file = None


def iter_stream_rows(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream the row records of a :class:`JsonlSink` artifact.

    Validates the header before the first yield and the ``end`` record
    after the last, holding only one line in memory at a time.

    Raises:
        StoreError: unreadable/corrupt file, foreign or
            schema-mismatched header, or truncation (missing/short
            ``end`` record).
    """
    try:
        with gzip.open(path, "rt", encoding="utf-8") as f:
            # Offsets are into the *decompressed* stream — the address a
            # reader can actually seek to after gunzipping, and the only
            # stable coordinate (compressed offsets shift with level).
            offset = 0
            count = 0
            header: dict[str, Any] | None = None
            for line in f:
                line_offset = offset
                offset += len(line.encode("utf-8"))
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StoreError(
                        f"row stream {path} has a corrupt record at byte offset "
                        f"{line_offset} (decompressed): {exc}"
                    ) from None
                count += 1
                if header is None:
                    header = record
                    if header.get("type") != "header" or header.get("kind") != STREAM_KIND:
                        raise StoreError(f"{path} is not a sweep row stream (bad header)")
                    if header.get("schema") != STREAM_SCHEMA:
                        raise StoreError(
                            f"row stream {path} has schema {header.get('schema')!r}, "
                            f"this library reads schema {STREAM_SCHEMA}; regenerate it"
                        )
                    continue
                if record.get("type") == "end":
                    if record.get("records") != count - 1:
                        raise StoreError(
                            f"row stream {path} is inconsistent: end record at byte "
                            f"offset {line_offset} (decompressed) claims "
                            f"{record.get('records')} lines, found {count - 1}"
                        )
                    return
                if record.get("type") != "row":
                    raise StoreError(
                        f"row stream {path} has unknown record type "
                        f"{record.get('type')!r} at byte offset {line_offset} "
                        f"(decompressed)"
                    )
                yield {k: v for k, v in record.items() if k != "type"}
            if header is None:
                raise StoreError(f"empty row-stream artifact {path}")
    except (OSError, EOFError, UnicodeDecodeError) as exc:
        raise StoreError(f"cannot read row-stream artifact {path}: {exc}") from None
    raise StoreError(
        f"row stream {path} is truncated (no end record; clean prefix ends at "
        f"byte offset {offset} decompressed)"
    )


def load_stream(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """A whole streamed artifact: ``(spec_summary, rows)``.

    Convenience for small streams and tests; big streams should use
    :func:`iter_stream_rows` and never materialize the list.

    Raises:
        StoreError: everything :func:`iter_stream_rows` raises, plus
            unreadable/empty headers — no raw ``OSError`` leaks out.
    """
    try:
        with gzip.open(path, "rt", encoding="utf-8") as f:
            first = None
            for line in f:
                if line.strip():
                    first = json.loads(line)
                    break
    except (OSError, EOFError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"cannot read row-stream artifact {path}: {exc}") from None
    if first is None:
        raise StoreError(f"empty row-stream artifact {path}")
    spec = first.get("spec") if isinstance(first, dict) else None
    rows = list(iter_stream_rows(path))
    return spec or {}, rows


def scan_partial_stream(
    path: str | Path, expect_spec: Mapping[str, Any] | None = None
) -> dict[int, dict[str, Any]]:
    """Salvage the committed rows of a *partial* :class:`JsonlSink` artifact.

    The read side of the resume protocol: returns ``{task_index: row}``
    for the longest clean prefix of row records, deduplicated by task
    index (first occurrence wins).  Damage *after* the clean prefix —
    a truncated gzip stream, a record cut mid-line by a crash — is
    expected and silently ends the scan; damage *before* any row could
    be trusted is not:

    Raises:
        StoreError: missing-or-broken header, foreign ``kind``,
            mismatched ``schema``, a header ``spec`` differing from
            ``expect_spec`` (resuming someone else's sweep would
            silently mix incompatible rows), or a *complete* artifact
            (an ``end`` record means there is nothing to resume).

    A nonexistent ``path`` is a fresh start, not an error — crash-loop
    automation can pass ``resume_from=`` unconditionally.
    """
    path = Path(path)
    if not path.exists():
        return {}
    committed: dict[int, dict[str, Any]] = {}
    try:
        f = gzip.open(path, "rt", encoding="utf-8")
    except OSError as exc:
        raise StoreError(f"cannot read partial artifact {path}: {exc}") from None
    with f:
        try:
            first = None
            for line in f:
                if line.strip():
                    first = json.loads(line)
                    break
        except (OSError, EOFError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"partial artifact {path} has no intact header: {exc}"
            ) from None
        if first is None:
            raise StoreError(f"partial artifact {path} has no intact header (empty)")
        if first.get("type") != "header" or first.get("kind") != STREAM_KIND:
            raise StoreError(
                f"{path} is not a sweep row stream (bad header); refusing to resume"
            )
        if first.get("schema") != STREAM_SCHEMA:
            raise StoreError(
                f"partial artifact {path} has schema {first.get('schema')!r}, "
                f"this library resumes schema {STREAM_SCHEMA}"
            )
        if expect_spec is not None and first.get("spec") != jsonable(expect_spec):
            raise StoreError(
                f"partial artifact {path} was written by a different sweep spec; "
                f"refusing to resume into it"
            )
        try:
            for line in f:
                if not line.strip():
                    continue
                if not line.endswith("\n"):
                    break  # the crash cut this record mid-line
                record = json.loads(line)
                if record.get("type") == "end":
                    raise StoreError(
                        f"artifact {path} is complete (end record present); "
                        f"there is nothing to resume"
                    )
                if record.get("type") != "row":
                    break  # foreign record — trust ends at the last clean row
                index = record.get("index")
                if not isinstance(index, int):
                    break
                committed.setdefault(index, {k: v for k, v in record.items() if k != "type"})
        except (OSError, EOFError, UnicodeDecodeError, json.JSONDecodeError):
            pass  # truncated gzip stream: the clean prefix ends here
    return committed


class FoldSink(ResultSink):
    """Apply one callable per row — the quick-lambda sink.

    The callable runs in the parent process, so closures are fine (it
    never pickles); digests/row counts track alongside.
    """

    def __init__(self, fold: Callable[[RunResult], None]) -> None:
        super().__init__()
        self._fold = fold

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        super().emit(result, row)
        self._fold(result)


class ReducerSink(ResultSink):
    """Fold rows into a :class:`~repro.engine.aggregate.RowReducer`.

    The streaming twin of "run the sweep, then aggregate the rows": the
    outcome's ``aggregate`` carries the reducer summary and the raw
    rows are never retained.
    """

    def __init__(self, reducer: RowReducer) -> None:
        super().__init__()
        self.reducer = reducer

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        self.reducer.fold(result, row=row)
        self.rows_emitted = self.reducer.rows
        self.digest = self.reducer.digest

    def summary(self) -> dict[str, Any]:
        out = self.reducer.summary()
        if self.quarantined:
            out = {**out, "quarantined": sorted(self.quarantined)}
        return out


class CellFoldSink(ResultSink):
    """Streaming per-cell fold — ``by_cell()`` without holding rows.

    ``fold(state, result) -> state`` runs once per row against its
    cell's accumulated state (``None`` on the cell's first row); cells
    appear in first-emission order, which for an in-order executor is
    exactly the spec's expansion order — the same order ``by_cell()``
    yields.  Row digests are skipped: driver folds run on the hot
    default path too, where paying a canonical-JSON encode per row just
    for bookkeeping would tax every study.
    """

    def __init__(self, fold: Callable[[Any, RunResult], Any]) -> None:
        super().__init__()
        self._fold = fold
        self._groups: dict[tuple, tuple[dict[str, Any], Any]] = {}
        self._names: tuple[str, ...] | None = None

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        self.rows_emitted += 1
        params = result.params
        if self._names is None or len(params) != len(self._names):
            self._names = tuple(sorted(params))
        try:
            key = tuple(params[name] for name in self._names)
        except (KeyError, TypeError):  # divergent name set / unhashable value
            key = tuple(sorted((k, repr(v)) for k, v in params.items()))
        seat = self._groups.get(key)
        if seat is None:
            self._groups[key] = (params, self._fold(None, result))
        else:
            self._groups[key] = (seat[0], self._fold(seat[1], result))

    def cells(self) -> list[tuple[dict[str, Any], Any]]:
        """``(cell_params, folded_state)`` pairs in first-seen order."""
        return list(self._groups.values())


class TeeSink(ResultSink):
    """Fan each row out to several child sinks.

    The canonical row is encoded once here and shared with every child,
    so ``TeeSink(JsonlSink(...), ReducerSink(...))`` pays one encode
    per row, not one per branch.  The tee's own digest mirrors the
    first child's (all children agree by construction).
    """

    def __init__(self, *sinks: ResultSink) -> None:
        super().__init__()
        if not sinks:
            raise ValueError("TeeSink needs at least one child sink")
        self.sinks = tuple(sinks)

    @property
    def keeps_rows(self) -> bool:  # type: ignore[override]
        return any(sink.keeps_rows for sink in self.sinks)

    @property
    def results(self) -> list[RunResult]:
        """The rows of the first row-keeping child."""
        for sink in self.sinks:
            if sink.keeps_rows:
                return sink.results
        return []

    def open(self, spec_summary: dict[str, Any]) -> None:
        super().open(spec_summary)
        for sink in self.sinks:
            sink.open(spec_summary)

    def emit(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        if row is None:
            row = ResultStore.row_payload(result)
        self.rows_emitted += 1
        for sink in self.sinks:
            sink.emit(result, row)
        self.digest = self.sinks[0].digest

    def note_quarantined(self, index: int) -> None:
        super().note_quarantined(index)
        for sink in self.sinks:
            sink.note_quarantined(index)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def abort(self) -> None:
        for sink in self.sinks:
            sink.abort()

    def summary(self) -> dict[str, Any]:
        return self.sinks[0].summary()
