"""Declarative sweep specifications and per-run tasks.

A :class:`SweepSpec` names a task function, a parameter grid and a run
count; expanding it yields one :class:`RunTask` per (cell, run) pair.
Each task carries its own seed, derived deterministically from the spec
— never from execution order — so a sweep produces bit-identical
results whether the tasks run serially, fanned out over a process pool,
or in any interleaving in between.

Task functions must be module-level callables (so they pickle by
reference into worker processes) and must accept their seed as a
``seed=`` keyword argument alongside the cell parameters::

    def trial(seed: int, protocol: str) -> float: ...

    spec = SweepSpec("demo", trial, grid={"protocol": ["2pc", "qtp1"]}, runs=20)
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.engine.shared import SharedPayload

#: seed strategies a spec may choose from.
SEED_MODES = ("derived", "offset")


def derive_seed(base_seed: int, sweep: str, params: Mapping[str, Any], run: int) -> int:
    """A 63-bit seed from (base_seed, sweep name, cell params, run index).

    SHA-256 over a canonical JSON encoding — ``hash()`` is salted per
    process and would break cross-process reproducibility.  Distinct
    cells get statistically independent streams even for adjacent base
    seeds.
    """
    key = json.dumps(
        [base_seed, sweep, sorted(params.items(), key=lambda kv: kv[0]), run],
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class RunTask:
    """One unit of sweep work: a cell's parameters plus a run seed.

    ``index`` is the task's position in the spec's expansion order;
    executors must report results in index order so output never
    depends on completion order.  It is also the coordinate the
    resilience layer keys on: retries, chunk re-dispatch after a worker
    crash, and resume dedup all identify work by task index.
    """

    index: int
    sweep: str
    task: Callable[..., Any]
    params: dict[str, Any]
    run: int
    seed: int

    def execute(self) -> "RunResult":
        """Run the task function; bind the seed and cell by keyword.

        :class:`~repro.engine.shared.SharedPayload` parameters are
        resolved into the *call* only — the result keeps the handle, so
        a pool worker ships the cheap handle back instead of re-pickling
        the payload into every row.
        """
        params = self.params
        if any(isinstance(v, SharedPayload) for v in params.values()):
            call_params = {
                k: (v.get() if isinstance(v, SharedPayload) else v)
                for k, v in params.items()
            }
        else:
            call_params = params
        if getattr(self.task, "needs_task_index", False):
            # Index-aware tasks (the chaos harness keys fault schedules
            # by task index) get it as an extra keyword; it never enters
            # params, the seed derivation, or the result row.
            call_params = dict(call_params)
            call_params["task_index"] = self.index
        value = self.task(seed=self.seed, **call_params)
        return RunResult(
            index=self.index,
            params=self.params,
            run=self.run,
            seed=self.seed,
            value=value,
        )


@dataclass(frozen=True)
class RunResult:
    """The outcome of one :class:`RunTask`."""

    index: int
    params: dict[str, Any]
    run: int
    seed: int
    value: Any


@dataclass(frozen=True)
class SweepSpec:
    """Protocol × parameter grid × run count, with deterministic seeds.

    Args:
        name: sweep identifier (also the artifact name in a store).
        task: module-level callable ``task(seed=..., **cell_params)``.
        grid: parameter name -> candidate values; cells are the
            cartesian product, expanded with the *first* grid key
            varying slowest (insertion order).
        runs: randomized runs per cell.
        base_seed: root of every per-run seed.
        seeding: ``"derived"`` (default) hashes (base_seed, name, cell,
            run) so every cell draws an independent stream;
            ``"offset"`` uses ``base_seed + run`` so every cell replays
            the *same* scenario sequence — the paired-comparison design
            the paper's studies use (the seed drives the scenario, the
            cell only drives the response).
        fixed: extra keyword arguments passed to every cell unchanged
            (not part of the grid, not part of the seed derivation).
    """

    name: str
    task: Callable[..., Any]
    grid: Mapping[str, Sequence[Any]]
    runs: int = 1
    base_seed: int = 0
    seeding: str = "derived"
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.seeding not in SEED_MODES:
            raise ValueError(f"seeding must be one of {SEED_MODES}, got {self.seeding!r}")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters both in grid and fixed: {sorted(overlap)}")

    def iter_cells(self) -> Iterator[dict[str, Any]]:
        """Grid cells in deterministic expansion order, generated lazily.

        The streaming executor paths walk this so a 10^6-cell grid
        never materializes as a list; :meth:`cells` is the eager form.
        """
        keys = list(self.grid)
        if not keys:
            yield {}
            return
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def cells(self) -> list[dict[str, Any]]:
        """All grid cells, in deterministic expansion order."""
        return list(self.iter_cells())

    def seed_for(self, params: Mapping[str, Any], run: int) -> int:
        """The seed of run ``run`` in cell ``params``."""
        if self.seeding == "offset":
            return self.base_seed + run
        return derive_seed(self.base_seed, self.name, params, run)

    def iter_tasks(self) -> Iterator[RunTask]:
        """Expand lazily into tasks (cells × runs), in index order.

        Identical content to :meth:`tasks` — the streaming executor
        paths consume this one task at a time so sweep memory stays
        flat in cell count.
        """
        index = 0
        for cell in self.iter_cells():
            for run in range(self.runs):
                yield RunTask(
                    index=index,
                    sweep=self.name,
                    task=self.task,
                    params={**cell, **self.fixed},
                    run=run,
                    seed=self.seed_for(cell, run),
                )
                index += 1

    def tasks(self) -> list[RunTask]:
        """Expand into the full task list (cells × runs)."""
        return list(self.iter_tasks())

    @property
    def n_tasks(self) -> int:
        """Total task count without expanding."""
        n_cells = 1
        for values in self.grid.values():
            n_cells *= len(values)
        return n_cells * self.runs

    def summary(self) -> dict[str, Any]:
        """JSON-safe description of the spec (for artifact headers)."""
        return {
            "name": self.name,
            "task": f"{self.task.__module__}.{self.task.__qualname__}",
            "grid": {k: list(v) for k, v in self.grid.items()},
            "fixed": {
                k: (v.describe() if isinstance(v, SharedPayload) else v)
                for k, v in self.fixed.items()
            },
            "runs": self.runs,
            "base_seed": self.base_seed,
            "seeding": self.seeding,
        }
