"""Parallel sweep engine — declarative, deterministic, fan-out-safe.

The paper's headline experiments (E11 availability sweep, E13
re-enterability storm, E14 randomized model-check) are statistical:
they sharpen with more randomized runs.  This package turns their
ad-hoc ``for`` loops into one engine:

* :class:`~repro.engine.spec.SweepSpec` — a declarative sweep: task
  function × parameter grid × run count.
* :class:`~repro.engine.spec.RunTask` — one (cell, run) unit of work
  carrying a seed derived deterministically from the spec, never from
  execution order.
* :func:`~repro.engine.executor.run_sweep` — a ``multiprocessing``
  executor with chunked batching and a serial fallback; results come
  back in task order, so output is **bit-identical at every worker
  count**.
* :class:`~repro.engine.executor.SweepRunner` — the persistent-pool
  executor: one warm worker pool (pre-imported simulator stack,
  :func:`~repro.engine.executor.worker_cache` for shared catalogs)
  reused across any number of sweeps, so campaigns of many sweeps
  amortize process creation.  ``run_sweep(..., persistent_pool=True)``
  routes through a process-wide shared runner.
* :class:`~repro.engine.store.ResultStore` — schema-versioned JSON
  artifacts (canonical encoding, byte-stable) plus aggregation helpers
  that work on live results and loaded artifacts alike.

Quickstart — a parallel availability sweep in three lines::

    from repro.engine import SweepSpec, run_sweep
    from repro.experiments.sweeps import availability_run

    outcome = run_sweep(
        SweepSpec("e11", availability_run,
                  grid={"protocol": ["skq", "qtp1"]}, runs=50, seeding="offset"),
        workers=4,
    )

Study-level drivers (``availability_sweep``, ``modelcheck``,
``workload_study``, …) all accept a ``workers=`` argument and route
through this engine; ``seeding="offset"`` replays the same scenario
sequence in every cell (the paired-comparison design the paper's
studies use), while the default ``"derived"`` hashing gives every cell
an independent stream.

Extreme-scale sweeps (10^5–10^6 cells) add two opt-in layers on top
(see ``engine/README.md``):

* **streaming result sinks** — ``run_sweep(..., sink=JsonlSink(path))``
  pushes rows into a :class:`~repro.engine.sink.ResultSink` as they
  complete instead of accumulating them, and
  ``run_sweep(..., reduce=RowReducer(...))`` folds rows into exact
  streaming aggregates per worker chunk; both keep sweep memory flat
  in cell count while staying byte-identical across backends and
  worker counts.
* **zero-copy shared payloads** —
  :class:`~repro.engine.shared.SharedPayload` handles let every task of
  a huge sweep read one published catalog/trace instead of re-pickling
  it per task.
"""

from repro.engine.aggregate import (
    Accumulator,
    CountAcc,
    DigestMergeAcc,
    MeanAcc,
    QuantileDigest,
    RowReducer,
    merge_digests,
    row_digest,
)
from repro.engine.executor import (
    WORKER_CACHE_LIMIT,
    SweepOutcome,
    SweepRunner,
    default_chunksize,
    default_workers,
    map_runs,
    run_sweep,
    shared_runner,
    shutdown_shared_runners,
    worker_cache,
)
from repro.engine.resilience import (
    ChaosPlan,
    ChaosSink,
    ChaosTask,
    FailureManifest,
    InjectedFault,
    InjectedSinkError,
    RetryPolicy,
    TaskFailure,
    WorkerCrashError,
    resolve_policy,
    run_resilient,
)
from repro.engine.shared import SharedPayload
from repro.engine.sink import (
    STREAM_KIND,
    STREAM_SCHEMA,
    CellFoldSink,
    FoldSink,
    JsonlSink,
    MemorySink,
    NoopSink,
    PrintingSink,
    ReducerSink,
    ResultSink,
    TeeSink,
    iter_stream_rows,
    load_stream,
    scan_partial_stream,
)
from repro.engine.spec import RunResult, RunTask, SweepSpec, derive_seed
from repro.engine.store import (
    SCHEMA_VERSION,
    ResultStore,
    canonical_line,
    count_where,
    fraction_of,
    group_by,
    jsonable,
    mean_of,
    values_of,
)

__all__ = [
    "SCHEMA_VERSION",
    "STREAM_KIND",
    "STREAM_SCHEMA",
    "WORKER_CACHE_LIMIT",
    "Accumulator",
    "CellFoldSink",
    "ChaosPlan",
    "ChaosSink",
    "ChaosTask",
    "CountAcc",
    "DigestMergeAcc",
    "FailureManifest",
    "FoldSink",
    "InjectedFault",
    "InjectedSinkError",
    "JsonlSink",
    "MeanAcc",
    "MemorySink",
    "NoopSink",
    "PrintingSink",
    "QuantileDigest",
    "ReducerSink",
    "ResultSink",
    "ResultStore",
    "RetryPolicy",
    "RowReducer",
    "RunResult",
    "RunTask",
    "SharedPayload",
    "SweepOutcome",
    "SweepRunner",
    "SweepSpec",
    "TaskFailure",
    "TeeSink",
    "WorkerCrashError",
    "canonical_line",
    "count_where",
    "default_chunksize",
    "default_workers",
    "derive_seed",
    "fraction_of",
    "group_by",
    "iter_stream_rows",
    "jsonable",
    "load_stream",
    "map_runs",
    "mean_of",
    "merge_digests",
    "resolve_policy",
    "row_digest",
    "run_resilient",
    "run_sweep",
    "scan_partial_stream",
    "shared_runner",
    "shutdown_shared_runners",
    "values_of",
    "worker_cache",
]
