"""Zero-copy shared payloads for large read-only task parameters.

A huge sweep whose every task needs the same big object — a
50k-item replica catalog, a recorded trace's line list — pays for that
object *per task* when it rides ``SweepSpec.fixed``: the pool pickles
it into every chunk.  A :class:`SharedPayload` is a tiny handle that
travels instead; workers resolve it back to the value through the
cheapest channel available:

1. **Fork inheritance** (true zero-copy): the publishing process keeps
   the value in a module-level registry; fork-started pool workers
   inherit the registry copy-on-write and resolve the handle with a
   dict lookup — the value never crosses a pipe at all.
2. **Shared memory** (pickle-once): under a spawn start method — or in
   any process that did not inherit the registry — the handle carries
   the name of a ``multiprocessing.shared_memory`` segment holding one
   pickled copy of the value, written lazily the first time the handle
   itself is pickled.  Every worker attaches and unpickles from the
   same segment instead of receiving a private copy per chunk.
3. **Inline bytes** (fallback): where shared memory is unavailable
   (locked-down sandboxes), the pickled value rides inside the handle —
   still once per *chunk* rather than once per task, and the sweep
   keeps working.

Handles resolve to the **same object** within a process (per-process
attach cache), compare and hash by token, and encode into artifact
headers as ``{"shared": label}`` — deliberately content-free, because
pickled bytes are not stable across Python versions and artifact
headers must stay byte-stable enough to commit.

Payload values must be treated as **read-only** everywhere: with fork
inheritance a worker mutation stays invisible locally, but in-process
(serial) execution would mutate the published original.  Publish only
what no task mutates — the same rule :func:`~repro.engine.worker_cache`
already imposes.
"""

from __future__ import annotations

import os
import pickle
from typing import Any

from repro.common.errors import StoreError

#: published values, keyed by token — the publisher's (and, after a
#: fork, every inheriting worker's) zero-copy channel.
_PUBLISHED: dict[str, Any] = {}

#: values this process resolved from a remote channel, so repeated
#: ``get()`` calls return the same object.
_ATTACHED: dict[str, Any] = {}

#: tokens issued by this process (monotonic suffix keeps them unique
#: even after a release frees a registry slot).
_ISSUED = 0

#: shared-memory segments this process created, unlinked at exit so a
#: sweep that never calls release() cannot leak /dev/shm space.
_OWNED_SEGMENTS: dict[str, Any] = {}


def _cleanup_owned_segments() -> None:
    for segment in _OWNED_SEGMENTS.values():
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    _OWNED_SEGMENTS.clear()


class SharedPayload:
    """A pickle-cheap handle to one published read-only value.

    Create with :meth:`publish`; pass anywhere a task parameter goes
    (``SweepSpec.fixed`` is the usual seat).  :class:`~repro.engine.spec.RunTask`
    resolves handles just before calling the task function, so the task
    itself receives the plain value and never sees the handle.
    """

    __slots__ = ("token", "label", "_shm_name", "_size", "_inline")

    def __init__(
        self,
        token: str,
        label: str,
        shm_name: str | None = None,
        size: int = 0,
        inline: bytes | None = None,
    ) -> None:
        self.token = token
        self.label = label
        self._shm_name = shm_name
        self._size = size
        self._inline = inline

    @classmethod
    def publish(cls, value: Any, label: str = "shared-payload") -> "SharedPayload":
        """Register ``value`` in this process and return its handle."""
        global _ISSUED
        _ISSUED += 1
        token = f"{label}:{os.getpid()}:{_ISSUED}"
        _PUBLISHED[token] = value
        return cls(token=token, label=label)

    def get(self) -> Any:
        """The payload value, resolved through the cheapest channel."""
        try:
            return _PUBLISHED[self.token]
        except KeyError:
            pass
        try:
            return _ATTACHED[self.token]
        except KeyError:
            pass
        value = _ATTACHED[self.token] = self._load_remote()
        return value

    def _load_remote(self) -> Any:
        if self._shm_name is not None:
            from multiprocessing import shared_memory

            try:
                segment = shared_memory.SharedMemory(name=self._shm_name)
            except OSError as exc:
                raise StoreError(
                    f"shared payload {self.label!r} lost its memory segment "
                    f"{self._shm_name!r} (publisher released it or exited): {exc}"
                ) from exc
            try:
                return pickle.loads(bytes(segment.buf[: self._size]))
            finally:
                segment.close()
        if self._inline is not None:
            return pickle.loads(self._inline)
        raise StoreError(
            f"shared payload {self.label!r} is unresolvable in this process: "
            "it was never materialized for transport (resolve handles only "
            "in the publishing process tree or after pickling them)"
        )

    def _materialize(self) -> None:
        """Back the handle with a transport channel before it travels.

        Called on first pickle.  Prefers one shared-memory segment (all
        workers attach to the same bytes); falls back to carrying the
        pickled value inline when shared memory cannot be created.
        """
        if self._shm_name is not None or self._inline is not None:
            return
        value = _PUBLISHED.get(self.token)
        if value is None:
            # a re-pickled foreign handle: it already carried transport
            # state when it arrived, so there is nothing to build here.
            return
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
            segment.buf[: len(data)] = data
        except (ImportError, OSError, PermissionError):
            self._inline = data
            return
        if not _OWNED_SEGMENTS:
            import atexit

            atexit.register(_cleanup_owned_segments)
        _OWNED_SEGMENTS[self.token] = segment
        self._shm_name = segment.name
        self._size = len(data)

    def release(self) -> None:
        """Drop the published value and any shared-memory segment.

        Safe to call more than once; handles already shipped to live
        workers fall back to their inline bytes or fail loudly with
        :class:`StoreError` on next resolve.
        """
        _PUBLISHED.pop(self.token, None)
        _ATTACHED.pop(self.token, None)
        segment = _OWNED_SEGMENTS.pop(self.token, None)
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._shm_name = None
        self._size = 0

    def describe(self) -> dict[str, str]:
        """The handle's artifact-header form: label only, content-free."""
        return {"shared": self.label}

    def __getstate__(self) -> dict[str, Any]:
        self._materialize()
        return {
            "token": self.token,
            "label": self.label,
            "shm_name": self._shm_name,
            "size": self._size,
            # never ship inline bytes alongside a working segment
            "inline": self._inline if self._shm_name is None else None,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.token = state["token"]
        self.label = state["label"]
        self._shm_name = state["shm_name"]
        self._size = state["size"]
        self._inline = state["inline"]

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, SharedPayload) and other.token == self.token

    def __hash__(self) -> int:
        return hash(self.token)

    def __repr__(self) -> str:
        channel = (
            "registry"
            if self.token in _PUBLISHED
            else "shm"
            if self._shm_name is not None
            else "inline"
            if self._inline is not None
            else "unmaterialized"
        )
        return f"SharedPayload({self.label!r}, token={self.token!r}, via={channel})"


def published_count() -> int:
    """How many payloads this process currently publishes (tests)."""
    return len(_PUBLISHED)
