"""Fault-tolerant sweep execution: retry, quarantine, crash recovery.

The repo simulates commit protocols under injected faults, but until
this layer the harness *running* those simulations was itself fragile:
one raising task aborted a whole 10^5-cell sweep, a dying worker
process hung the pool, and a truncated artifact could only be thrown
away.  This module makes the sweep engine crash-tolerant the same way
the paper's protocols are — deterministically, so every recovery path
converges to the bytes an uninterrupted run would have produced:

* :class:`RetryPolicy` — capped re-execution of failed tasks with
  bounded, deterministic backoff.  Tasks re-run *from their pinned
  per-cell seed* (the seed travels with the task), so a retry that
  succeeds is byte-identical to a first-try success.
* **Quarantine** — ``RetryPolicy(quarantine=True)`` records poison
  cells as :class:`TaskFailure` entries in an explicit
  :class:`FailureManifest` and keeps sweeping; the outcome (and the
  artifact's ``end`` record) carries the quarantined indices so a
  partial result can never be mistaken for a full one.
* **Worker-crash recovery** — the resilient parallel backend dispatches
  task chunks over a :class:`concurrent.futures.ProcessPoolExecutor`;
  when a worker dies mid-chunk (``BrokenProcessPool``), the pool is
  respawned and only *unacknowledged* chunks are re-dispatched, so
  every task index contributes exactly one row.
* **Resume** — ``run_sweep(resume_from=path)`` salvages the committed
  rows of a partial :class:`~repro.engine.sink.JsonlSink` artifact,
  skips re-executing those task indices, and replays the salvaged rows
  through the sink pipeline, so the finished artifact is byte-identical
  to an uninterrupted run (the crash-anywhere property the chaos tests
  pin).
* :class:`ChaosPlan` — a seeded, declarative fault harness for the
  sweep engine itself (kill a worker at a chosen task, fail a task N
  times, fail a sink write), in the same chainable-action style as
  :class:`~repro.sim.failures.FailurePlan`.  Injection state lives in
  marker files so a fault fires exactly the scheduled number of times
  across processes and across resumed runs.

Everything here is opt-in: ``run_sweep``'s default (``on_error=None``)
stays the exact historical abort-everything behaviour.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.common.errors import StoreError
from repro.engine.spec import RunResult, RunTask, SweepSpec
from repro.engine.store import jsonable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.executor import SweepOutcome
    from repro.engine.sink import JsonlSink, ResultSink


class WorkerCrashError(RuntimeError):
    """The pool kept losing workers beyond the policy's respawn budget."""


class InjectedFault(RuntimeError):
    """A task exception raised by a :class:`ChaosPlan` schedule."""


class InjectedSinkError(OSError):
    """A sink I/O error raised by a :class:`ChaosPlan` schedule."""


#: exit code chaos-killed workers die with (recognizable in waitpid logs).
CHAOS_KILL_EXIT = 86

#: failure-manifest schema version; bump on any layout change.
MANIFEST_SCHEMA = 1

#: the manifest ``kind`` tag distinguishing it from other artifacts.
MANIFEST_KIND = "repro-sweep-failures"


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry/backoff/quarantine policy for failed tasks.

    Args:
        max_attempts: total executions allowed per task (first try
            included); ``1`` disables retry.
        backoff: base delay in seconds before the second attempt;
            doubles per further attempt.  ``0.0`` retries immediately
            (what the deterministic tests use).
        backoff_cap: upper bound on any single delay — backoff is
            *bounded*, never unbounded exponential.
        quarantine: when a task exhausts its attempts, record it in the
            failure manifest and keep sweeping instead of aborting.
        respawn_limit: how many pool respawns (dead workers) one sweep
            tolerates before giving up with :class:`WorkerCrashError`.

    The policy is a frozen value object: no RNG, no jitter — two runs
    of the same sweep under the same policy behave identically, which
    is what lets a resumed run converge to the uninterrupted bytes.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_cap: float = 1.0
    quarantine: bool = False
    respawn_limit: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.respawn_limit < 0:
            raise ValueError(f"respawn_limit must be >= 0, got {self.respawn_limit}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt + 1`` (deterministic)."""
        if self.backoff <= 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))


def resolve_policy(on_error: Any) -> RetryPolicy | None:
    """Normalize a ``run_sweep(on_error=...)`` argument.

    ``None``/``"raise"`` mean the historical abort-everything path
    (returns ``None``); ``"retry"`` and ``"quarantine"`` are shorthands
    for the common policies; a :class:`RetryPolicy` passes through.
    """
    if on_error is None or on_error == "raise":
        return None
    if isinstance(on_error, RetryPolicy):
        return on_error
    if on_error == "retry":
        return RetryPolicy()
    if on_error == "quarantine":
        return RetryPolicy(quarantine=True)
    raise ValueError(
        f"on_error must be None, 'raise', 'retry', 'quarantine' or a "
        f"RetryPolicy, got {on_error!r}"
    )


# ----------------------------------------------------------------------
# failure records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined (poison) cell: where it was and how it died."""

    index: int
    params: dict[str, Any]
    run: int
    seed: int
    attempts: int
    error: str
    message: str

    def payload(self) -> dict[str, Any]:
        """The manifest row (JSON-safe)."""
        return {
            "index": self.index,
            "params": jsonable(self.params),
            "run": self.run,
            "seed": self.seed,
            "attempts": self.attempts,
            "error": self.error,
            "message": self.message,
        }


@dataclass
class FailureManifest:
    """The explicit record of a sweep's poison cells.

    Written alongside (never inside) the row artifact, so downstream
    tooling can tell "these cells are missing because they failed" from
    "this artifact is truncated".  Canonically encoded: two runs that
    quarantine the same cells produce identical manifest bytes.
    """

    sweep: str
    records: list[TaskFailure] = field(default_factory=list)

    def indices(self) -> list[int]:
        """Quarantined task indices, sorted."""
        return sorted(r.index for r in self.records)

    def payload(self) -> dict[str, Any]:
        """The JSON-safe manifest document."""
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": MANIFEST_KIND,
            "sweep": self.sweep,
            "quarantined": [
                r.payload() for r in sorted(self.records, key=lambda r: r.index)
            ],
        }

    def save(self, path: str | Path) -> Path:
        """Write the manifest canonically; returns its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.payload(), sort_keys=True, indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FailureManifest":
        """Read a manifest back.

        Raises:
            StoreError: unreadable/foreign/schema-mismatched document.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read failure manifest {path}: {exc}") from None
        if not isinstance(payload, dict) or payload.get("kind") != MANIFEST_KIND:
            raise StoreError(f"{path} is not a sweep failure manifest")
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise StoreError(
                f"failure manifest {path} has schema {payload.get('schema')!r}, "
                f"this library reads schema {MANIFEST_SCHEMA}"
            )
        records = [
            TaskFailure(
                index=r["index"],
                params=r["params"],
                run=r["run"],
                seed=r["seed"],
                attempts=r["attempts"],
                error=r["error"],
                message=r["message"],
            )
            for r in payload.get("quarantined", [])
        ]
        return cls(sweep=payload.get("sweep", ""), records=records)


# ----------------------------------------------------------------------
# chaos harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KillWorker:
    """First execution of task ``index`` hard-kills its worker process."""

    index: int


@dataclass(frozen=True)
class FailTask:
    """The first ``attempts`` executions of task ``index`` raise
    :class:`InjectedFault`; later executions succeed."""

    index: int
    attempts: int = 1


@dataclass(frozen=True)
class FailSink:
    """The sink write of the ``row``-th emitted row (0-based) raises
    :class:`InjectedSinkError`, once."""

    row: int


ChaosAction = KillWorker | FailTask | FailSink


class ChaosPlan:
    """A declarative fault schedule for the sweep harness itself.

    The load-side dual of :class:`~repro.sim.failures.FailurePlan`:
    chainable actions, one :meth:`describe` line each — but keyed by
    task index / row count instead of virtual time, because the victim
    is the executor, not the simulated cluster.

    Injection state lives as marker files under ``state_dir`` (claimed
    atomically with ``O_EXCL``), so each scheduled fault fires exactly
    its scheduled number of times *across processes and across resumed
    runs* — a retried or re-dispatched task sees the claim and runs
    clean, which is what lets chaos runs converge deterministically.
    Plans are picklable and travel inside wrapped tasks into workers.
    """

    def __init__(self, state_dir: str | Path) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.actions: list[ChaosAction] = []

    def kill_worker(self, index: int) -> "ChaosPlan":
        """Hard-kill (``os._exit``) the worker executing task ``index``
        on its first execution; returns self for chaining."""
        self.actions.append(KillWorker(index))
        return self

    def fail_task(self, index: int, attempts: int = 1) -> "ChaosPlan":
        """Raise from task ``index``'s first ``attempts`` executions;
        returns self for chaining."""
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.actions.append(FailTask(index, attempts))
        return self

    def fail_sink(self, row: int) -> "ChaosPlan":
        """Raise an I/O error at the ``row``-th sink emit, once;
        returns self for chaining."""
        self.actions.append(FailSink(row))
        return self

    def __len__(self) -> int:
        return len(self.actions)

    def describe(self) -> str:
        """One line per action, in schedule order (for test logs)."""

        def key(action: ChaosAction) -> int:
            return action.row if isinstance(action, FailSink) else action.index

        return "\n".join(f"at={key(a)}: {a}" for a in sorted(self.actions, key=key))

    def claim(self, marker: str) -> bool:
        """Atomically claim a one-shot marker; True exactly once ever."""
        try:
            fd = os.open(self.state_dir / marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def claim_all(self) -> None:
        """Pre-claim every marker (tests use this to build the fault-free
        reference run of a chaos-wrapped spec)."""
        for action in self.actions:
            if isinstance(action, KillWorker):
                self.claim(f"kill-{action.index}")
            elif isinstance(action, FailTask):
                for k in range(action.attempts):
                    self.claim(f"fail-{action.index}-{k}")
            elif isinstance(action, FailSink):
                self.claim(f"sink-{action.row}")

    def wrap(self, task: Callable[..., Any]) -> "ChaosTask":
        """A picklable task wrapper that applies this plan's task faults."""
        return ChaosTask(task, self)

    def wrap_sink(self, sink: "ResultSink") -> "ChaosSink":
        """A sink wrapper that applies this plan's sink faults."""
        return ChaosSink(sink, self)


class ChaosTask:
    """A sweep task wrapped with a :class:`ChaosPlan`'s task faults.

    Sets ``needs_task_index`` so :meth:`~repro.engine.spec.RunTask.execute`
    passes the task's index in — fault schedules are keyed by index, the
    one coordinate that survives retries, re-dispatch and resume.
    """

    needs_task_index = True

    def __init__(self, inner: Callable[..., Any], plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan
        name = getattr(inner, "__qualname__", getattr(inner, "__name__", "task"))
        # spec.summary() reads __module__/__qualname__ off the task; the
        # chaos label deliberately omits the state_dir so two plans with
        # different scratch dirs produce byte-identical artifact headers.
        self.__module__ = getattr(inner, "__module__", __name__)
        self.__qualname__ = f"chaos[{name}]"
        self.__name__ = self.__qualname__

    def __call__(self, seed: int, task_index: int, **params: Any) -> Any:
        for action in self.plan.actions:
            if isinstance(action, KillWorker) and action.index == task_index:
                if self.plan.claim(f"kill-{task_index}"):
                    os._exit(CHAOS_KILL_EXIT)
            elif isinstance(action, FailTask) and action.index == task_index:
                for k in range(action.attempts):
                    if self.plan.claim(f"fail-{task_index}-{k}"):
                        raise InjectedFault(
                            f"injected fault at task {task_index} (attempt marker {k})"
                        )
        return self.inner(seed=seed, **params)


class ChaosSink:
    """A sink proxy that injects scheduled I/O errors before delegating.

    Delegates the whole :class:`~repro.engine.sink.ResultSink` surface
    to the wrapped sink, so it can stand anywhere a sink can — including
    inside a :class:`~repro.engine.sink.TeeSink`.
    """

    def __init__(self, inner: "ResultSink", plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan

    @property
    def keeps_rows(self) -> bool:
        return self.inner.keeps_rows

    @property
    def results(self) -> list[RunResult]:
        return self.inner.results

    @property
    def rows_emitted(self) -> int:
        return self.inner.rows_emitted

    @property
    def digest(self) -> int:
        return self.inner.digest

    @property
    def quarantined(self) -> list[int]:
        return self.inner.quarantined

    @property
    def spec(self) -> dict[str, Any] | None:
        return self.inner.spec

    def open(self, spec_summary: dict[str, Any]) -> None:
        self.inner.open(spec_summary)

    def emit(self, result: RunResult, row: Any = None) -> None:
        count = self.inner.rows_emitted
        for action in self.plan.actions:
            if isinstance(action, FailSink) and action.row == count:
                if self.plan.claim(f"sink-{count}"):
                    raise InjectedSinkError(
                        f"injected sink I/O error before row {count}"
                    )
        self.inner.emit(result, row)

    def note_quarantined(self, index: int) -> None:
        self.inner.note_quarantined(index)

    def close(self) -> None:
        self.inner.close()

    def abort(self) -> None:
        self.inner.abort()

    def summary(self) -> dict[str, Any]:
        return self.inner.summary()


# ----------------------------------------------------------------------
# the resilient executor
# ----------------------------------------------------------------------


@dataclass
class _Failed:
    """Worker-side envelope for one failed task (picklable)."""

    task: RunTask
    error: BaseException


@dataclass
class _Stats:
    """Mutable provenance counters for one resilient sweep."""

    resumed: int = 0
    completed: int = 0
    retried: int = 0
    respawns: int = 0


def _portable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in
    (an unpicklable exception must not poison the result pipe)."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _guarded_chunk(tasks: list[RunTask]) -> list[Any]:
    """Worker side: execute one chunk, converting per-task exceptions
    into :class:`_Failed` envelopes instead of poisoning the pool."""
    out: list[Any] = []
    for task in tasks:
        try:
            out.append(task.execute())
        except Exception as exc:
            out.append(_Failed(task=task, error=_portable_error(exc)))
    return out


def _guard_one(task: RunTask) -> Any:
    """Serial flavour of :func:`_guarded_chunk`."""
    try:
        return task.execute()
    except Exception as exc:
        return _Failed(task=task, error=exc)


def _chunk_list(items: list[Any], size: int) -> list[list[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _resilient_raw_stream(
    tasks: list[RunTask],
    workers: int,
    chunksize: int | None,
    policy: RetryPolicy,
    stats: _Stats,
) -> Iterator[Any]:
    """``RunResult | _Failed`` per task, in task order, surviving worker
    death.

    The parallel backend dispatches chunks over a
    ``ProcessPoolExecutor``; a chunk is *acknowledged* once its result
    list is back in the parent.  When a worker dies, every
    unacknowledged chunk is re-dispatched onto a fresh pool — at most
    ``policy.respawn_limit`` times — so each task index yields exactly
    one item no matter how many workers were lost.
    """
    import multiprocessing

    from repro.engine.executor import _POOL_UNAVAILABLE, default_chunksize

    if workers <= 1 or len(tasks) <= 1 or multiprocessing.current_process().daemon:
        for task in tasks:
            yield _guard_one(task)
        return

    from concurrent.futures import FIRST_COMPLETED, CancelledError, wait
    from concurrent.futures.process import BrokenProcessPool

    size = chunksize or default_chunksize(len(tasks), workers)
    chunks = _chunk_list(tasks, size)
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=workers)
        futures: dict[Any, int] = {}
        for cid, chunk in enumerate(chunks):
            futures[pool.submit(_guarded_chunk, chunk)] = cid
    except _POOL_UNAVAILABLE:
        for task in tasks:
            yield _guard_one(task)
        return

    acked: dict[int, list[Any]] = {}
    next_cid = 0
    try:
        while next_cid < len(chunks):
            if not futures:  # pragma: no cover - defensive
                raise WorkerCrashError("resilient pool lost track of pending chunks")
            done, _pending = wait(list(futures), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                cid = futures.pop(future)
                try:
                    acked[cid] = future.result()
                except (BrokenProcessPool, CancelledError, OSError):
                    broken = True
            if broken:
                stats.respawns += 1
                if stats.respawns > policy.respawn_limit:
                    raise WorkerCrashError(
                        f"workers kept dying: {stats.respawns} pool respawns "
                        f"exceeded the policy limit of {policy.respawn_limit}"
                    )
                pool.shutdown(wait=False, cancel_futures=True)
                futures.clear()
                pool = ProcessPoolExecutor(max_workers=workers)
                for cid, chunk in enumerate(chunks):
                    if cid not in acked:
                        futures[pool.submit(_guarded_chunk, chunk)] = cid
            while next_cid in acked:
                yield from acked.pop(next_cid)
                next_cid += 1
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _settle(
    item: Any,
    policy: RetryPolicy,
    stats: _Stats,
    sleep: Callable[[float], None] = time.sleep,
) -> RunResult | TaskFailure:
    """Apply retry/backoff/quarantine to one raw stream item.

    Retries run in the parent from the task's pinned seed, so a retry
    that succeeds is indistinguishable from a first-try success.
    """
    if isinstance(item, RunResult):
        stats.completed += 1
        return item
    task, error = item.task, item.error
    attempt = 1
    while attempt < policy.max_attempts:
        delay = policy.delay(attempt)
        if delay > 0:
            sleep(delay)
        attempt += 1
        stats.retried += 1
        try:
            result = task.execute()
        except Exception as exc:
            error = exc
            continue
        stats.completed += 1
        return result
    if policy.quarantine:
        return TaskFailure(
            index=task.index,
            params=jsonable(task.params),
            run=task.run,
            seed=task.seed,
            attempts=attempt,
            error=type(error).__name__,
            message=str(error),
        )
    raise error


def _find_jsonl(sink: Any, path: Path) -> "JsonlSink | None":
    """The JsonlSink writing ``path`` inside a (possibly nested) sink tree."""
    from repro.engine.sink import JsonlSink, TeeSink

    if isinstance(sink, ChaosSink):
        return _find_jsonl(sink.inner, path)
    if isinstance(sink, JsonlSink) and Path(sink.path) == path:
        return sink
    if isinstance(sink, TeeSink):
        for child in sink.sinks:
            found = _find_jsonl(child, path)
            if found is not None:
                return found
    return None


def _result_from_row(row: dict[str, Any]) -> RunResult:
    """Reconstruct a salvaged artifact row as a RunResult.

    The value is the row's JSON form (``jsonable`` is idempotent), so
    re-emitting it through any sink reproduces the original canonical
    line — and hence the original digest and artifact bytes.
    """
    return RunResult(
        index=row["index"],
        params=row["params"],
        run=row["run"],
        seed=row["seed"],
        value=row["value"],
    )


def run_resilient(
    spec: SweepSpec,
    workers: int = 1,
    chunksize: int | None = None,
    sink: "ResultSink | None" = None,
    policy: RetryPolicy | None = None,
    resume_from: str | Path | None = None,
) -> "SweepOutcome":
    """Execute one sweep under the resilience layer.

    This is the engine behind ``run_sweep(on_error=..., resume_from=...)``;
    call through :func:`~repro.engine.executor.run_sweep` in normal code.

    Rows are emitted into ``sink`` in task-index order exactly like the
    streaming path; salvaged rows (under ``resume_from``) are replayed
    without re-executing their tasks.  The outcome's ``resilience``
    mapping (also merged into ``aggregate``) carries the provenance:
    ``completed`` / ``resumed`` / ``retried`` / ``quarantined`` /
    ``respawns`` — so partial results are always labelled as such.
    """
    from repro.engine.executor import SweepOutcome
    from repro.engine.sink import MemorySink, scan_partial_stream

    if policy is None:
        policy = RetryPolicy(max_attempts=1)
    summary = spec.summary()
    committed: dict[int, dict[str, Any]] = {}
    if resume_from is not None:
        resume_from = Path(resume_from)
        if sink is None:
            from repro.engine.sink import JsonlSink

            sink = JsonlSink(resume_from)
        elif _find_jsonl(sink, resume_from) is None:
            raise ValueError(
                f"resume_from={str(resume_from)!r} names no JsonlSink in the "
                "given sink tree; resume rewrites that artifact in place, so "
                "the sink must include a JsonlSink at the same path"
            )
        committed = scan_partial_stream(resume_from, expect_spec=jsonable(summary))
        n = spec.n_tasks
        stray = [i for i in committed if not (0 <= i < n)]
        if stray:
            raise StoreError(
                f"partial artifact {resume_from} holds task indices {stray[:5]} "
                f"outside this spec's 0..{n - 1} range; refusing to resume"
            )
    if sink is None:
        sink = MemorySink()

    stats = _Stats(resumed=len(committed))
    manifest = FailureManifest(sweep=spec.name)
    pending = [t for t in spec.iter_tasks() if t.index not in committed]
    raw = _resilient_raw_stream(pending, workers, chunksize, policy, stats)

    sink.open(summary)
    try:
        for index in range(spec.n_tasks):
            row = committed.get(index)
            if row is not None:
                sink.emit(_result_from_row(row), row=row)
                continue
            settled = _settle(next(raw), policy, stats)
            if isinstance(settled, TaskFailure):
                manifest.records.append(settled)
                sink.note_quarantined(settled.index)
            else:
                sink.emit(settled)
    except BaseException:
        sink.abort()
        raise
    sink.close()

    provenance: dict[str, Any] = {
        "completed": stats.completed + stats.resumed,
        "resumed": stats.resumed,
        "retried": stats.retried,
        "quarantined": manifest.indices(),
        "respawns": stats.respawns,
    }
    aggregate = dict(sink.summary())
    aggregate["resilience"] = provenance
    results = list(sink.results) if sink.keeps_rows else []
    return SweepOutcome(
        spec=summary,
        results=results,
        aggregate=aggregate,
        resilience=provenance,
        failures=list(manifest.records),
    )


def iter_quarantined(outcome: "SweepOutcome") -> Iterable[TaskFailure]:
    """The quarantined cells of a resilient outcome (empty otherwise)."""
    return tuple(outcome.failures or ())
