"""Streaming aggregates: fold result rows without keeping them.

A sweep of 10^5–10^6 cells cannot hold its raw rows in RAM, yet its
aggregates must stay **byte-identical at every worker count** — the
engine's core contract.  Plain float folds break that promise the
moment rows are folded per worker and partials merged: ``(a+b)+(c+d)``
rounds differently from ``((a+b)+c)+d``.  The accumulators here are
therefore *exact*:

* :class:`CountAcc` — integer tallies (trivially associative).
* :class:`MeanAcc` — mean / min / max / sd over exact
  :class:`~fractions.Fraction` sums.  Every float is a dyadic rational,
  so the running sums are exact and merging partials in any grouping
  yields the same value; floats only reappear at :meth:`~MeanAcc.summary`
  time, via one deterministic conversion.
* :class:`QuantileDigest` — a fixed-size histogram digest (integer bin
  counts, exact min/max) whose percentile estimates depend only on the
  folded multiset, never on fold order.

:class:`RowReducer` bundles named accumulators with the per-row digest
(:func:`row_digest`), so a worker can fold its chunk of results into a
small partial and ship *that* back instead of the raw row list; the
parent merges partials in chunk order and gets the same bytes a serial
fold produces.  The digest itself is an order-independent sum of
per-row SHA-256 hashes — each row's canonical encoding already embeds
its task index, so content *and* position are pinned while partials
stay mergeable.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Any, Mapping, Sequence

from repro.engine.spec import RunResult
from repro.engine.store import ResultStore, canonical_line

#: digests are reduced into this modulus (63-bit, like derived seeds,
#: so they survive any JSON round trip losslessly).
DIGEST_MOD = 1 << 63


def row_digest(row: Mapping[str, Any]) -> int:
    """A 63-bit digest of one canonical result row."""
    data = canonical_line(row).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big") % DIGEST_MOD


def merge_digests(a: int, b: int) -> int:
    """Combine two digest sums (order-independent, associative)."""
    return (a + b) % DIGEST_MOD


class Accumulator:
    """One streaming statistic: fold values, merge partials, summarize.

    Implementations must be **exactly mergeable**: folding a value
    sequence serially and folding it as partials merged in any grouping
    must produce byte-identical summaries.  They must also pickle (a
    fresh template travels to pool workers) and expose :meth:`fresh`
    returning an empty clone with the same shape parameters.
    """

    kind = "?"

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def summary(self) -> dict[str, Any]:
        raise NotImplementedError

    def fresh(self) -> "Accumulator":
        raise NotImplementedError


class CountAcc(Accumulator):
    """Tally of distinct (hashable) values — commits, outcomes, flags."""

    kind = "count"

    def __init__(self) -> None:
        self.n = 0
        self.counts: dict[Any, int] = {}

    def add(self, value: Any) -> None:
        self.n += 1
        self.counts[value] = self.counts.get(value, 0) + 1

    def merge(self, other: "CountAcc") -> None:
        self.n += other.n
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count

    def summary(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "n": self.n,
            "counts": {str(k): self.counts[k] for k in sorted(self.counts, key=str)},
        }

    def fresh(self) -> "CountAcc":
        return CountAcc()


class MeanAcc(Accumulator):
    """Exact streaming mean / min / max / sd.

    Sums are kept as :class:`~fractions.Fraction` (every float converts
    exactly), so the merge of any partial grouping equals the serial
    fold bit-for-bit; ``mean``/``sd`` are converted to float once, at
    summary time.
    """

    kind = "mean"

    def __init__(self) -> None:
        self.n = 0
        self.total = Fraction(0)
        self.total_sq = Fraction(0)
        self.lo: float | None = None
        self.hi: float | None = None

    def add(self, value: Any) -> None:
        exact = Fraction(value)
        self.n += 1
        self.total += exact
        self.total_sq += exact * exact
        value = float(value)
        self.lo = value if self.lo is None else min(self.lo, value)
        self.hi = value if self.hi is None else max(self.hi, value)

    def merge(self, other: "MeanAcc") -> None:
        self.n += other.n
        self.total += other.total
        self.total_sq += other.total_sq
        if other.lo is not None:
            self.lo = other.lo if self.lo is None else min(self.lo, other.lo)
        if other.hi is not None:
            self.hi = other.hi if self.hi is None else max(self.hi, other.hi)

    def mean(self) -> float:
        return float(self.total / self.n) if self.n else 0.0

    def variance(self) -> float:
        """Unbiased sample variance, computed exactly before conversion."""
        if self.n < 2:
            return 0.0
        exact = (self.total_sq - self.total * self.total / self.n) / (self.n - 1)
        return max(0.0, float(exact))

    def sd(self) -> float:
        return self.variance() ** 0.5

    def ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Two-sided t confidence interval (matches ``stats.mean_ci``).

        Not part of :meth:`summary` — the t quantile comes from scipy,
        whose last-ulp behaviour may drift across versions, and summary
        output must stay byte-stable enough to commit as a baseline.
        """
        mean = self.mean()
        sd = self.sd()
        if self.n < 2 or sd == 0.0:
            return mean, mean
        from scipy import stats

        sem = sd / self.n**0.5
        low, high = stats.t.interval(confidence, df=self.n - 1, loc=mean, scale=sem)
        return float(low), float(high)

    def summary(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "n": self.n,
            "mean": self.mean(),
            "min": self.lo if self.lo is not None else 0.0,
            "max": self.hi if self.hi is not None else 0.0,
            "sd": self.sd(),
        }

    def fresh(self) -> "MeanAcc":
        return MeanAcc()


class QuantileDigest(Accumulator):
    """Fixed-size percentile digest over a known value range.

    ``bins`` integer counters over ``[lo, hi)`` (out-of-range values
    clamp into the edge bins; exact min/max are tracked separately), so
    memory is constant in row count and the percentile estimates are a
    pure function of the folded multiset — merge order cannot change a
    single bit.  Estimates interpolate linearly inside the target bin,
    clamped to the observed range.
    """

    kind = "digest"

    def __init__(self, lo: float, hi: float, bins: int = 64) -> None:
        if not hi > lo:
            raise ValueError(f"digest range must satisfy hi > lo, got [{lo}, {hi}]")
        if bins < 1:
            raise ValueError(f"digest needs >= 1 bin, got {bins}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self.counts = [0] * bins
        self.n = 0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, value: Any) -> None:
        value = float(value)
        self.n += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = int((value - self.lo) / (self.hi - self.lo) * self.bins)
        self.counts[min(max(index, 0), self.bins - 1)] += 1

    def merge(self, other: "QuantileDigest") -> None:
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi, self.bins):
            raise ValueError("cannot merge digests with different bin layouts")
        self.n += other.n
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (0 <= q <= 1).

        An empty digest returns the defined sentinel 0.0 (there is no
        observed range to clamp to).  Non-empty estimates interpolate
        linearly inside the target bin and are clamped to the exact
        observed ``[min, max]`` — the clamp tests ``is not None``, never
        truthiness, so an observed extreme of exactly 0.0 still clamps
        (a digest saturated into one bin reports that bin's observed
        extreme, not an interpolated point beyond it).
        """
        if not self.n:
            return 0.0
        rank = max(1, -(-int(q * self.n * 1000000) // 1000000))  # ceil, float-safe
        rank = min(rank, self.n)
        cumulative = 0
        width = (self.hi - self.lo) / self.bins
        for index, count in enumerate(self.counts):
            if cumulative + count >= rank:
                inside = (rank - cumulative) / count
                estimate = self.lo + width * (index + inside)
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += count
        return self.max if self.max is not None else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "n": self.n,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def fresh(self) -> "QuantileDigest":
        return QuantileDigest(self.lo, self.hi, self.bins)

    def state(self) -> dict[str, Any]:
        """The digest's full JSON-able state (exact bin counts).

        Round-trips through :meth:`from_state` / :meth:`absorb`, so a
        run can ship its latency digest inside a result row and a later
        consumer can merge digests across runs without ever having seen
        the raw samples.
        """
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": list(self.counts),
            "n": self.n,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "QuantileDigest":
        """Rebuild a digest from :meth:`state` output (e.g. a JSON row)."""
        digest = cls(state["lo"], state["hi"], state["bins"])
        counts = list(state["counts"])
        if len(counts) != digest.bins:
            raise ValueError(
                f"state carries {len(counts)} counts for {digest.bins} bins"
            )
        digest.counts = counts
        digest.n = int(state["n"])
        digest.min = state["min"]
        digest.max = state["max"]
        return digest

    def absorb(self, state: Mapping[str, Any]) -> None:
        """Merge a serialized digest state in (see :meth:`state`)."""
        self.merge(QuantileDigest.from_state(state))


class DigestMergeAcc(Accumulator):
    """Fold serialized digest states from result rows into one digest.

    Rows produced by open-loop service runs carry their latency digest
    as a :meth:`QuantileDigest.state` dict; this accumulator absorbs
    those states so a sweep's reducer can report fleet-wide tail
    percentiles (p999 included) without per-op lists ever existing.
    Merging bin counts is integer addition, so partials grouped any way
    summarize byte-identically.
    """

    kind = "digest_merge"

    def __init__(self, lo: float, hi: float, bins: int = 64) -> None:
        self.digest = QuantileDigest(lo, hi, bins)

    def add(self, value: Any) -> None:
        self.digest.absorb(value)

    def merge(self, other: "DigestMergeAcc") -> None:
        self.digest.merge(other.digest)

    def summary(self) -> dict[str, Any]:
        digest = self.digest
        return {
            "kind": self.kind,
            "n": digest.n,
            "min": digest.min if digest.min is not None else 0.0,
            "max": digest.max if digest.max is not None else 0.0,
            "p50": digest.quantile(0.50),
            "p99": digest.quantile(0.99),
            "p999": digest.quantile(0.999),
        }

    def fresh(self) -> "DigestMergeAcc":
        return DigestMergeAcc(self.digest.lo, self.digest.hi, self.digest.bins)


def resolve_path(value: Any, path: str) -> Any:
    """Pull a metric out of a row value by dotted path.

    An empty path is the value itself; each segment indexes a mapping,
    indexes a sequence (numeric segments, e.g. ``"latencies.0"``), or
    reads an attribute — so live dataclass results and rows loaded from
    a JSON artifact resolve identically.
    """
    if not path:
        return value
    for part in path.split("."):
        if isinstance(value, Mapping):
            value = value[part]
        elif isinstance(value, Sequence) and not isinstance(value, str):
            value = value[int(part)]
        else:
            value = getattr(value, part)
    return value


class RowReducer:
    """Named accumulators plus the row digest: a sweep's streaming fold.

    ``metrics`` is a tuple of ``(name, path, accumulator_template)``
    triples; folding a result resolves each path inside the row's
    ``value`` and feeds the matching accumulator.  Reducers pickle into
    pool workers (:meth:`fresh` gives each worker chunk a clean one),
    partials merge exactly, and :meth:`summary` is byte-identical
    between a serial fold and any chunked layout.
    """

    def __init__(self, metrics: tuple[tuple[str, str, Accumulator], ...] = ()) -> None:
        names = [name for name, _path, _acc in metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate reducer metric names in {names}")
        self.metrics = tuple(metrics)
        self.rows = 0
        self.digest = 0

    def fold(self, result: RunResult, row: Mapping[str, Any] | None = None) -> None:
        """Fold one live result (``row``: its precomputed canonical form)."""
        if row is None:
            row = ResultStore.row_payload(result)
        self._fold_common(row, result.value)

    def fold_row(self, row: Mapping[str, Any]) -> None:
        """Fold one row loaded back from an artifact (the eager side)."""
        self._fold_common(row, row["value"])

    def _fold_common(self, row: Mapping[str, Any], value: Any) -> None:
        self.rows += 1
        self.digest = merge_digests(self.digest, row_digest(row))
        for _name, path, acc in self.metrics:
            acc.add(resolve_path(value, path))

    def merge(self, other: "RowReducer") -> None:
        """Fold another partial in (chunk order = task order)."""
        self.rows += other.rows
        self.digest = merge_digests(self.digest, other.digest)
        for (_n, _p, acc), (_on, _op, other_acc) in zip(self.metrics, other.metrics):
            acc.merge(other_acc)

    def summary(self) -> dict[str, Any]:
        """JSON-able aggregate: row count, digest, one entry per metric."""
        return {
            "rows": self.rows,
            "digest": self.digest,
            "metrics": {name: acc.summary() for name, _path, acc in self.metrics},
        }

    def fresh(self) -> "RowReducer":
        """An empty reducer with the same metric layout."""
        return RowReducer(
            tuple((name, path, acc.fresh()) for name, path, acc in self.metrics)
        )
