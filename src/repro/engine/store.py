"""Persistence and aggregation of sweep artifacts.

A :class:`ResultStore` writes one JSON file per sweep under a root
directory.  Artifacts are schema-versioned and canonically encoded
(sorted keys, fixed indentation, dataclasses flattened to dicts), so
the same sweep at any worker count produces byte-identical files —
suitable for committing as ``BENCH_*.json`` trajectories and diffing
across PRs.

The module-level helpers (:func:`mean_of`, :func:`fraction_of`,
:func:`count_where`, :func:`group_by`) operate on plain result rows —
either live :class:`~repro.engine.spec.RunResult` objects or the dicts
a loaded artifact yields — so aggregation code is the same on both
sides of a save/load round trip.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.common.errors import StoreError
from repro.engine.executor import SweepOutcome
from repro.engine.shared import SharedPayload

#: bump when the artifact layout changes shape.
SCHEMA_VERSION = 1


def canonical_line(value: Any) -> str:
    """One-line canonical JSON (sorted keys, no whitespace).

    The byte-stable compact form shared by streamed JSONL rows, row
    digests and the replay artifacts — same dialect as
    ``replay/artifact.py``.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def jsonable(value: Any) -> Any:
    """Recursively convert a task's return value to JSON-safe data.

    Dataclasses flatten to dicts, tuples/sets to lists (sets sorted for
    determinism), shared-payload handles to their content-free
    ``describe()`` form; everything else must already be
    JSON-encodable.
    """
    if isinstance(value, SharedPayload):
        return value.describe()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into a sweep artifact")


class ResultStore:
    """Per-sweep JSON artifacts under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, sweep_name: str) -> Path:
        """The artifact path of a sweep."""
        safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in sweep_name)
        return self.root / f"{safe}.json"

    def save(self, outcome: SweepOutcome) -> Path:
        """Write an executed sweep's artifact; returns its path."""
        payload = self.payload(outcome)
        path = self.path_for(outcome.name)
        self.root.mkdir(parents=True, exist_ok=True)
        path.write_text(self.encode(payload))
        return path

    def load(self, sweep_name: str) -> dict[str, Any]:
        """Read an artifact back as plain data.

        Raises:
            FileNotFoundError: no artifact for that sweep.
            StoreError: the artifact's schema version does not match
                this library's — a stale payload must be regenerated,
                not silently reinterpreted under the current layout.
        """
        payload = json.loads(self.path_for(sweep_name).read_text())
        found = payload.get("schema")
        if found != SCHEMA_VERSION:
            raise StoreError(
                f"artifact {sweep_name!r} has schema {found!r}, "
                f"this library reads schema {SCHEMA_VERSION}; regenerate it "
                "with the current library instead of reusing stale results"
            )
        return payload

    def results(self, sweep_name: str) -> list[dict[str, Any]]:
        """The result rows of a stored sweep."""
        return self.load(sweep_name)["results"]

    @staticmethod
    def row_payload(result: Any) -> dict[str, Any]:
        """One result's canonical artifact row.

        The single definition of a row's JSON shape — the eager
        artifact body, the streamed JSONL rows and the row digests all
        encode through here, which is what makes their checksums
        comparable across backends.
        """
        return {
            "index": result.index,
            "params": jsonable(result.params),
            "run": result.run,
            "seed": result.seed,
            "value": jsonable(result.value),
        }

    @staticmethod
    def payload(outcome: SweepOutcome) -> dict[str, Any]:
        """The artifact dict for an executed sweep.

        The ``resilience`` block (retry/quarantine/resume provenance)
        appears only when the sweep actually ran under the resilient
        path, so fault-free artifacts keep their historical bytes.
        """
        out = {
            "schema": SCHEMA_VERSION,
            "sweep": outcome.name,
            "spec": outcome.spec,
            "results": [ResultStore.row_payload(r) for r in outcome.results],
        }
        resilience = getattr(outcome, "resilience", None)
        if resilience is not None:
            out["resilience"] = jsonable(resilience)
        return out

    @staticmethod
    def encode(payload: dict[str, Any]) -> str:
        """Canonical artifact encoding (byte-stable across runs)."""
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _get(row: Any, field: str) -> Any:
    """Field access that works on RunResults, dataclasses and dicts."""
    if isinstance(row, Mapping):
        return row[field]
    return getattr(row, field)


def group_by(rows: Iterable[Any], param: str) -> dict[Any, list[Any]]:
    """Group result rows by one cell parameter, insertion-ordered."""
    groups: dict[Any, list[Any]] = {}
    for row in rows:
        groups.setdefault(_get(row, "params")[param], []).append(row)
    return groups


def values_of(rows: Iterable[Any], pick: Callable[[Any], Any] | None = None) -> list[Any]:
    """The ``value`` of each row, optionally projected through ``pick``."""
    out = [_get(row, "value") for row in rows]
    return [pick(v) for v in out] if pick is not None else out


def mean_of(rows: Iterable[Any], pick: Callable[[Any], float] | None = None) -> float:
    """Mean of (picked) values; 0.0 on empty input."""
    vals = values_of(rows, pick)
    return sum(vals) / len(vals) if vals else 0.0


def count_where(rows: Iterable[Any], pred: Callable[[Any], bool]) -> int:
    """How many rows' values satisfy ``pred``."""
    return sum(1 for v in values_of(rows) if pred(v))


def fraction_of(rows: Iterable[Any], pred: Callable[[Any], bool]) -> float:
    """Fraction of rows' values satisfying ``pred``; 0.0 on empty input."""
    rows = list(rows)
    return count_where(rows, pred) / len(rows) if rows else 0.0
