"""Random workload / placement / fault generation for sweeps.

All generators take an explicit ``random.Random`` so experiments stay
reproducible (the RNG comes from a named
:class:`~repro.sim.rng.RngRegistry` stream).

Catalog memoization
-------------------

Sweep drivers rebuild their catalog from scratch inside every trial,
yet with ``seeding="offset"`` every grid cell (protocol) replays the
*same* seed sequence — the same catalogs, rebuilt once per cell.
:func:`memoized_catalog` removes the rebuilds without touching a single
RNG draw: the cache key includes the **exact pre-build RNG state**, and
the cached entry stores the catalog *plus the post-build RNG state*,
which a cache hit restores before returning.  The caller's stream is
therefore bit-identical whether the catalog was built or fetched — the
catalog is a pure function of (state, shape), and the skipped draws are
replayed by ``setstate`` instead of by re-drawing.  Entries live in the
per-process :func:`~repro.engine.executor.worker_cache`, so persistent
warm pool workers keep them across sweeps; a small FIFO bound per tag
keeps 10^5-run sweeps from hoarding memory.

Drivers whose runs *mutate* the catalog (elastic joins call
``admit_site``) pass ``mutable=True`` and receive a
:meth:`~repro.replication.catalog.ReplicaCatalog.fork` — the cached
original stays pristine.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.engine.executor import worker_cache
from repro.replication.catalog import CatalogBuilder, ReplicaCatalog
from repro.sim.failures import FailurePlan

#: per-tag FIFO bound of the catalog memo (entries are a catalog plus
#: one Mersenne-Twister state tuple, a few KB each).
CATALOG_MEMO_LIMIT = 128


def memoized_catalog(
    rng: random.Random,
    key: tuple[Any, ...],
    build: Callable[[random.Random], ReplicaCatalog],
    mutable: bool = False,
) -> ReplicaCatalog:
    """Build — or fetch — a catalog drawn from a shared RNG stream.

    ``key`` names the call site and every shape parameter the builder
    uses (``("heavy-workload", n_sites, n_items, replication)``); the
    full pre-build ``rng.getstate()`` is appended automatically, which
    makes the memo safe unconditionally: a hit is only possible when
    the builder would have received the identical stream, and restoring
    the stored post-build state leaves the caller's subsequent draws
    bit-identical to an actual rebuild (see module docstring).

    ``mutable=True`` returns a fork so in-run catalog mutation
    (``admit_site``) cannot poison the cached original.
    """
    memo: dict[Any, tuple[ReplicaCatalog, Any]] = worker_cache(
        ("catalog-memo", key[0]), dict
    )
    full_key = (key, rng.getstate())
    hit = memo.get(full_key)
    if hit is None:
        catalog = build(rng)
        if len(memo) >= CATALOG_MEMO_LIMIT:
            memo.pop(next(iter(memo)))  # FIFO: oldest insertion goes first
        memo[full_key] = (catalog, rng.getstate())
    else:
        catalog, post_state = hit
        rng.setstate(post_state)
    return catalog.fork() if mutable else catalog


def random_catalog(
    rng: random.Random,
    n_sites: int = 8,
    n_items: int = 4,
    replication: int = 4,
) -> ReplicaCatalog:
    """A catalog with ``n_items`` items, each replicated at ``replication``
    random sites with one vote per copy.

    Quorums are drawn uniformly from the valid region: ``w`` from
    ``(v/2, v]`` and ``r`` from ``(v - w, v]`` — i.e. every legal
    Gifford assignment is reachable, not just majority/majority.
    """
    if replication > n_sites:
        raise ValueError("replication cannot exceed the number of sites")
    builder = CatalogBuilder()
    sites = list(range(1, n_sites + 1))
    for i in range(n_items):
        copies = rng.sample(sites, replication)
        v = replication
        w = rng.randint(v // 2 + 1, v)
        r = rng.randint(v - w + 1, v)
        builder.item(f"i{i}", {s: 1 for s in copies}, r=r, w=w)
    return builder.build()


def random_update(
    rng: random.Random,
    catalog: ReplicaCatalog,
    max_items: int = 2,
    value_pool: int = 1000,
) -> tuple[int, dict[str, Any]]:
    """A random update: (origin site, item -> new value).

    The origin is drawn from the sites hosting a copy of the first
    chosen item, mimicking "issue where the data lives".
    """
    n = rng.randint(1, min(max_items, len(catalog.item_names)))
    items = rng.sample(catalog.item_names, n)
    origin = rng.choice(catalog.sites_of(items[0]))
    return origin, {item: rng.randrange(value_pool) for item in items}


def random_partition_groups(
    rng: random.Random,
    sites: list[int],
    n_groups: int = 2,
) -> list[list[int]]:
    """Split ``sites`` into ``n_groups`` non-empty random components."""
    if n_groups > len(sites):
        raise ValueError("more groups than sites")
    shuffled = list(sites)
    rng.shuffle(shuffled)
    # one seed site per group guarantees non-emptiness
    groups: list[list[int]] = [[shuffled[i]] for i in range(n_groups)]
    for site in shuffled[n_groups:]:
        groups[rng.randrange(n_groups)].append(site)
    return [sorted(g) for g in groups]


def wan_regions(n_regions: int, sites_per_region: int) -> list[list[int]]:
    """Contiguous site-id blocks modelling datacenters of a WAN."""
    return [
        list(range(r * sites_per_region + 1, (r + 1) * sites_per_region + 1))
        for r in range(n_regions)
    ]


def wan_catalog(
    rng: random.Random,
    n_regions: int = 4,
    sites_per_region: int = 8,
    n_items: int = 8,
    region_replication: int = 3,
) -> ReplicaCatalog:
    """A geo-replicated catalog over ``n_regions × sites_per_region`` sites.

    Each item places one copy in each of ``region_replication`` random
    regions (the classic WAN layout: survive a region loss, pay
    cross-region quorums for it), on a random site within the region.
    Quorums are drawn from the valid Gifford region as in
    :func:`random_catalog`.
    """
    if region_replication > n_regions:
        raise ValueError("region_replication cannot exceed the number of regions")
    regions = wan_regions(n_regions, sites_per_region)
    builder = CatalogBuilder()
    for i in range(n_items):
        picked = rng.sample(range(n_regions), region_replication)
        copies = [rng.choice(regions[r]) for r in picked]
        v = len(copies)
        w = rng.randint(v // 2 + 1, v)
        r_quorum = rng.randint(v - w + 1, v)
        builder.item(f"i{i}", {s: 1 for s in copies}, r=r_quorum, w=w)
    return builder.build()


def _deal_stragglers(
    rng: random.Random,
    components: list[list[int]],
    straggler_prob: float,
) -> list[tuple[int, int, int]]:
    """Decide straggler defections in one pass over the pre-storm deal.

    Returns ``(site, src_component, dst_component)`` moves.  Every site
    gets exactly one defection draw, judged against the component it was
    *dealt* into — deciding while mutating the components (the old code)
    let a site that defected into a later component be drawn again when
    that component was processed, biasing the straggler rate upward.
    """
    n_components = len(components)
    moves: list[tuple[int, int, int]] = []
    for c, component in enumerate(components):
        if len(component) <= 1:
            continue  # a singleton component has nobody to defect from
        for site in component:
            if rng.random() < straggler_prob:
                dst = rng.choice([j for j in range(n_components) if j != c])
                moves.append((site, c, dst))
    return moves


def region_storm_plan(
    rng: random.Random,
    regions: list[list[int]],
    waves: int = 4,
    first_at: float = 3.0,
    wave_spacing: tuple[float, float] = (8.0, 15.0),
    straggler_prob: float = 0.15,
    heal: bool = True,
) -> FailurePlan:
    """Waves of region-aligned partitionings, then (optionally) a heal.

    Each wave cuts the installation along region boundaries: the
    regions are dealt into 2–4 components, and with probability
    ``straggler_prob`` a site defects to a random other component —
    WAN partitions follow backbone links, but never perfectly.  All
    defections are decided in a single pass over the pre-storm deal
    (see :func:`_deal_stragglers`), so every site defects at most once
    per wave.  Waves land while the previous termination attempt is
    still in flight, so protocols re-enter exactly as in E13, at
    installation scale.
    """
    plan = FailurePlan()
    t = first_at
    for _ in range(waves):
        n_components = rng.choice([2, 2, 3, min(4, len(regions))])
        components: list[list[int]] = [[] for _ in range(n_components)]
        for idx, region in enumerate(rng.sample(regions, len(regions))):
            components[idx % n_components].extend(region)
        for site, src, dst in _deal_stragglers(rng, components, straggler_prob):
            components[src].remove(site)
            components[dst].append(site)
        plan.partition(t, *[sorted(c) for c in components if c])
        t += rng.uniform(*wave_spacing)
    if heal:
        plan.heal(t)
    return plan


def arrival_times(
    rng: random.Random,
    n: int,
    mean_spacing: float = 2.0,
    start: float = 1.0,
) -> list[float]:
    """Poisson-process arrival times for an open transaction workload."""
    t = start
    out = []
    for _ in range(n):
        out.append(t)
        t += rng.expovariate(1.0 / mean_spacing)
    return out


def random_fault_plan(
    rng: random.Random,
    sites: list[int],
    coordinator: int,
    t_window: tuple[float, float] = (1.0, 5.0),
    crash_coordinator: bool = True,
    n_extra_crashes: int = 0,
    n_groups: int = 2,
    heal_at: float | None = None,
) -> FailurePlan:
    """A fault schedule in the paper's model: crashes + one partitioning.

    Args:
        rng: random stream.
        sites: the full site list.
        coordinator: the transaction's origin site.
        t_window: virtual-time interval the faults strike in.
        crash_coordinator: crash the coordinator (the classic trigger).
        n_extra_crashes: additional random participant crashes.
        n_groups: number of partition components.
        heal_at: optionally heal at this time (tests recovery paths).
    """
    lo, hi = t_window
    plan = FailurePlan()
    if crash_coordinator:
        plan.crash(rng.uniform(lo, hi), coordinator)
    pool = [s for s in sites if s != coordinator]
    for victim in rng.sample(pool, min(n_extra_crashes, len(pool))):
        plan.crash(rng.uniform(lo, hi), victim)
    groups = random_partition_groups(rng, sites, min(n_groups, len(sites)))
    plan.partition(rng.uniform(lo, hi), *groups)
    if heal_at is not None:
        plan.heal(heal_at)
    return plan
