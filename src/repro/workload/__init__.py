"""Workload and scenario generation (system S20).

* :mod:`repro.workload.spec` — declarative :class:`WorkloadSpec`
  (item popularity, read:write mix, footprint, arrivals, cross-region
  pattern) compiling to the generator callables the drivers consume.
* :mod:`repro.workload.scenarios` — the paper's worked examples
  (Examples 1–4 with Figs. 3 and 7) as parameterized, runnable
  scenarios shared by the tests, benchmarks and examples.
* :mod:`repro.workload.generators` — random transaction workloads,
  random replica placements and random fault schedules for the sweeps
  and the randomized model-checking experiments.
"""

from repro.workload.generators import (
    random_catalog,
    random_fault_plan,
    random_partition_groups,
    random_update,
)
from repro.workload.scenarios import (
    ScenarioResult,
    example1_catalog,
    example3_catalog,
    run_example1_scenario,
    run_example3_scenario,
)
from repro.workload.spec import CompiledWorkload, WorkloadOp, WorkloadSpec

__all__ = [
    "CompiledWorkload",
    "ScenarioResult",
    "WorkloadOp",
    "WorkloadSpec",
    "example1_catalog",
    "example3_catalog",
    "random_catalog",
    "random_fault_plan",
    "random_partition_groups",
    "random_update",
    "run_example1_scenario",
    "run_example3_scenario",
]
