"""The paper's worked examples as runnable scenarios.

Examples 1–4 all share one database (the paper's Fig. 3 layout):

* transaction TR, issued at site 1, updates items x and y;
* x has copies x1..x4 at sites 1–4; y has copies y5..y8 at sites 5–8;
* every copy holds one vote; ``r(x) = r(y) = 2``, ``w(x) = w(y) = 3``;
* for Skeen's protocol [16], every *site* holds one vote with commit
  quorum ``Vc = 5`` and abort quorum ``Va = 4`` (``Vc + Va = 9 > 8``);
* during the commitment procedure the coordinator (site 1) fails and
  the network partitions into G1 = {1,2,3}, G2 = {4,5}, G3 = {6,7,8},
  leaving site 5 in PC and every other active participant in W.

Example 3 (Fig. 7) uses a 5-site database with both items replicated
at sites 2–5 and a healed partition giving rise to two coordinators.

Each ``run_*`` function builds a fresh cluster, replays the scenario
deterministically, and returns a :class:`ScenarioResult` holding the
cluster plus the derived verdicts — tests, benches and examples all
consume the same object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.consistency import ConsistencyReport
from repro.db.cluster import Cluster
from repro.db.txn import TxnHandle
from repro.replication.catalog import CatalogBuilder, ReplicaCatalog
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.traffic import TrafficEngine
from repro.workload.generators import (
    memoized_catalog,
    region_storm_plan,
    wan_catalog,
    wan_regions,
)
from repro.workload.spec import WorkloadSpec

#: the partition of Examples 1, 2 and 4 (Fig. 3).
EXAMPLE1_GROUPS = ([1, 2, 3], [4, 5], [6, 7, 8])

#: the site that has received PREPARE when the coordinator fails.
PREPARED_SITE = 5

#: virtual time of the coordinator failure + partitioning.  With the
#: default FixedDelay(1): votes complete at t=2, PREPARE reaches site 5
#: at t=3, so t=3.5 catches exactly the Fig. 3 snapshot.
FAILURE_TIME = 3.5


def example1_catalog() -> ReplicaCatalog:
    """The Fig. 3 database: x at sites 1–4, y at sites 5–8, r=2, w=3."""
    return (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
        .replicated_item("y", sites=[5, 6, 7, 8], r=2, w=3)
        .build()
    )


def example3_catalog() -> ReplicaCatalog:
    """The Fig. 7 database: x and y replicated at sites 2–5, r=2, w=3."""
    return (
        CatalogBuilder()
        .replicated_item("x", sites=[2, 3, 4, 5], r=2, w=3)
        .replicated_item("y", sites=[2, 3, 4, 5], r=2, w=3)
        .build()
    )


@dataclass
class ScenarioResult:
    """Everything a consumer needs from one scenario run."""

    cluster: Cluster
    txn: TxnHandle
    report: ConsistencyReport

    @property
    def outcome(self) -> str:
        """Transaction-level outcome summary."""
        return self.report.outcome

    def states(self) -> dict[int, str]:
        """Local state per live participant at the end of the run."""
        return self.cluster.states(self.txn.txn)


def run_example1_scenario(
    protocol: str,
    seed: int = 0,
    run_to: float | None = None,
    enforce_ignore_rules: bool = True,
) -> ScenarioResult:
    """Replay the Fig. 3 failure under any protocol.

    Used for Example 1 (``protocol="skq"``: everything blocks),
    Example 2 (``protocol="3pc"``: inconsistent termination) and
    Example 4 (``protocol="qtp1"``: G1 and G3 abort and unblock).

    Args:
        protocol: cluster protocol name.
        seed: run seed.
        run_to: stop at this virtual time (default: run to quiescence).
        enforce_ignore_rules: forwarded to the cluster.
    """
    cluster = Cluster(
        example1_catalog(),
        protocol=protocol,
        seed=seed,
        commit_quorum=5,
        abort_quorum=4,
        enforce_ignore_rules=enforce_ignore_rules,
    )
    # Only site 5's PREPARE gets through before the failure (Fig. 3).
    cluster.network.add_filter(
        lambda m: m.mtype.endswith(".prepare") and m.dst != PREPARED_SITE
    )
    txn = cluster.update(origin=1, writes={"x": 10, "y": 20})
    plan = (
        FailurePlan()
        .crash(FAILURE_TIME, 1)
        .partition(FAILURE_TIME, *EXAMPLE1_GROUPS)
    )
    cluster.arm_failures(plan)
    if run_to is None:
        cluster.run()
    else:
        cluster.run_until(run_to)
    return ScenarioResult(cluster, txn, cluster.outcome(txn.txn))


def run_wan_storm(
    protocol: str,
    seed: int = 0,
    n_regions: int = 4,
    sites_per_region: int = 8,
    n_items: int = 8,
    region_replication: int = 3,
    waves: int = 4,
    heal: bool = False,
    workload: "WorkloadSpec | object | None" = None,
    catalog: "ReplicaCatalog | None" = None,
    failures: FailurePlan | None = None,
    probe=None,
) -> ScenarioResult:
    """A 32+-site WAN installation under a region-wise partition storm.

    Builds a geo-replicated catalog over ``n_regions × sites_per_region``
    sites, starts one multi-item update, crashes its coordinator early,
    then drives ``waves`` successive region-aligned partitionings (with
    stragglers) through the in-flight termination.  The scaled-up
    sibling of the Fig. 3 scenario: same questions — who terminates,
    what stays accessible — at installation scale.

    The update comes from a :class:`~repro.workload.spec.WorkloadSpec`
    compiled against the WAN catalog and region layout; the default
    spec (uniform popularity, 1–3 item footprint) replays the
    historical ``random_update`` stream draw-for-draw, and passing
    ``workload`` skews the pick or forces a cross-region origin.

    With ``heal=False`` (default) the storm ends partitioned, so
    availability reflects what termination salvaged *inside* the final
    components (the E11 question).  With ``heal=True`` the network
    heals and the coordinator recovers, so the run asks the E13
    question instead: does every site terminate consistently?

    ``workload`` may also be an already-compiled stream (anything
    without a ``compile`` method, e.g. a
    :class:`~repro.replay.RecordedWorkload`), and ``catalog`` /
    ``failures`` pin the placement and fault schedule — together these
    let the replay tournament re-run a recorded storm under an
    alternative configuration.  ``probe``, if given, sees the finished
    :class:`~repro.db.cluster.Cluster` before the report is assembled.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("wan-storm")
    if catalog is None:
        catalog = memoized_catalog(
            rng,
            ("e21-wan-storm", n_regions, sites_per_region, n_items, region_replication),
            lambda r: wan_catalog(
                r,
                n_regions=n_regions,
                sites_per_region=sites_per_region,
                n_items=n_items,
                region_replication=region_replication,
            ),
        )
    regions = wan_regions(n_regions, sites_per_region)
    all_sites = [s for region in regions for s in region]
    cluster = Cluster(catalog, protocol=protocol, seed=seed, extra_sites=all_sites)
    spec = workload if workload is not None else WorkloadSpec(n_txns=1, footprint=(1, 3))
    compiled = spec.compile(catalog, regions) if hasattr(spec, "compile") else spec
    engine = TrafficEngine(cluster, compiled, rng)
    txn = engine.submit_now()
    if failures is None:
        plan = region_storm_plan(rng, regions, waves=waves, heal=heal)
        plan.crash(rng.uniform(1.0, 2.5), txn.origin)
        if heal:
            last = max(a.time for a in plan.actions)
            plan.recover(last + 5.0, txn.origin)
    else:
        plan = failures
    cluster.arm_failures(plan)
    engine.run_to_quiescence()
    if probe is not None:
        probe(cluster)
    return ScenarioResult(cluster, txn, cluster.outcome(txn.txn))


def run_example3_scenario(
    enforce_ignore_rules: bool,
    protocol: str = "qtp1",
    seed: int = 0,
) -> ScenarioResult:
    """Replay Example 3 / Fig. 7: two coordinators in a healed partition.

    The network partitions into {1,2} | {3,4,5} leaving site 5 in PC,
    then heals "just before [the lower coordinator] starts collecting
    local state information" — with the messages between the two
    coordinators, and from the lower coordinator to the PC site, lost.
    Both coordinators then poll concurrently:

    * the low coordinator (site 2) sees only W states worth r(x) votes
      and runs a PREPARE-TO-ABORT round;
    * the high coordinator (site 5) sees its own PC plus W states worth
      w(x) votes and runs a PREPARE-TO-COMMIT round.

    With ``enforce_ignore_rules=False`` the overlapping participants
    answer both rounds and the transaction terminates inconsistently
    (the paper's counterexample); with the rules enforced, one round
    fails its quorum and termination stays consistent.
    """
    cluster = Cluster(
        example3_catalog(),
        protocol=protocol,
        extra_sites=[1],
        seed=seed,
        enforce_ignore_rules=enforce_ignore_rules,
    )
    cluster.network.add_filter(
        lambda m: m.mtype.endswith(".prepare") and m.dst != PREPARED_SITE
    )
    txn = cluster.update(origin=1, writes={"x": 7, "y": 8})
    plan = (
        FailurePlan()
        .crash(FAILURE_TIME, 1)
        .partition(FAILURE_TIME, [1, 2], [3, 4, 5])
        .heal(4.0)
        # the paper's lost messages: site2 <-> site3 and site2 -> site5
        .sever_both(4.0, 2, 3)
        .sever(4.0, 2, 5)
    )
    cluster.arm_failures(plan)

    def drive_two_coordinators() -> None:
        cluster.sites[2].engine._run_termination(txn.txn)
        cluster.sites[5].engine._run_termination(txn.txn)

    cluster.scheduler.call_at(4.01, drive_two_coordinators)
    cluster.run()
    return ScenarioResult(cluster, txn, cluster.outcome(txn.txn))
