"""Declarative workload specifications.

A :class:`WorkloadSpec` describes *what* a transaction stream looks
like — item popularity (uniform or Zipf), read:write mix, transaction
footprint, arrival process, and an optional cross-region access pattern
— independently of *which* driver runs it.  :meth:`WorkloadSpec.compile`
binds the spec to a concrete catalog (and, for cross-region patterns,
to the :func:`~repro.workload.generators.wan_regions` layout) and
returns a :class:`CompiledWorkload` whose methods are exactly the
generator callables the experiment drivers consume.

Determinism contract
--------------------

Every method draws from the caller's ``random.Random`` in a documented
order, and **the default spec shapes replay the historical generators'
draw sequences bit-for-bit**:

* ``footprint=(1, 1)`` with uniform popularity picks the single item
  with one ``rng.choice`` — the exact stream of the pre-spec E17/E18
  drivers' ``rng.choice(catalog.item_names)``.
* a ranged footprint with uniform popularity draws
  ``rng.randint(lo, min(hi, n_items))`` then ``rng.sample`` — the exact
  stream of :func:`~repro.workload.generators.random_update`.
* the origin is ``rng.choice(sites_of(first_item))`` ("issue where the
  data lives"), unless a cross-region draw redirects it.
* optional draws (read/write split, cross-region split) are only taken
  when their knob is nonzero, so enabling a feature never shifts the
  stream of a spec that does not use it.

This is what lets E18 and E21 run on specs while their committed
``BENCH_*.json`` trajectories stay byte-identical.

Sampler modes
-------------

Zipf item picks support two samplers.  The default, ``sampler="scan"``,
is the historical cumulative-weight scan — one ``rng.random()`` per
draw, O(n) in the catalog size, bit-for-bit the stream every committed
trajectory was pinned on (the weight *total* is precomputed once at
compile time; summation order is unchanged, so the product
``rng.random() * total`` is the exact float the per-draw ``sum`` used
to produce).  ``sampler="alias"`` builds a Walker alias table at
compile time and draws in O(1) — still one ``rng.random()`` per draw —
with rejection-on-alias for without-replacement footprints instead of
the O(n) pop-and-rescan loop.  The alias sampler consumes the RNG
differently (same count of draws for single picks, but different
values feed the selection), so its streams are **not** comparable to
scan streams; it is opt-in precisely so historical trajectories never
shift.  Distribution equivalence of the two samplers is pinned by a
frequency-tolerance property test, and the ``zipf_sampling`` bench case
commits the speedup at ~10^5-item catalogs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import ConfigurationError
from repro.replication.catalog import ReplicaCatalog
from repro.workload.generators import arrival_times

#: item-popularity distributions a spec may choose from.
POPULARITY_MODES = ("uniform", "zipf")

#: arrival processes a spec may choose from.  ``"poisson"`` and
#: ``"fixed"`` are closed-loop (op-count-bounded, arrival times drawn
#: up front); ``"open"`` is the open-loop service mode (duration-
#: bounded, gaps drawn one at a time via ``next_gap``).
ARRIVAL_MODES = ("poisson", "fixed", "open")

#: weighted-pick samplers a spec may choose from.
SAMPLER_MODES = ("scan", "alias")


def build_alias_table(weights: Sequence[float]) -> tuple[list[float], list[int]]:
    """Walker's alias method: O(n) setup for O(1) weighted draws.

    Returns ``(prob, alias)``: cell ``i`` keeps the draw with
    probability ``prob[i]`` and defers to ``alias[i]`` otherwise.  The
    classic small/large worklist construction; cells are filled in
    deterministic index order so the table — hence every draw — is a
    pure function of the weights.
    """
    n = len(weights)
    if n == 0:
        raise ConfigurationError("alias table needs at least one weight")
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("alias table needs a positive weight total")
    prob = [0.0] * n
    alias = list(range(n))
    scaled = [w * n / total for w in weights]
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        g = large.pop()
        prob[s] = scaled[s]
        alias[s] = g
        scaled[g] = (scaled[g] + scaled[s]) - 1.0
        (small if scaled[g] < 1.0 else large).append(g)
    # leftovers are 1.0 up to float round-off
    for i in large:
        prob[i] = 1.0
    for i in small:
        prob[i] = 1.0
    return prob, alias


@dataclass(frozen=True)
class WorkloadOp:
    """One generated client operation.

    ``kind`` is ``"read"`` (a read-only transaction over ``items``) or
    ``"update"`` (read-modify-write over ``items``).  ``origin`` is the
    site the client issues from.
    """

    kind: str
    items: tuple[str, ...]
    origin: int


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative transaction workload.

    Args:
        n_txns: transactions in the stream.
        popularity: ``"uniform"`` or ``"zipf"`` item popularity.  Zipf
            ranks items in ``catalog.item_names`` order: the first item
            is the hottest, with weight ``1 / rank**zipf_s``.
        zipf_s: Zipf skew exponent (larger = more skew).
        read_fraction: fraction of read-only transactions (drawn per
            operation; 0 disables the draw entirely).
        footprint: ``(lo, hi)`` items per update transaction.  ``(1, 1)``
            uses the single-``choice`` stream; a ranged footprint draws
            ``randint`` + ``sample`` (the ``random_update`` stream).
        arrival: ``"poisson"`` (closed stream, exponential spacing,
            ``n_txns`` arrivals), ``"fixed"`` (closed, evenly spaced),
            or ``"open"`` (open-loop service: ``rate`` arrivals per
            virtual second sustained for ``duration`` seconds;
            ``n_txns`` is ignored — the stream is duration-bounded).
        mean_spacing: mean (poisson) or exact (fixed) inter-arrival gap.
        start: virtual time of the first arrival.
        rate: open-loop arrival rate (arrivals per virtual second);
            required iff ``arrival="open"``.
        duration: open-loop stream length in virtual seconds; required
            iff ``arrival="open"``.
        rate_schedule: optional piecewise-constant λ(t) for open
            arrivals, as ``((offset, rate), ...)`` steps — ``offset``
            is virtual seconds since ``start``, the first step must
            begin at 0.0, and each step's rate holds until the next
            offset (the last holds to the end).  Enables flash crowds:
            ``((0.0, 1.0), (40.0, 6.0), (55.0, 1.0))`` is a base load
            with a 15-second spike.  ``None`` (default) keeps the
            constant-``rate`` stream — and its draw sequence —
            untouched.
        cross_region: probability an operation originates in a region
            hosting *no copy* of its first item — cross-region quorum
            traffic.  Requires ``regions`` at compile time; 0 disables
            the draw entirely.
        value_pool: value range for direct-update drivers
            (``rng.randrange(value_pool)`` per written item).
        sampler: Zipf pick implementation — ``"scan"`` (default, the
            historical cumulative scan, O(n) per draw) or ``"alias"``
            (Walker alias table, O(1) per draw, different RNG stream —
            see the module docstring).  Ignored for uniform popularity.
    """

    n_txns: int = 60
    popularity: str = "uniform"
    zipf_s: float = 1.2
    read_fraction: float = 0.0
    footprint: tuple[int, int] = (1, 1)
    arrival: str = "poisson"
    mean_spacing: float = 1.5
    start: float = 1.0
    cross_region: float = 0.0
    value_pool: int = 1000
    sampler: str = "scan"
    rate: float | None = None
    duration: float | None = None
    rate_schedule: tuple[tuple[float, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.n_txns < 1:
            raise ConfigurationError(f"n_txns must be >= 1, got {self.n_txns}")
        if self.popularity not in POPULARITY_MODES:
            raise ConfigurationError(
                f"popularity must be one of {POPULARITY_MODES}, got {self.popularity!r}"
            )
        if self.zipf_s <= 0:
            raise ConfigurationError(f"zipf_s must be positive, got {self.zipf_s}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction {self.read_fraction} outside [0, 1]"
            )
        lo, hi = self.footprint
        if lo < 1 or hi < lo:
            raise ConfigurationError(
                f"footprint must satisfy 1 <= lo <= hi, got {self.footprint}"
            )
        if self.arrival not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"arrival must be one of {ARRIVAL_MODES}, got {self.arrival!r}"
            )
        if self.mean_spacing <= 0:
            raise ConfigurationError(
                f"mean_spacing must be positive, got {self.mean_spacing}"
            )
        if not 0.0 <= self.cross_region <= 1.0:
            raise ConfigurationError(
                f"cross_region {self.cross_region} outside [0, 1]"
            )
        if self.value_pool < 1:
            raise ConfigurationError(f"value_pool must be >= 1, got {self.value_pool}")
        if self.sampler not in SAMPLER_MODES:
            raise ConfigurationError(
                f"sampler must be one of {SAMPLER_MODES}, got {self.sampler!r}"
            )
        if self.arrival == "open":
            if self.rate is None or self.rate <= 0:
                raise ConfigurationError(
                    f"open arrivals need a positive rate, got {self.rate}"
                )
            if self.duration is None or self.duration <= 0:
                raise ConfigurationError(
                    f"open arrivals need a positive duration, got {self.duration}"
                )
        elif self.rate is not None or self.duration is not None:
            raise ConfigurationError(
                "rate/duration only apply to arrival='open', "
                f"got arrival={self.arrival!r}"
            )
        if self.rate_schedule is not None:
            if self.arrival != "open":
                raise ConfigurationError(
                    "rate_schedule only applies to arrival='open', "
                    f"got arrival={self.arrival!r}"
                )
            steps = tuple((float(t), float(r)) for t, r in self.rate_schedule)
            if not steps:
                raise ConfigurationError("rate_schedule cannot be empty")
            if steps[0][0] != 0.0:
                raise ConfigurationError(
                    f"rate_schedule must start at offset 0.0, got {steps[0][0]}"
                )
            for (t0, _), (t1, _) in zip(steps, steps[1:]):
                if t1 <= t0:
                    raise ConfigurationError(
                        "rate_schedule offsets must be strictly increasing, "
                        f"got {t0} then {t1}"
                    )
            if any(r <= 0 for _, r in steps):
                raise ConfigurationError("rate_schedule rates must be positive")
            object.__setattr__(self, "rate_schedule", steps)

    def compile(
        self,
        catalog: ReplicaCatalog,
        regions: Sequence[Sequence[int]] | None = None,
    ) -> "CompiledWorkload":
        """Bind the spec to a catalog (and optionally a region layout)."""
        if self.cross_region > 0 and regions is None:
            raise ConfigurationError(
                "cross_region > 0 needs the wan_regions layout at compile time"
            )
        return CompiledWorkload(self, catalog, regions)

    def describe(self) -> str:
        """One line for experiment logs."""
        parts = [f"n={self.n_txns}", self.popularity]
        if self.popularity == "zipf":
            parts.append(f"s={self.zipf_s:g}")
            if self.sampler != "scan":
                parts.append(self.sampler)
        if self.read_fraction:
            parts.append(f"reads={self.read_fraction:.0%}")
        parts.append(f"footprint={self.footprint[0]}-{self.footprint[1]}")
        if self.arrival == "open":
            parts.append(f"open@{self.rate:g}/s x{self.duration:g}s")
            if self.rate_schedule is not None:
                peak = max(r for _, r in self.rate_schedule)
                parts.append(f"λ(t)[{len(self.rate_schedule)} steps, peak {peak:g}/s]")
        else:
            parts.append(f"{self.arrival}@{self.mean_spacing:g}")
        if self.cross_region:
            parts.append(f"cross-region={self.cross_region:.0%}")
        return " ".join(parts)


class CompiledWorkload:
    """A :class:`WorkloadSpec` bound to a catalog; the drivers' generator.

    Create via :meth:`WorkloadSpec.compile`.  All state is immutable
    after construction; the methods draw only from the ``rng`` passed
    in, so one compiled workload can serve any number of runs.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        catalog: ReplicaCatalog,
        regions: Sequence[Sequence[int]] | None,
    ) -> None:
        self.spec = spec
        self.catalog = catalog
        self._names = catalog.item_names
        if spec.popularity == "zipf":
            self._weights = [
                1.0 / (rank**spec.zipf_s) for rank in range(1, len(self._names) + 1)
            ]
            # the scan sampler's normalizer, summed once here in the
            # same order the per-draw sum() used, so the product
            # rng.random() * total is bit-identical to the historical
            # per-call recomputation.
            self._weight_total = sum(self._weights)
        else:
            self._weights = None
            self._weight_total = 0.0
        if spec.sampler == "alias" and self._weights is not None:
            self._alias_prob, self._alias = build_alias_table(self._weights)
        else:
            self._alias_prob = self._alias = None
        # per-item foreign-site pools for the cross-region pattern: all
        # sites of regions hosting no copy of the item.
        self._foreign: dict[str, list[int]] = {}
        if regions is not None:
            for item in self._names:
                hosts = set(catalog.sites_of(item))
                self._foreign[item] = sorted(
                    site
                    for region in regions
                    if not hosts & set(region)
                    for site in region
                )

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------

    def arrivals(self, rng: random.Random) -> list[float]:
        """The stream's arrival times (poisson draws; fixed draws none).

        Open-arrival specs have no precomputable arrival list — the
        stream is duration-bounded and gaps are drawn one at a time via
        :meth:`next_gap` — so a closed-loop driver handed an open spec
        fails loudly here instead of silently truncating the service.
        """
        spec = self.spec
        if spec.arrival == "open":
            raise ConfigurationError(
                "open-arrival workloads are duration-bounded: drive them "
                "through the open-loop engine (next_gap), not arrivals()"
            )
        if spec.arrival == "poisson":
            return arrival_times(
                rng, spec.n_txns, mean_spacing=spec.mean_spacing, start=spec.start
            )
        return [spec.start + i * spec.mean_spacing for i in range(spec.n_txns)]

    def next_gap(self, rng: random.Random, now: float | None = None) -> float:
        """The next open-loop inter-arrival gap (one ``expovariate``).

        Only meaningful for ``arrival="open"`` specs: the open-loop
        engine draws one gap per arrival event, so the offered stream
        is rate-driven and duration-bounded rather than op-counted.

        With a ``rate_schedule``, ``now`` (the current virtual time)
        selects the step whose rate governs this draw — piecewise-
        constant λ(t) sampled at the arrival instant.  Without one the
        draw is the historical ``expovariate(rate)`` regardless of
        ``now``, so constant-rate streams are byte-identical whether or
        not the caller passes the clock.
        """
        spec = self.spec
        if spec.arrival != "open":
            raise ConfigurationError(
                f"next_gap needs arrival='open', got {spec.arrival!r}"
            )
        if spec.rate_schedule is None:
            return rng.expovariate(spec.rate)
        elapsed = 0.0 if now is None else max(0.0, now - spec.start)
        return rng.expovariate(self.rate_at(elapsed))

    def rate_at(self, elapsed: float) -> float:
        """The scheduled arrival rate ``elapsed`` seconds into the stream.

        Returns the constant ``rate`` when no schedule is set.
        """
        spec = self.spec
        if spec.rate_schedule is None:
            return spec.rate
        rate = spec.rate_schedule[0][1]
        for offset, step_rate in spec.rate_schedule:
            if offset > elapsed:
                break
            rate = step_rate
        return rate

    # ------------------------------------------------------------------
    # item / origin selection
    # ------------------------------------------------------------------

    def _weighted_pick(self, rng: random.Random, weights: list[float], total: float) -> int:
        """Index of one cumulative-scan draw (one ``rng.random()``).

        ``total`` is the caller's normalizer: the precomputed full-list
        total for single picks, the shrunk working list's ``sum`` for
        the without-replacement loop — either way the exact float the
        historical per-call ``sum(weights)`` produced.
        """
        x = rng.random() * total
        acc = 0.0
        for i, weight in enumerate(weights):
            acc += weight
            if x < acc:
                return i
        return len(weights) - 1

    def _alias_pick(self, rng: random.Random) -> int:
        """Index of one alias-table draw (one ``rng.random()``, O(1)).

        The standard one-uniform trick: the integer part of
        ``u * n`` picks the cell, the fractional part decides between
        the cell and its alias.
        """
        u = rng.random() * len(self._alias_prob)
        i = int(u)
        return i if (u - i) < self._alias_prob[i] else self._alias[i]

    def pick_item(self, rng: random.Random) -> str:
        """One item by popularity (uniform: one ``choice``; zipf: one
        ``random``)."""
        if self._weights is None:
            return rng.choice(self._names)
        if self._alias_prob is not None:
            return self._names[self._alias_pick(rng)]
        return self._names[self._weighted_pick(rng, self._weights, self._weight_total)]

    def pick_items(self, rng: random.Random) -> list[str]:
        """An update transaction's item footprint, first item first."""
        lo, hi = self.spec.footprint
        if (lo, hi) == (1, 1):
            return [self.pick_item(rng)]
        n = rng.randint(lo, min(hi, len(self._names)))
        if self._weights is None:
            return rng.sample(self._names, n)
        if self._alias_prob is not None:
            # rejection-on-alias: O(1) draws, retried on duplicates —
            # for n << catalog size this beats rebuilding per draw; a
            # hot item that is already picked just re-rolls.  The draw
            # budget bounds the degenerate regime (n a large fraction
            # of a skewed catalog, where the unpicked tail carries
            # vanishing mass and rejection would spin); exhausting it
            # falls back to the bounded scan loop for the remainder —
            # still deterministic, since the budget spends a fixed
            # number of draws before the switch.
            names = self._names
            picked: list[str] = []
            seen: set[int] = set()
            budget = 16 * n + 64
            while len(picked) < n and budget:
                budget -= 1
                i = self._alias_pick(rng)
                if i not in seen:
                    seen.add(i)
                    picked.append(names[i])
            if len(picked) < n:
                rest_names = [nm for j, nm in enumerate(names) if j not in seen]
                rest_weights = [w for j, w in enumerate(self._weights) if j not in seen]
                for __ in range(n - len(picked)):
                    i = self._weighted_pick(rng, rest_weights, sum(rest_weights))
                    picked.append(rest_names.pop(i))
                    rest_weights.pop(i)
            return picked
        names = list(self._names)
        weights = list(self._weights)
        picked = []
        for __ in range(n):  # weighted, without replacement
            i = self._weighted_pick(rng, weights, sum(weights))
            picked.append(names.pop(i))
            weights.pop(i)
        return picked

    def pick_origin(self, rng: random.Random, items: Sequence[str]) -> int:
        """The issuing site for ``items``.

        Default: a random host of the first item ("issue where the data
        lives").  With ``cross_region`` enabled, first one draw decides
        whether this operation crosses regions; if it does (and some
        region hosts no copy), the origin comes from such a region and
        every quorum the transaction needs is remote.
        """
        item = items[0]
        if self.spec.cross_region > 0:
            spanning = rng.random() < self.spec.cross_region
            foreign = self._foreign.get(item, [])
            if spanning and foreign:
                return rng.choice(foreign)
        return rng.choice(self.catalog.sites_of(item))

    # ------------------------------------------------------------------
    # the driver-facing sampler
    # ------------------------------------------------------------------

    def next_op(self, rng: random.Random) -> WorkloadOp:
        """The next client operation (read/update split, items, origin)."""
        spec = self.spec
        if spec.read_fraction > 0 and rng.random() < spec.read_fraction:
            items = [self.pick_item(rng)]
            return WorkloadOp("read", tuple(items), self.pick_origin(rng, items))
        items = self.pick_items(rng)
        return WorkloadOp("update", tuple(items), self.pick_origin(rng, items))

    def next_update(self, rng: random.Random) -> tuple[int, dict[str, Any]]:
        """A direct update: ``(origin, item -> new value)``.

        With a uniform ranged footprint and no cross-region pattern this
        is draw-for-draw :func:`~repro.workload.generators.random_update`
        (the E21 stream).
        """
        items = self.pick_items(rng)
        origin = self.pick_origin(rng, items)
        return origin, {item: rng.randrange(self.spec.value_pool) for item in items}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledWorkload {self.spec.describe()} items={len(self._names)}>"
