"""Coordinator election (system S7; Garcia-Molina [7]).

When the termination protocol is invoked, "a coordinator will first be
elected in each partition by an election protocol" (paper §3).  The
paper explicitly does **not** require the elected coordinator to be
unique per partition — Example 3 is built on two coordinators arising
in one (healed) partition — so the election here is best-effort: it
usually yields the highest-id reachable participant, and the protocols
above it are proven safe regardless.
"""

from repro.election.bully import ElectionMixin

__all__ = ["ElectionMixin"]
