"""Bully-style election scoped to one transaction's participant set.

Protocol (per transaction):

1. A site whose coordinator watchdog fires sends ``elect.inquiry`` to
   every *higher-id* participant and waits ``2T``.
2. Any higher-id recipient replies ``elect.alive`` and starts its own
   election (it may become the coordinator).
3. If the initiator hears no ``elect.alive`` within ``2T``, it declares
   itself coordinator and invokes the termination protocol; otherwise
   it defers, arming a fresh watchdog in case the higher site dies too.

This intentionally allows multiple simultaneous coordinators — across
partitions always, and within one partition when messages are lost or
the partition heals mid-election (Example 3's scenario).  Safety is the
termination protocol's job; the election only provides liveness.

``ElectionMixin`` is mixed into the protocol engines; it expects the
host class to provide ``node``, ``_records``, a ``_T`` bound, and a
``_run_termination(txn)`` entry point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.message import Message
from repro.protocols.states import TxnState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.base import TxnRecord

#: hard cap on election rounds within one connectivity epoch; prevents
#: livelock under persistent message loss.  A kick (connectivity change)
#: resets the count.
MAX_ELECTION_ROUNDS = 8


class ElectionMixin:
    """Election behaviour shared by every protocol engine."""

    def _install_election_handlers(self) -> None:
        self.node.on("elect.inquiry", self._on_elect_inquiry)
        self.node.on("elect.alive", self._on_elect_alive)

    # ------------------------------------------------------------------
    # initiating
    # ------------------------------------------------------------------

    def start_election(self, txn: str) -> None:
        """Begin an election round for an undecided transaction.

        No-op while this site is already coordinating a termination
        attempt for the transaction: the attempt's own phase timers
        drive progress, and re-entering would orphan the attempt.
        """
        record = self._records.get(txn)
        if record is None or record.decided or record.blocked or record.terminating:
            return
        if record.election_rounds >= MAX_ELECTION_ROUNDS:
            if not record.blocked:
                record.blocked = True
                self.node.trace("blocked", txn, reason="election-rounds-exhausted")
            return
        record.election_rounds += 1
        record.electing = True
        record.heard_higher = False
        higher = [s for s in record.participants if s > self.node.node_id]
        self.node.trace("election", txn, round=record.election_rounds, higher=higher)
        self.node.multicast(higher, "elect.inquiry", txn)
        window = 2 * self._T * (1 + 1e-6) if higher else 0.0
        record.set_timer(
            self.node, window, self._election_window_closed, txn, label="elect-window"
        )

    def _election_window_closed(self, txn: str) -> None:
        record = self._records.get(txn)
        if record is None or record.decided or not record.electing:
            return
        record.electing = False
        if record.heard_higher:
            # Defer to the higher site; if it never follows through,
            # the watchdog re-triggers a fresh election.
            record.set_timer(
                self.node,
                5 * self._T,
                self.start_election,
                txn,
                label="elect-defer-watchdog",
            )
            return
        self.node.trace("coordinator", txn, role="termination")
        self._run_termination(txn)

    # ------------------------------------------------------------------
    # responding
    # ------------------------------------------------------------------

    def _on_elect_inquiry(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None:
            # We are not (or no longer) a participant that can help;
            # stay silent so the initiator takes over.
            return
        self.node.send(msg.src, "elect.alive", msg.txn)
        if record.decided:
            # Share the decision instead of re-running termination.
            outcome = "commit" if record.state is TxnState.C else "abort"
            self.node.send(msg.src, f"{self.family}.{outcome}", msg.txn)
            return
        if not record.electing and not record.terminating:
            self.start_election(msg.txn)

    def _on_elect_alive(self, msg: Message) -> None:
        record = self._records.get(msg.txn)
        if record is None or record.decided:
            return
        record.heard_higher = True
