"""Benchmark-regression subsystem — performance as a committed artifact.

The repo's performance memory lives in ``BENCH_<case>.json`` files at
the repository root.  Each records, for one representative workload
driven through the PR 1 sweep engine:

* **deterministic counters** (messages sent/delivered, WAL records
  forced, commits/aborts, scheduler events) — byte-stable per seed and
  per worker count, compared *exactly* by ``bench diff``;
* **wall-clock timing** with a :func:`~repro.experiments.stats.mean_ci`
  interval — machine noise, compared only within a configurable ratio;
* for the A/B microbenches (``net_deliver_fanout``, ``wal_append``,
  ``trace_record``, ``partition_churn``, ``suite_warm_pool``), the
  **legacy-vs-optimized speedup** that motivated the optimized hot
  path, so the win is pinned in-tree and regressions are visible in
  review.

Workflow::

    python -m repro.bench diff --check      # the CI gate
    python -m repro.bench update            # re-baseline after a change
    python -m repro.bench run --out DIR     # fresh artifacts (CI upload)

See ``src/repro/bench/README.md`` for the baseline-update etiquette.
"""

from repro.bench.cases import default_suite
from repro.bench.diff import (
    DEFAULT_TIME_TOLERANCE,
    CaseDiff,
    compare_case,
    diff_against_baselines,
    markdown_summary,
)
from repro.bench.suite import (
    BASELINE_PREFIX,
    SCHEMA_VERSION,
    BaselineStore,
    BenchCase,
    BenchError,
    BenchSuite,
    BenchTimeout,
    deterministic_payload,
    encode,
)

__all__ = [
    "BASELINE_PREFIX",
    "DEFAULT_TIME_TOLERANCE",
    "SCHEMA_VERSION",
    "BaselineStore",
    "BenchCase",
    "BenchError",
    "BenchSuite",
    "BenchTimeout",
    "CaseDiff",
    "compare_case",
    "default_suite",
    "deterministic_payload",
    "diff_against_baselines",
    "encode",
    "markdown_summary",
]
