"""The default benchmark cases.

Each task function is a module-level callable (so it pickles into pool
workers) that builds its own simulator from its seed and returns::

    {"counters": {...deterministic...}, "timing": {...wall seconds...}}

Representative workloads covered:

* ``scheduler_drain`` — the event-queue hot path: schedule / cancel /
  drain, both handle-carrying and ``call_fixed`` entries.
* ``commit_mix`` — a 2PC / 3PC / QTP commit mix through a mid-run
  partition episode (the paper's protocol spread, E17-flavoured).
* ``heavy_workload`` — E18: Poisson traffic through repeated partition
  episodes (:func:`~repro.experiments.workload_study.run_heavy_workload`).
* ``wan_storm`` — E21: 32-site WAN region storms
  (:func:`~repro.workload.scenarios.run_wan_storm`).
* ``skewed_contention`` / ``read_mostly`` / ``cross_region_txn`` /
  ``elastic_join`` — E22–E25: the :class:`~repro.workload.spec.WorkloadSpec`
  scenario drivers (Zipf skew, read-dominated mix, cross-region WAN
  transactions, elastic membership under a partition storm), pinned
  from day one (:mod:`repro.experiments.workload_scenarios`).
* ``open_loop_service`` — E26: one open-loop service interval at a
  sustained arrival rate through a partition episode, with streaming
  p50/p99/p999 latency counters
  (:func:`~repro.experiments.service_study.run_open_loop_service`).
* ``ramp_ceiling`` — E26 ramp: step the arrival rate across fresh
  service intervals until the p99 knee or the abort-rate SLO trips;
  pins the discovered throughput ceiling
  (:func:`~repro.experiments.service_study.discover_ceiling`).
* ``rolling_upgrade`` — E27: wave-by-wave graceful leave/rejoin under
  live closed-loop traffic with a retrying client
  (:func:`~repro.experiments.resilience_study.run_rolling_upgrade`).
* ``flash_crowd`` — E28: a piecewise-constant arrival-rate surge
  through the adaptive admission controller
  (:func:`~repro.experiments.resilience_study.run_flash_crowd`).
* ``gray_failure`` — a degraded (slow-not-dead) site plus a flapping
  link under an open-loop service
  (:func:`~repro.experiments.resilience_study.run_gray_failure`).
* ``lock_probe`` — A/B microbench of the vote-hook lock probe: the
  historical allocating ``all(compatible_with...)`` holder scan vs the
  exclusive-holder counter (two integer tests); grant decisions are
  identical on both arms, only the wall time may differ.
* ``net_deliver_fanout`` — A/B microbench of the ``Network`` fan-out
  path: legacy per-message connectivity evaluation vs the
  partition-epoch reachable-peer cache.
* ``wal_append`` — A/B microbench of the WAL append path: the exact
  per-site ``force`` sequences harvested from ``run_heavy_workload``,
  replayed against the legacy scan-per-decision log and the
  group-commit/indexed log.
* ``trace_record`` — A/B microbench of the trace recorder: the legacy
  list-of-dataclasses store vs the columnar/slotted store with lazy
  materialization and indexed queries.
* ``partition_churn`` — A/B microbench of storm-heavy partition plans:
  per-event ``PartitionView`` reconstruction vs interned views.
* ``suite_warm_pool`` — A/B microbench of the sweep executor: a pool
  per sweep vs one persistent warm pool across a campaign of sweeps.
* ``net_fanout_flyweight`` — A/B microbench of the fan-out allocation
  layer: legacy per-destination ``Message`` construction vs the shared
  :class:`~repro.net.message.MessageTemplate` envelope with thin
  per-destination stamps.  Only the send side is timed — that is the
  path the flyweight changes — while delivery still runs for counters.
* ``zipf_sampling`` — A/B microbench of the Zipf item sampler at a
  ~10^5-item catalog: the historical O(n) cumulative scan
  (``sampler="scan"``) vs the O(1) Walker alias table
  (``sampler="alias"``).  The samplers draw the RNG differently by
  design, so counters differ *across arms* (each arm is deterministic;
  distribution equivalence is pinned by a property test).
* ``recovery_replay`` — A/B microbench of crash recovery's data
  replay: the legacy full-WAL scan vs the per-item newest-``apply``
  index, on logs harvested from a heavy E18 run and replayed at 1x and
  4x length (the committed timing rows show the scan growing with log
  length while the indexed replay stays flat).
* ``catalog_memo`` — A/B microbench of per-trial catalog construction
  vs :func:`~repro.workload.generators.memoized_catalog` (state-capture
  memo; the RNG-probe counters prove the caller's stream is identical
  on both arms).
* ``sweep_streaming`` — A/B microbench of the extreme-scale sweep
  backend at 10^5 cells: the classic accumulate-all-rows path vs the
  streaming ``TeeSink(JsonlSink, ReducerSink)`` pipeline over one
  :class:`~repro.engine.shared.SharedPayload` catalog.  Counters (row
  digest + exact aggregates) are byte-identical across arms; the
  committed ``rows_per_sec`` derived timing is the streaming arm's
  throughput.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.suite import BenchCase, BenchSuite
from repro.common.errors import QuorumUnreachableError, TransactionAborted
from repro.concurrency.locks import LockManager, LockMode
from repro.db.cluster import Cluster
from repro.engine.aggregate import CountAcc, MeanAcc, QuantileDigest, RowReducer
from repro.engine.executor import SweepRunner, run_sweep, worker_cache
from repro.engine.shared import SharedPayload
from repro.engine.sink import JsonlSink, ReducerSink, TeeSink, iter_stream_rows
from repro.engine.spec import SweepSpec
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer
from repro.storage.wal import WriteAheadLog
from repro.workload.generators import random_catalog, random_partition_groups


def _cluster_counters(cluster: Cluster) -> dict[str, Any]:
    """The deterministic network / WAL / scheduler tallies of a run."""
    net = cluster.network
    return {
        "messages_sent": net.sent,
        "messages_delivered": net.delivered,
        "messages_dropped": net.dropped,
        "events_run": cluster.scheduler.events_run,
        "wal_forced": sum(site.wal.forced for site in cluster.sites.values()),
        "wal_flushes": sum(site.wal.flushes for site in cluster.sites.values()),
    }


# ----------------------------------------------------------------------
# scheduler drain
# ----------------------------------------------------------------------


def scheduler_drain_trial(seed: int, n_events: int = 20_000) -> dict[str, Any]:
    """Schedule ``n_events`` (hash-scattered times), cancel a third,
    add a ``call_fixed`` batch, drain — the PR 1 scheduler mix plus the
    non-cancellable fast entries deliveries now use."""
    sched = Scheduler()
    handles = [
        sched.call_at(float((i * 2654435761 + seed) % 997), _noop) for i in range(n_events)
    ]
    for handle in handles[::3]:
        handle.cancel()
    for i in range(n_events // 2):
        sched.call_fixed(float((i * 40503 + seed) % 997), _noop)
    t0 = time.perf_counter()
    sched.run()
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "events_run": sched.events_run,
            "pending_after": sched.pending,
            "final_now": sched.now,
        },
        "timing": {"wall_s": wall},
    }


def _noop() -> None:
    """Scheduler filler event."""


# ----------------------------------------------------------------------
# commit mix
# ----------------------------------------------------------------------


def commit_mix_trial(seed: int, protocol: str, n_txns: int = 16) -> dict[str, Any]:
    """Drive ``n_txns`` single-item updates through one partition
    episode under ``protocol`` and tally outcomes and traffic."""
    registry = RngRegistry(seed)
    rng = registry.stream("commit-mix")
    catalog = random_catalog(rng, n_sites=6, n_items=4, replication=3)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    groups = random_partition_groups(rng, cluster.network.sites, 2)
    cluster.arm_failures(FailurePlan().partition(25.0, *groups).heal(60.0))

    outcomes: dict[str, str] = {}

    def submit_one(index: int) -> None:
        item = rng.choice(catalog.item_names)
        origin = rng.choice(catalog.sites_of(item))
        if not cluster.sites[origin].alive:
            return
        try:
            handle = cluster.update(origin, {item: index})
        except (QuorumUnreachableError, TransactionAborted):
            outcomes[f"client-{index}"] = "client-aborted"
            return
        outcomes[handle.txn] = "submitted"

    t0 = time.perf_counter()
    for i in range(n_txns):
        cluster.scheduler.call_at(1.0 + i * 5.0, submit_one, i)
    cluster.run()
    wall = time.perf_counter() - t0

    tally = {"commit": 0, "abort": 0, "blocked": 0, "client-aborted": 0}
    for txn, status in outcomes.items():
        if status == "client-aborted":
            tally["client-aborted"] += 1
            continue
        verdict = cluster.outcome(txn).outcome
        tally[verdict] = tally.get(verdict, 0) + 1
    counters = {**tally, **_cluster_counters(cluster)}
    return {"counters": counters, "timing": {"wall_s": wall}}


# ----------------------------------------------------------------------
# E18 heavy workload
# ----------------------------------------------------------------------


def heavy_workload_trial(
    seed: int, protocol: str, n_txns: int = 120, n_sites: int = 12
) -> dict[str, Any]:
    """One E18 heavy-traffic run; counters from the workload result plus
    the cluster probe (network / WAL / scheduler tallies)."""
    from repro.experiments.workload_study import run_heavy_workload

    harvested: dict[str, Any] = {}
    t0 = time.perf_counter()
    result = run_heavy_workload(
        protocol,
        seed=seed,
        n_txns=n_txns,
        n_sites=n_sites,
        probe=lambda cluster: harvested.update(_cluster_counters(cluster)),
    )
    wall = time.perf_counter() - t0
    counters = {
        "submitted": result.submitted,
        "committed": result.committed,
        "client_aborted": result.client_aborted,
        "protocol_aborted": result.protocol_aborted,
        "blocked": result.blocked,
        "serializable": result.serializable,
        **harvested,
    }
    return {"counters": counters, "timing": {"wall_s": wall}}


# ----------------------------------------------------------------------
# E21 WAN region storm
# ----------------------------------------------------------------------


def wan_storm_trial(seed: int, protocol: str, heal: bool) -> dict[str, Any]:
    """One E21 region-storm run at full installation scale."""
    from repro.workload.scenarios import run_wan_storm

    t0 = time.perf_counter()
    scenario = run_wan_storm(protocol, seed=seed, heal=heal)
    wall = time.perf_counter() - t0
    counters = {
        "outcome": scenario.outcome,
        "decided_sites": len(scenario.cluster.tracer.decisions(scenario.txn.txn)),
        **_cluster_counters(scenario.cluster),
    }
    return {"counters": counters, "timing": {"wall_s": wall}}


# ----------------------------------------------------------------------
# E22–E25 workload-spec scenarios
# ----------------------------------------------------------------------


def skewed_contention_trial(
    seed: int, protocol: str, n_txns: int = 80, zipf_s: float = 1.4
) -> dict[str, Any]:
    """One E22 Zipf-contention run (hot-item conflicts are the point)."""
    from repro.experiments.workload_scenarios import run_skewed_contention

    t0 = time.perf_counter()
    counters = run_skewed_contention(protocol, seed=seed, n_txns=n_txns, zipf_s=zipf_s)
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def read_mostly_trial(
    seed: int, protocol: str, n_txns: int = 100, read_fraction: float = 0.8
) -> dict[str, Any]:
    """One E23 read-dominated-mix run."""
    from repro.experiments.workload_scenarios import run_read_mostly

    t0 = time.perf_counter()
    counters = run_read_mostly(
        protocol, seed=seed, n_txns=n_txns, read_fraction=read_fraction
    )
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def cross_region_trial(
    seed: int, protocol: str, n_txns: int = 40, cross_region: float = 0.6
) -> dict[str, Any]:
    """One E24 cross-region WAN-transaction run."""
    from repro.experiments.workload_scenarios import run_cross_region

    t0 = time.perf_counter()
    counters = run_cross_region(
        protocol, seed=seed, n_txns=n_txns, cross_region=cross_region
    )
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def elastic_join_trial(
    seed: int, protocol: str, n_txns: int = 60, n_joins: int = 3
) -> dict[str, Any]:
    """One E25 elastic-join-under-storm run."""
    from repro.experiments.workload_scenarios import run_elastic_join

    t0 = time.perf_counter()
    counters = run_elastic_join(protocol, seed=seed, n_txns=n_txns, n_joins=n_joins)
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


# ----------------------------------------------------------------------
# E26 open-loop service + SLO ramp
# ----------------------------------------------------------------------


def open_loop_service_trial(
    seed: int, protocol: str, rate: float = 1.5, duration: float = 120.0, n_sites: int = 9
) -> dict[str, Any]:
    """One E26 open-loop service interval; counters from the service
    result (offered / shed / latency percentiles) plus the cluster
    probe (network / WAL / scheduler tallies)."""
    from repro.experiments.service_study import run_open_loop_service

    harvested: dict[str, Any] = {}
    t0 = time.perf_counter()
    result = run_open_loop_service(
        protocol,
        seed=seed,
        rate=rate,
        duration=duration,
        n_sites=n_sites,
        probe=lambda cluster: harvested.update(_cluster_counters(cluster)),
    )
    wall = time.perf_counter() - t0
    counters = {**result.counters(), **harvested}
    return {"counters": counters, "timing": {"wall_s": wall}}


def ramp_ceiling_trial(
    seed: int,
    protocol: str,
    rates: list[float] | None = None,
    duration: float = 60.0,
) -> dict[str, Any]:
    """One E26 ramp-discovery sweep; counters pin the discovered
    ceiling, what tripped it, and the per-step p99 / committed / shed
    trajectories."""
    from repro.experiments.service_study import discover_ceiling

    t0 = time.perf_counter()
    result = discover_ceiling(
        protocol,
        seed=seed,
        rates=tuple(rates) if rates is not None else (0.5, 1.0, 2.0, 4.0, 8.0),
        duration=duration,
    )
    return {"counters": result.counters(), "timing": {"wall_s": time.perf_counter() - t0}}


# ----------------------------------------------------------------------
# E27/E28 resilience scenarios
# ----------------------------------------------------------------------


def rolling_upgrade_trial(
    seed: int, protocol: str, n_txns: int = 70, waves: int = 3
) -> dict[str, Any]:
    """One E27 rolling-upgrade run (graceful leave/rejoin waves under
    live retrying traffic)."""
    from repro.experiments.resilience_study import run_rolling_upgrade

    t0 = time.perf_counter()
    counters = run_rolling_upgrade(protocol, seed=seed, n_txns=n_txns, waves=waves)
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def flash_crowd_trial(
    seed: int,
    protocol: str,
    duration: float = 120.0,
    surge_start: float = 40.0,
    surge_length: float = 30.0,
) -> dict[str, Any]:
    """One E28 flash-crowd run (rate-schedule surge through the
    adaptive admission window)."""
    from repro.experiments.resilience_study import run_flash_crowd

    t0 = time.perf_counter()
    counters = run_flash_crowd(
        protocol,
        seed=seed,
        duration=duration,
        surge_start=surge_start,
        surge_length=surge_length,
    )
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def gray_failure_trial(
    seed: int,
    protocol: str,
    rate: float = 1.5,
    duration: float = 120.0,
    episode_start: float = 30.0,
    episode_length: float = 40.0,
) -> dict[str, Any]:
    """One gray-failure service run (degraded site + flapping link)."""
    from repro.experiments.resilience_study import run_gray_failure

    t0 = time.perf_counter()
    counters = run_gray_failure(
        protocol,
        seed=seed,
        rate=rate,
        duration=duration,
        episode_start=episode_start,
        episode_length=episode_length,
    )
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


# ----------------------------------------------------------------------
# lock-probe microbench
# ----------------------------------------------------------------------


def lock_probe_trial(
    seed: int, tracked: bool, n_readers: int = 400, probes: int = 20_000, n_items: int = 12
) -> dict[str, Any]:
    """Vote-hook lock probes against heavily shared items.

    ``n_readers`` transactions hold shared locks on every item, then a
    prober replays a pre-drawn script of ``try_acquire`` calls (mostly
    shared, a quarter exclusive).  The ``tracked`` grid axis selects
    the exclusive-holder counter (``True``) or the historical
    ``legacy_probe`` allocating compatibility scan (``False``), which
    walks all ``n_readers`` holders per shared probe.  The script is
    drawn before the clock starts, so grant/refuse counters must be
    identical on both arms — only the wall time may differ.
    """
    rng = RngRegistry(seed).stream("lock-probe")
    manager = LockManager(0, legacy_probe=not tracked)
    items = [f"item-{i}" for i in range(n_items)]
    script = [(rng.choice(items), rng.random() < 0.25) for _ in range(probes)]

    granted = refused = 0
    t0 = time.perf_counter()
    for reader in range(n_readers):
        for item in items:
            manager.try_acquire(f"reader-{reader}", item, LockMode.SHARED)
    for item, exclusive in script:
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        if manager.try_acquire("prober", item, mode):
            granted += 1
            manager.release_all("prober")
        else:
            refused += 1
    for reader in range(n_readers):
        manager.release_all(f"reader-{reader}")
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "granted": granted,
            "refused": refused,
            "probes": probes,
            "readers": n_readers,
            "table_empty": not manager._items,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# Network.deliver fan-out microbench
# ----------------------------------------------------------------------


class _Sink(Node):
    """Minimal node that swallows bench pings."""

    def __init__(self, node_id: int, network: Network) -> None:
        super().__init__(node_id, network)
        self.on("bench.ping", _swallow)


def _swallow(msg: Any) -> None:
    """Bench ping handler."""


def net_fanout_trial(
    seed: int, cached: bool, n_sites: int = 24, rounds: int = 40
) -> dict[str, Any]:
    """Broadcast storms through connected, partitioned and crash phases.

    The ``cached`` grid axis selects the legacy per-message connectivity
    evaluation (``False``) or the partition-epoch reachable-peer cache
    (``True``); counters must be identical on both sides — only the
    wall time may differ.  The phase changes (partition, crash, heal,
    recover) deliberately churn the cache so invalidation cost is part
    of the measurement.
    """
    sched = Scheduler()
    network = Network(
        sched, Tracer(capacity=0), RngRegistry(seed), fanout_cache=cached
    )
    nodes = [_Sink(i, network) for i in range(n_sites)]
    third = n_sites // 3
    everyone = list(range(n_sites))

    def storm() -> None:
        for node in nodes:
            if node.alive:
                node.broadcast(everyone, "bench.ping", "T")
        sched.run()

    t0 = time.perf_counter()
    for _ in range(rounds):
        # phase 1: fully connected fan-out (the common protocol case,
        # weighted double — most protocol traffic runs unpartitioned)
        storm()
        storm()
        # phase 2: two components — cross-component fan-out drops
        network.set_partition([everyone[: 2 * third], everyone[2 * third :]])
        storm()
        # phase 3: crashes + a three-way split mid-flight
        network.crash_site(0)
        network.crash_site(n_sites - 1)
        network.set_partition([everyone[:third], everyone[third : 2 * third], everyone[2 * third :]])
        storm()
        # phase 4: heal and recover — cache busted again
        network.heal()
        network.recover_site(0)
        network.recover_site(n_sites - 1)
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "sent": network.sent,
            "delivered": network.delivered,
            "dropped": network.dropped,
            "events_run": sched.events_run,
            "epochs": network.epoch,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# fan-out flyweight microbench
# ----------------------------------------------------------------------


def net_fanout_flyweight_trial(
    seed: int, flyweight: bool, n_sites: int = 32, rounds: int = 60
) -> dict[str, Any]:
    """Time the send side of broadcast storms: Message-per-dst vs stamps.

    The ``flyweight`` grid axis selects legacy per-destination
    :class:`~repro.net.message.Message` construction (``False``) or the
    shared-envelope :class:`~repro.net.message.MessageTemplate` stamps
    (``True``).  Only the ``multicast`` calls are timed — the flyweight
    changes the allocation layer of the send path, nothing downstream —
    but every round still drains the scheduler so delivery counters pin
    behavioural equivalence.  A partitioned phase exercises the drop
    path's stamp handling too.
    """
    sched = Scheduler()
    network = Network(
        sched, Tracer(capacity=0), RngRegistry(seed), flyweight=flyweight
    )
    nodes = [_Sink(i, network) for i in range(n_sites)]
    everyone = list(range(n_sites))
    half = n_sites // 2
    wall = 0.0

    def storm() -> float:
        t0 = time.perf_counter()
        for node in nodes:
            node.multicast(everyone, "bench.ping", "T")
        return time.perf_counter() - t0

    for _ in range(rounds):
        wall += storm()
        wall += storm()
        network.set_partition([everyone[:half], everyone[half:]])
        wall += storm()
        network.heal()
        sched.run()
    return {
        "counters": {
            "sent": network.sent,
            "delivered": network.delivered,
            "dropped": network.dropped,
            "events_run": sched.events_run,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# Zipf sampling microbench
# ----------------------------------------------------------------------


def _zipf_bench_catalog(n_items: int) -> Any:
    """A huge synthetic catalog (pure — no RNG, so worker-cacheable).

    Every item shares one frozen copies mapping (three sites, one vote
    each) to keep 10^5 :class:`ItemConfig` rows cheap; names are
    zero-padded so rank order equals name order.
    """
    from repro.replication.catalog import ItemConfig, ReplicaCatalog

    copies = {1: 1, 2: 1, 3: 1}
    return ReplicaCatalog(
        ItemConfig(f"i{i:07d}", copies, 2, 2) for i in range(n_items)
    )


def zipf_sampling_trial(
    seed: int,
    alias: bool,
    n_items: int = 100_000,
    draws: int = 240,
    fp_draws: int = 40,
    zipf_s: float = 1.1,
) -> dict[str, Any]:
    """Draw Zipf item picks and footprints from a very large catalog.

    The ``alias`` grid axis selects the historical cumulative scan
    (``False``, O(n) per draw — and O(n) list copies per footprint) or
    the Walker alias table (``True``, O(1) per draw with
    rejection-on-alias footprints).  Compilation is inside the timed
    region, so the alias arm pays its table build honestly.  Counters
    are deterministic per arm but differ across arms — the two samplers
    consume the RNG differently by design; their *distributions* agree
    (see ``tests/property/test_prop_workload.py``).
    """
    from repro.workload.spec import WorkloadSpec

    catalog = worker_cache(
        ("zipf-bench-catalog", n_items), lambda: _zipf_bench_catalog(n_items)
    )
    rng = RngRegistry(seed).stream("zipf-sampling")
    spec = WorkloadSpec(
        popularity="zipf",
        zipf_s=zipf_s,
        footprint=(2, 4),
        sampler="alias" if alias else "scan",
    )
    t0 = time.perf_counter()
    compiled = spec.compile(catalog)
    head = 0  # draws landing on the ten hottest ranks
    index_sum = 0
    for _ in range(draws):
        rank = int(compiled.pick_item(rng)[1:])
        index_sum += rank
        head += rank < 10
    fp_items = 0
    fp_index_sum = 0
    for _ in range(fp_draws):
        picked = compiled.pick_items(rng)
        fp_items += len(picked)
        fp_index_sum += sum(int(name[1:]) for name in picked)
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "draws": draws,
            "head_hits": head,
            "index_sum": index_sum,
            "fp_draws": fp_draws,
            "fp_items": fp_items,
            "fp_index_sum": fp_index_sum,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# recovery replay microbench
# ----------------------------------------------------------------------


def recovery_replay_trial(
    seed: int,
    indexed: bool,
    n_txns: int = 260,
    n_sites: int = 8,
    replays: int = 5,
) -> dict[str, Any]:
    """Replay crash recovery against WALs harvested from a heavy run.

    A deterministic E18 run is executed once per seed and every site's
    ``force`` sequence is harvested; the sequences are then appended
    into fresh logs at 1x and 4x length (the 4x log repeats the
    sequence, modelling a longer history whose re-applied versions are
    stale).  Only :func:`~repro.storage.recovery.replay_data` against
    fresh version-0 stores is timed: the ``indexed`` grid axis selects
    the legacy full scan (``False``, O(len(wal))) or the per-item
    newest-``apply`` index (``True``, O(items touched)).  Both arms
    must leave byte-identical stores — the checksum counters pin it —
    while the install counts legitimately differ (the scan walks each
    item up its version ladder; the index jumps to the newest).
    """
    from repro.storage.recovery import replay_data
    from repro.storage.store import ReplicaStore

    def harvest_sequences() -> dict[int, list[Any]]:
        from repro.experiments.workload_study import run_heavy_workload

        sequences: dict[int, list[Any]] = {}

        def harvest(cluster: Cluster) -> None:
            for sid, site in cluster.sites.items():
                sequences[sid] = [(r.txn, r.kind, dict(r.payload)) for r in site.wal]

        run_heavy_workload(
            "qtp1", seed=seed, n_txns=n_txns, n_sites=n_sites, probe=harvest
        )
        return sequences

    # pure function of (seed, shape) and identical on both grid arms,
    # so one harvest run serves every arm and repeat in this worker
    sequences = worker_cache(
        ("recovery-replay-sequences", seed, n_txns, n_sites), harvest_sequences
    )

    def build_wal(sid: int, scale: int) -> WriteAheadLog:
        wal = WriteAheadLog(sid)
        for _ in range(scale):
            for txn, kind, payload in sequences[sid]:
                wal.force(txn, kind, **payload)
        return wal

    def fresh_store(sid: int, wal: WriteAheadLog) -> ReplicaStore:
        store = ReplicaStore(sid)
        for record in wal:
            if record.kind == "apply" and not store.hosts(record.payload["item"]):
                store.host(record.payload["item"], value=0, version=0)
        return store

    counters: dict[str, Any] = {}
    timing: dict[str, Any] = {}
    total = 0.0
    for scale in (1, 4):
        wals = {sid: build_wal(sid, scale) for sid in sequences}
        installed = 0
        checksum = 0
        wall = float("inf")
        for _ in range(replays):
            stores = {sid: fresh_store(sid, wal) for sid, wal in wals.items()}
            t0 = time.perf_counter()
            installed = sum(
                replay_data(wals[sid], stores[sid], full_scan=not indexed)
                for sid in wals
            )
            wall = min(wall, time.perf_counter() - t0)
        for sid in sorted(wals):
            for item, versioned in stores[sid].items():
                checksum += versioned.version * 31 + (versioned.value or 0)
        counters[f"wal_records_{scale}x"] = sum(len(w) for w in wals.values())
        counters[f"installed_{scale}x"] = installed
        counters[f"store_checksum_{scale}x"] = checksum
        timing[f"wall_{scale}x_s"] = wall
        total += wall
    timing["wall_s"] = total
    return {"counters": counters, "timing": timing}


# ----------------------------------------------------------------------
# catalog memo microbench
# ----------------------------------------------------------------------


def catalog_memo_trial(
    seed: int,
    memo: bool,
    n_regions: int = 4,
    sites_per_region: int = 8,
    n_items: int = 48,
    reuses: int = 12,
) -> dict[str, Any]:
    """Rebuild one sweep's catalog per grid cell vs fetch it memoized.

    Emulates the ``seeding="offset"`` shape: ``reuses`` grid cells each
    re-derive the same named stream for the same seed and need the same
    catalog.  The ``memo`` axis selects a fresh
    :func:`~repro.workload.generators.wan_catalog` build per cell
    (``False``) or :func:`~repro.workload.generators.memoized_catalog`
    (``True``, state-capture hit after the first build).  The RNG probe
    drawn *after* the catalog must be identical on both arms — that is
    the stream-identity contract the memo keeps.
    """
    from repro.workload.generators import memoized_catalog, wan_catalog

    checksum = 0
    probe_sum = 0.0
    key = ("catalog-memo-bench", seed, n_regions, sites_per_region, n_items)

    def build(r: Any) -> Any:
        return wan_catalog(
            r,
            n_regions=n_regions,
            sites_per_region=sites_per_region,
            n_items=n_items,
            region_replication=3,
        )

    t0 = time.perf_counter()
    for _cell in range(reuses):
        rng = RngRegistry(seed).stream("catalog-memo-bench")
        catalog = memoized_catalog(rng, key, build) if memo else build(rng)
        probe_sum += rng.random()  # stream position after the build
        names = catalog.item_names
        checksum += len(names) + sum(catalog.v(i) for i in names[:8])
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "reuses": reuses,
            "checksum": checksum,
            "probe_sum": probe_sum,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# WAL append microbench
# ----------------------------------------------------------------------


def wal_append_trial(
    seed: int,
    grouped: bool,
    n_txns: int = 260,
    n_sites: int = 8,
    replays: int = 6,
) -> dict[str, Any]:
    """Replay ``run_heavy_workload``'s exact WAL force sequences.

    A heavy E18 run is executed once (deterministic per seed) and every
    site's ``force`` call sequence is harvested from its log; the
    sequences are then replayed ``replays`` times into fresh logs in
    legacy (``grouped=False``) or group-commit/indexed (``True``) mode.
    Only the replay is timed, so the number is the WAL append path
    itself under a real workload's record mix.
    """
    from repro.experiments.workload_study import run_heavy_workload

    sequences: dict[int, list[Any]] = {}

    def harvest(cluster: Cluster) -> None:
        for sid, site in cluster.sites.items():
            sequences[sid] = [(r.txn, r.kind, r.payload) for r in site.wal]

    run_heavy_workload(
        "qtp1", seed=seed, n_txns=n_txns, n_sites=n_sites, probe=harvest
    )
    total_forced = 0
    total_flushes = 0
    kinds: dict[str, int] = {}
    wall = float("inf")
    for _ in range(replays):
        logs = {sid: WriteAheadLog(sid, group_commit=grouped) for sid in sequences}
        t0 = time.perf_counter()
        for sid, seq in sequences.items():
            wal = logs[sid]
            for txn, kind, payload in seq:
                wal.force(txn, kind, **payload)
        # best single replay: GC pauses and scheduler noise hit some
        # replays, not the append path under test
        wall = min(wall, time.perf_counter() - t0)
    for wal in logs.values():
        total_forced += wal.forced
        total_flushes += wal.flushes
        for record in wal:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
    return {
        "counters": {
            "forced": total_forced,
            "flushes": total_flushes,
            "open_txns": sum(len(w.open_txns()) for w in logs.values()),
            **{f"kind_{k}": v for k, v in sorted(kinds.items())},
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# trace recorder microbench
# ----------------------------------------------------------------------

#: message types the synthetic trace mix draws from (protocol-shaped).
_TRACE_MTYPES = (
    "qtp1.vote-req",
    "qtp1.vote",
    "qtp1.prepare",
    "qtp1.ack",
    "qtp1.decision",
    "term.state-req",
    "term.state",
)


def trace_record_trial(
    seed: int,
    columnar: bool,
    n_events: int = 40_000,
    n_sites: int = 24,
    n_txns: int = 48,
    queries: int = 120,
) -> dict[str, Any]:
    """Record a protocol-shaped event mix, then run the analysis queries.

    The ``columnar`` grid axis selects the legacy list-of-frozen-
    dataclasses store (``False``) or the columnar/slotted store
    (``True``).  The mix mirrors a commit run — mostly sends and
    delivers with txn ids, a tail of state transitions, decisions and
    quorum checks — and the query phase asks what the analysis layer
    asks (``where`` by category+site, ``count``, per-txn ``decisions``,
    ``message_counts``).  Counters must be identical on both sides;
    only the wall time may differ.
    """
    rng = RngRegistry(seed).stream("trace-bench")
    tracer = Tracer(columnar=columnar)
    n_mtypes = len(_TRACE_MTYPES)
    t0 = time.perf_counter()
    t = 0.0
    for _ in range(n_events):
        t += 0.25
        kind = rng.randrange(100)
        site = rng.randrange(n_sites)
        txn = f"T{rng.randrange(n_txns)}"
        if kind < 35:
            tracer.record_send(
                t, site, txn, _TRACE_MTYPES[rng.randrange(n_mtypes)], rng.randrange(n_sites)
            )
        elif kind < 65:
            tracer.record_deliver(
                t, site, txn, _TRACE_MTYPES[rng.randrange(n_mtypes)], rng.randrange(n_sites)
            )
        elif kind < 72:
            tracer.record_drop(
                t,
                site,
                txn,
                _TRACE_MTYPES[rng.randrange(n_mtypes)],
                rng.randrange(n_sites),
                "partitioned",
            )
        elif kind < 90:
            tracer.record(t, site, "state", txn, src="W", dst="PC")
        elif kind < 96:
            tracer.record(t, site, "decision", txn, outcome="commit" if kind % 2 else "abort")
        else:
            tracer.record(t, site, "quorum", txn, ok=bool(kind % 2))
    query_hits = 0
    cats = ("send", "deliver", "decision", "state", "drop")
    for q in range(queries):
        cat = cats[q % len(cats)]
        query_hits += len(tracer.where(category=cat, site=q % n_sites))
        query_hits += tracer.count(cat)
    decided_sites = 0
    for i in range(n_txns):
        decided_sites += len(tracer.decisions(f"T{i}"))
    histogram = tracer.message_counts()
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "records": len(tracer),
            "dropped": tracer.dropped,
            "query_hits": query_hits,
            "decided_sites": decided_sites,
            "mtypes": len(histogram),
            "messages_counted": sum(histogram.values()),
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# partition churn microbench
# ----------------------------------------------------------------------


def partition_churn_trial(
    seed: int,
    intern: bool,
    n_sites: int = 64,
    n_plans: int = 6,
    rounds: int = 120,
) -> dict[str, Any]:
    """Replay a storm plan's partition/heal cycle against live views.

    The ``intern`` grid axis selects per-event ``PartitionView``
    reconstruction (``False``) or the network's interned view cache
    (``True``).  A handful of distinct group layouts recur across many
    rounds — exactly the shape of :func:`region_storm_plan` waves — and
    each partition event also pays its trace record (whose component
    rendering the interned views memoize).  Counters must be identical
    on both sides; only the wall time may differ.
    """
    rng = RngRegistry(seed).stream("churn-bench")
    sched = Scheduler()
    tracer = Tracer()
    network = Network(sched, tracer, RngRegistry(seed), intern_views=intern)
    for i in range(n_sites):
        _Sink(i, network)
    plans = [
        tuple(tuple(g) for g in random_partition_groups(rng, network.sites, 1 + q % 3))
        for q in range(n_plans)
    ]
    checksum = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        for plan in plans:
            network.set_partition(plan)
            view = network.partition
            checksum += len(view.components)
            # the questions termination keeps asking under a storm
            src = (r + len(plan)) % n_sites
            checksum += len(view.component_of(src))
            checksum += view.reachable(src, (src + 7) % n_sites)
        network.heal()
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "epochs": network.epoch,
            "partitions_traced": tracer.count("partition"),
            "heals_traced": tracer.count("heal"),
            "checksum": checksum,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# persistent-pool executor microbench
# ----------------------------------------------------------------------


def _probe_catalog() -> Any:
    """A small pure catalog (no RNG) for the warm-pool probe task."""
    from repro.replication.catalog import CatalogBuilder

    builder = CatalogBuilder()
    for i in range(4):
        builder.replicated_item(f"p{i}", sites=[1, 2, 3], r=2, w=2)
    return builder.build()


def warm_pool_probe(seed: int, n_events: int = 500) -> dict[str, Any]:
    """One small sweep task: a mini scheduler drain over a cached catalog.

    Deliberately light — the ``suite_warm_pool`` case measures executor
    overhead, so per-task work must not drown out pool creation.  The
    catalog goes through :func:`~repro.engine.executor.worker_cache`,
    so a warm worker builds it once across every sweep of the campaign.
    """
    catalog = worker_cache(("bench-probe-catalog",), _probe_catalog)
    sched = Scheduler()
    for i in range(n_events):
        sched.call_fixed(float((i * 2654435761 + seed) % 211), _noop)
    sched.run()
    return {
        "counters": {
            "events_run": sched.events_run,
            "items": len(catalog.item_names),
            "final_now": sched.now,
        },
        "timing": {},
    }


def suite_warm_pool_trial(
    seed: int,
    warm: bool,
    n_sweeps: int = 6,
    runs_per_sweep: int = 8,
    pool_workers: int = 2,
    probe_events: int = 500,
) -> dict[str, Any]:
    """Run a campaign of small sweeps: pool-per-sweep vs one warm pool.

    The ``warm`` grid axis selects the legacy executor (a process pool
    created and torn down inside every ``run_sweep`` call) or a single
    :class:`~repro.engine.executor.SweepRunner` kept alive across the
    whole campaign — the shape of the bench suite itself, whose cases
    all ride one warm pool under ``--persistent-pool``.  Counters must
    be identical on both sides; only the wall time may differ.  In
    environments where pools cannot be created at all (sandboxes,
    nested pools) both arms degrade to serial and stay identical.
    """
    specs = [
        SweepSpec(
            name=f"warm-pool-{i}",
            task=warm_pool_probe,
            grid={},
            runs=runs_per_sweep,
            base_seed=seed * 1009 + i,
            fixed={"n_events": probe_events},
        )
        for i in range(n_sweeps)
    ]
    t0 = time.perf_counter()
    if warm:
        with SweepRunner(workers=pool_workers) as runner:
            outcomes = [runner.run_sweep(spec) for spec in specs]
    else:
        outcomes = [run_sweep(spec, workers=pool_workers) for spec in specs]
    wall = time.perf_counter() - t0
    events = 0
    checksum = 0
    tasks = 0
    for outcome in outcomes:
        for result in outcome.results:
            tasks += 1
            events += result.value["counters"]["events_run"]
            checksum += int(result.value["counters"]["final_now"]) + result.seed % 997
    return {
        "counters": {
            "sweeps": len(outcomes),
            "tasks": tasks,
            "events_run": events,
            "checksum": checksum,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# trace-replay tournament
# ----------------------------------------------------------------------


def trace_replay_trial(
    seed: int, configs: tuple[str, ...], n_txns: int, n_sites: int
) -> dict[str, Any]:
    """Record one E18 heavy-traffic run and replay it against the
    what-if configuration matrix.

    The trace is harvested once per worker (``worker_cache`` — the
    recording is deterministic, so every repeat shares it); each named
    configuration then replays the identical op + failure stream and
    contributes its diff-table counters.  The ``recorded``
    configuration doubles as the record→replay fixed-point check: its
    ``fixed_point`` counter pins that replaying a recording of config C
    under config C reproduces the original deterministic counters.
    """
    from repro.replay import (
        DEFAULT_CONFIGS,
        fixed_point_ok,
        record_heavy_workload,
        replay_trace,
    )

    trace = worker_cache(
        ("replay-trace", seed, n_txns, n_sites),
        lambda: record_heavy_workload("qtp1", seed=seed, n_txns=n_txns, n_sites=n_sites),
    )
    by_name = {c.name: c for c in DEFAULT_CONFIGS}
    t0 = time.perf_counter()
    counters: dict[str, Any] = {}
    for name in configs:
        row = replay_trace(trace, by_name[name])
        if name == "recorded":
            counters["fixed_point"] = fixed_point_ok(trace, row)
        for key in (
            "committed",
            "protocol_aborted",
            "client_aborted",
            "blocked",
            "skipped_ops",
            "messages_sent",
            "events_run",
            "wal_forced",
        ):
            counters[f"{name}_{key}"] = row[key]
        counters[f"{name}_latency"] = round(row["mean_commit_latency"], 6)
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


# ----------------------------------------------------------------------
# streaming sweep microbench
# ----------------------------------------------------------------------


def streaming_probe_cell(seed: int, catalog: Any, n_items: int) -> dict[str, Any]:
    """One cheap probe row against the shared bench catalog.

    The work per cell is deliberately tiny — a quorum lookup plus a few
    RNG draws — so the case times the *engine's* per-row cost (task
    dispatch, row encoding, sink write), not a simulator.  ``catalog``
    arrives as a resolved :class:`~repro.engine.shared.SharedPayload`,
    so every one of the 10^5 cells reads the same published object
    instead of re-pickling a 50k-item catalog per task.
    """
    rng = RngRegistry(seed).stream("streaming-probe")
    pick = rng.randrange(n_items)
    return {
        "votes": catalog.v(f"i{pick:07d}"),
        "latency": rng.expovariate(1.0) + 0.5,
        "committed": rng.random() < 0.9,
        "hot": pick < 10,
    }


def _streaming_reducer() -> RowReducer:
    """The aggregate layout both arms of ``sweep_streaming`` fold into."""
    return RowReducer(
        (
            ("latency", "latency", MeanAcc()),
            ("latency_digest", "latency", QuantileDigest(0.0, 20.0)),
            ("committed", "committed", CountAcc()),
            ("votes", "votes", MeanAcc()),
        )
    )


def sweep_streaming_trial(
    seed: int,
    streaming: bool,
    n_cells: int = 2_000,
    n_items: int = 500,
) -> dict[str, Any]:
    """A/B of the classic accumulate-then-aggregate sweep vs streaming.

    Both arms execute the same inner sweep — ``n_cells`` probe rows
    against one :class:`~repro.engine.shared.SharedPayload` catalog
    (published once per process via ``worker_cache``) — and fold the
    same :func:`_streaming_reducer` aggregates:

    * ``streaming=False`` — the historical shape: the default
      ``run_sweep`` keeps every row in RAM, then the reducer folds the
      accumulated list.
    * ``streaming=True`` — the extreme-scale shape: rows flow through
      ``TeeSink(JsonlSink, ReducerSink)``, so aggregation and the
      gzip'd JSONL artifact are built incrementally and no row list
      ever exists; the artifact is then re-counted via
      :func:`~repro.engine.sink.iter_stream_rows` (untimed) to pin the
      round trip.

    The counters come from the reducer summary plus the order-independent
    row digest, so they are byte-identical across arms and across
    worker counts — that equality is the CI gate on the streaming
    backend.  The committed ``rows_per_sec`` derived timing is the
    streaming arm's throughput at the 10^5-cell scale.
    """
    import tempfile
    from pathlib import Path

    handle = worker_cache(
        ("streaming-bench-payload", n_items),
        lambda: SharedPayload.publish(
            _zipf_bench_catalog(n_items), label="streaming-bench-catalog"
        ),
    )
    spec = SweepSpec(
        name="bench-sweep-streaming-cells",
        task=streaming_probe_cell,
        grid={},
        runs=n_cells,
        base_seed=seed,
        seeding="offset",
        fixed={"catalog": handle, "n_items": n_items},
    )
    reducer = _streaming_reducer()
    if streaming:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "rows.jsonl.gz"
            t0 = time.perf_counter()
            run_sweep(spec, sink=TeeSink(JsonlSink(path), ReducerSink(reducer)))
            wall = time.perf_counter() - t0
            rows_loaded = sum(1 for _row in iter_stream_rows(path))
    else:
        t0 = time.perf_counter()
        outcome = run_sweep(spec)
        for result in outcome.results:
            reducer.fold(result)
        wall = time.perf_counter() - t0
        rows_loaded = len(outcome.results)
    agg = reducer.summary()
    latency = agg["metrics"]["latency"]
    digest = agg["metrics"]["latency_digest"]
    committed = agg["metrics"]["committed"]["counts"]
    return {
        "counters": {
            "rows": agg["rows"],
            "row_digest": agg["digest"],
            "rows_loaded": rows_loaded,
            "latency_mean": round(latency["mean"], 6),
            "latency_sd": round(latency["sd"], 6),
            "latency_p50": round(digest["p50"], 6),
            "latency_p99": round(digest["p99"], 6),
            "committed_true": committed.get("True", 0),
            "committed_false": committed.get("False", 0),
            "votes_mean": round(agg["metrics"]["votes"]["mean"], 6),
        },
        "timing": {"wall_s": wall, "rows": n_cells},
    }


def sweep_resume_trial(
    seed: int,
    resilient: bool,
    n_cells: int = 1_000,
    n_items: int = 200,
) -> dict[str, Any]:
    """A/B of the plain streaming sweep vs the fault-free resilient path.

    Both arms run the same probe sweep into a ``JsonlSink`` artifact;
    ``resilient=True`` routes through ``run_sweep(on_error="retry")`` —
    the crash-recovering backend (guarded chunks over a respawnable
    pool, parent-side retry settle) with **zero faults injected**.  The
    committed counters include a truncated SHA-256 of the artifact
    bytes, so the baseline itself proves the resilient path writes the
    exact bytes the plain path writes; the derived timing is the paired
    plain/resilient wall ratio plus the overhead percentage, which the
    baseline pins as within-noise.
    """
    import hashlib
    import tempfile
    from pathlib import Path

    handle = worker_cache(
        ("resume-bench-payload", n_items),
        lambda: SharedPayload.publish(
            _zipf_bench_catalog(n_items), label="resume-bench-catalog"
        ),
    )
    spec = SweepSpec(
        name="bench-sweep-resume-cells",
        task=streaming_probe_cell,
        grid={},
        runs=n_cells,
        base_seed=seed,
        seeding="offset",
        fixed={"catalog": handle, "n_items": n_items},
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rows.jsonl.gz"
        t0 = time.perf_counter()
        if resilient:
            outcome = run_sweep(spec, sink=JsonlSink(path), on_error="retry")
        else:
            outcome = run_sweep(spec, sink=JsonlSink(path))
        wall = time.perf_counter() - t0
        artifact_sha = hashlib.sha256(path.read_bytes()).hexdigest()
        rows_loaded = sum(1 for _row in iter_stream_rows(path))
    agg = outcome.aggregate or {}
    resilience = outcome.resilience or {}
    return {
        "counters": {
            "rows": agg["rows"],
            "row_digest": agg["digest"],
            "rows_loaded": rows_loaded,
            # identical in both arms by the crash-anywhere property;
            # truncated so the committed JSON stays readable in review
            "artifact_sha": artifact_sha[:16],
            "retried": resilience.get("retried", 0),
            "quarantined": len(resilience.get("quarantined", [])),
        },
        "timing": {"wall_s": wall, "rows": n_cells},
    }


# ----------------------------------------------------------------------
# the default suite
# ----------------------------------------------------------------------


def ab_speedup(param: str) -> Any:
    """Derived-timing hook: paired legacy/optimized speedup.

    Rows are paired by run index — the same seed, hence the *same*
    workload, on both sides of the A/B axis — and the committed speedup
    is the mean of the per-pair wall-time ratios (the repo's usual
    paired-comparison design; an unpaired min would compare different
    workloads)."""

    def derive(rows: list[dict[str, Any]]) -> dict[str, Any]:
        legacy: dict[int, float] = {}
        optimized: dict[int, float] = {}
        for row in rows:
            bucket = optimized if row["params"][param] else legacy
            run = row["run"]
            # best wall per run across repeats: noise hits some repeats,
            # not the code path under test
            bucket[run] = min(bucket.get(run, float("inf")), row["wall_s"])
        paired = sorted(set(legacy) & set(optimized))
        if not paired:
            return {}
        ratios = [legacy[run] / optimized[run] for run in paired]
        return {
            "legacy_s": sum(legacy[run] for run in paired) / len(paired),
            "optimized_s": sum(optimized[run] for run in paired) / len(paired),
            "speedup": sum(ratios) / len(ratios),
        }

    return derive


def streaming_throughput(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Derived-timing hook for ``sweep_streaming``.

    The paired memory/streaming wall ratio (via :func:`ab_speedup`) plus
    ``rows_per_sec`` — the streaming arm's best observed throughput,
    which is the headline number the CI bench comment tracks.
    """
    derived = ab_speedup("streaming")(rows)
    best = 0.0
    for row in rows:
        if row["params"]["streaming"] and row["wall_s"] > 0:
            best = max(best, row["rows"] / row["wall_s"])
    if best:
        derived["rows_per_sec"] = round(best, 1)
    return derived


def resume_overhead(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Derived-timing hook for ``sweep_resume``.

    The paired plain/resilient wall ratio (via :func:`ab_speedup` —
    ``speedup`` just below 1.0 means the resilient path costs slightly
    more) plus the same number as an explicit overhead percentage, the
    figure the baseline pins as within-noise of ``sweep_streaming``.
    """
    derived = ab_speedup("resilient")(rows)
    legacy = derived.get("legacy_s")
    optimized = derived.get("optimized_s")
    if legacy and optimized:
        derived["overhead_pct"] = round((optimized / legacy - 1.0) * 100.0, 2)
    return derived


#: grid sizes per scale; "quick" keeps the property tests snappy.
_SCALES = {
    "full": {
        "drain_events": 20_000,
        "commit_txns": 16,
        "heavy_txns": 120,
        "heavy_sites": 12,
        "heavy_runs": 2,
        "fanout_rounds": 40,
        "wal_txns": 400,
        "wal_replays": 6,
        "trace_events": 40_000,
        "trace_queries": 120,
        "churn_sites": 64,
        "churn_rounds": 120,
        "warm_sweeps": 6,
        "warm_runs": 8,
        "skewed_txns": 80,
        "read_mostly_txns": 100,
        "cross_region_txns": 40,
        "elastic_txns": 60,
        "flyweight_sites": 32,
        "flyweight_rounds": 60,
        "zipf_items": 100_000,
        "zipf_draws": 240,
        "zipf_fp_draws": 40,
        "recovery_txns": 260,
        "recovery_replays": 5,
        "memo_reuses": 12,
        "replay_txns": 60,
        "replay_sites": 8,
        "streaming_cells": 100_000,
        "streaming_items": 50_000,
        "resume_cells": 50_000,
        "resume_items": 20_000,
        "service_rate": 1.5,
        "service_duration": 120.0,
        "service_sites": 9,
        "ramp_rates": [0.5, 1.0, 2.0, 4.0, 8.0],
        "ramp_duration": 60.0,
        "upgrade_txns": 70,
        "upgrade_waves": 3,
        "crowd_duration": 120.0,
        "crowd_surge_start": 40.0,
        "crowd_surge_length": 30.0,
        "gray_rate": 1.5,
        "gray_duration": 120.0,
        "gray_episode_start": 30.0,
        "gray_episode_length": 40.0,
        "probe_readers": 400,
        "probe_count": 20_000,
        "repeats": 3,
    },
    "quick": {
        "drain_events": 2_000,
        "commit_txns": 6,
        "heavy_txns": 24,
        "heavy_sites": 6,
        "heavy_runs": 1,
        "fanout_rounds": 3,
        "wal_txns": 40,
        "wal_replays": 1,
        "trace_events": 3_000,
        "trace_queries": 20,
        "churn_sites": 12,
        "churn_rounds": 6,
        "warm_sweeps": 2,
        "warm_runs": 3,
        "skewed_txns": 16,
        "read_mostly_txns": 20,
        "cross_region_txns": 10,
        "elastic_txns": 24,
        "flyweight_sites": 10,
        "flyweight_rounds": 4,
        "zipf_items": 2_000,
        "zipf_draws": 60,
        "zipf_fp_draws": 10,
        "recovery_txns": 40,
        "recovery_replays": 1,
        "memo_reuses": 4,
        "replay_txns": 16,
        "replay_sites": 6,
        "streaming_cells": 2_000,
        "streaming_items": 500,
        "resume_cells": 1_000,
        "resume_items": 200,
        "service_rate": 0.8,
        "service_duration": 30.0,
        "service_sites": 6,
        "ramp_rates": [0.5, 1.5],
        "ramp_duration": 20.0,
        "upgrade_txns": 30,
        "upgrade_waves": 2,
        "crowd_duration": 60.0,
        "crowd_surge_start": 20.0,
        "crowd_surge_length": 15.0,
        "gray_rate": 0.8,
        "gray_duration": 40.0,
        "gray_episode_start": 10.0,
        "gray_episode_length": 20.0,
        "probe_readers": 40,
        "probe_count": 1_000,
        "repeats": 1,
    },
}


def default_suite(scale: str = "full") -> BenchSuite:
    """The registered benchmark suite at ``"full"`` (committed
    baselines) or ``"quick"`` (tests) scale."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    s = _SCALES[scale]
    repeats = s["repeats"]
    return BenchSuite(
        [
            BenchCase(
                name="scheduler_drain",
                spec=SweepSpec(
                    name="bench-scheduler-drain",
                    task=scheduler_drain_trial,
                    grid={},
                    runs=2,
                    fixed={"n_events": s["drain_events"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="commit_mix",
                spec=SweepSpec(
                    name="bench-commit-mix",
                    task=commit_mix_trial,
                    grid={"protocol": ["2pc", "3pc", "qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["commit_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="heavy_workload",
                spec=SweepSpec(
                    name="bench-heavy-workload",
                    task=heavy_workload_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=s["heavy_runs"],
                    seeding="offset",
                    fixed={"n_txns": s["heavy_txns"], "n_sites": s["heavy_sites"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="wan_storm",
                spec=SweepSpec(
                    name="bench-wan-storm",
                    task=wan_storm_trial,
                    grid={"protocol": ["qtp1", "qtp2"], "heal": [False, True]},
                    runs=1,
                    seeding="offset",
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="skewed_contention",
                spec=SweepSpec(
                    name="bench-skewed-contention",
                    task=skewed_contention_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["skewed_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="read_mostly",
                spec=SweepSpec(
                    name="bench-read-mostly",
                    task=read_mostly_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["read_mostly_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="cross_region_txn",
                spec=SweepSpec(
                    name="bench-cross-region-txn",
                    task=cross_region_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["cross_region_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="elastic_join",
                spec=SweepSpec(
                    name="bench-elastic-join",
                    task=elastic_join_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["elastic_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="open_loop_service",
                spec=SweepSpec(
                    name="bench-open-loop-service",
                    task=open_loop_service_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "rate": s["service_rate"],
                        "duration": s["service_duration"],
                        "n_sites": s["service_sites"],
                    },
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="ramp_ceiling",
                spec=SweepSpec(
                    name="bench-ramp-ceiling",
                    task=ramp_ceiling_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=1,
                    seeding="offset",
                    fixed={
                        "rates": s["ramp_rates"],
                        "duration": s["ramp_duration"],
                    },
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="rolling_upgrade",
                spec=SweepSpec(
                    name="bench-rolling-upgrade",
                    task=rolling_upgrade_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_txns": s["upgrade_txns"],
                        "waves": s["upgrade_waves"],
                    },
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="flash_crowd",
                spec=SweepSpec(
                    name="bench-flash-crowd",
                    task=flash_crowd_trial,
                    grid={"protocol": ["2pc", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "duration": s["crowd_duration"],
                        "surge_start": s["crowd_surge_start"],
                        "surge_length": s["crowd_surge_length"],
                    },
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="gray_failure",
                spec=SweepSpec(
                    name="bench-gray-failure",
                    task=gray_failure_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "rate": s["gray_rate"],
                        "duration": s["gray_duration"],
                        "episode_start": s["gray_episode_start"],
                        "episode_length": s["gray_episode_length"],
                    },
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="lock_probe",
                spec=SweepSpec(
                    name="bench-lock-probe",
                    task=lock_probe_trial,
                    grid={"tracked": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_readers": s["probe_readers"],
                        "probes": s["probe_count"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("tracked"),
            ),
            BenchCase(
                name="net_deliver_fanout",
                spec=SweepSpec(
                    name="bench-net-deliver-fanout",
                    task=net_fanout_trial,
                    grid={"cached": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={"rounds": s["fanout_rounds"]},
                ),
                repeats=repeats,
                derived=ab_speedup("cached"),
            ),
            BenchCase(
                name="wal_append",
                spec=SweepSpec(
                    name="bench-wal-append",
                    task=wal_append_trial,
                    grid={"grouped": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["wal_txns"], "replays": s["wal_replays"]},
                ),
                repeats=repeats,
                derived=ab_speedup("grouped"),
            ),
            BenchCase(
                name="trace_record",
                spec=SweepSpec(
                    name="bench-trace-record",
                    task=trace_record_trial,
                    grid={"columnar": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_events": s["trace_events"],
                        "queries": s["trace_queries"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("columnar"),
            ),
            BenchCase(
                name="partition_churn",
                spec=SweepSpec(
                    name="bench-partition-churn",
                    task=partition_churn_trial,
                    grid={"intern": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_sites": s["churn_sites"],
                        "rounds": s["churn_rounds"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("intern"),
            ),
            BenchCase(
                name="suite_warm_pool",
                spec=SweepSpec(
                    name="bench-suite-warm-pool",
                    task=suite_warm_pool_trial,
                    grid={"warm": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_sweeps": s["warm_sweeps"],
                        "runs_per_sweep": s["warm_runs"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("warm"),
            ),
            BenchCase(
                name="net_fanout_flyweight",
                spec=SweepSpec(
                    name="bench-net-fanout-flyweight",
                    task=net_fanout_flyweight_trial,
                    grid={"flyweight": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_sites": s["flyweight_sites"],
                        "rounds": s["flyweight_rounds"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("flyweight"),
            ),
            BenchCase(
                name="zipf_sampling",
                spec=SweepSpec(
                    name="bench-zipf-sampling",
                    task=zipf_sampling_trial,
                    grid={"alias": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_items": s["zipf_items"],
                        "draws": s["zipf_draws"],
                        "fp_draws": s["zipf_fp_draws"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("alias"),
            ),
            BenchCase(
                name="recovery_replay",
                spec=SweepSpec(
                    name="bench-recovery-replay",
                    task=recovery_replay_trial,
                    grid={"indexed": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_txns": s["recovery_txns"],
                        "replays": s["recovery_replays"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("indexed"),
            ),
            BenchCase(
                name="catalog_memo",
                spec=SweepSpec(
                    name="bench-catalog-memo",
                    task=catalog_memo_trial,
                    grid={"memo": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={"reuses": s["memo_reuses"]},
                ),
                repeats=repeats,
                derived=ab_speedup("memo"),
            ),
            BenchCase(
                name="trace_replay_tournament",
                spec=SweepSpec(
                    name="bench-trace-replay-tournament",
                    task=trace_replay_trial,
                    grid={},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "configs": ["recorded", "2pc", "3pc", "rowa"],
                        "n_txns": s["replay_txns"],
                        "n_sites": s["replay_sites"],
                    },
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="sweep_streaming",
                spec=SweepSpec(
                    name="bench-sweep-streaming",
                    task=sweep_streaming_trial,
                    grid={"streaming": [False, True]},
                    runs=1,
                    seeding="offset",
                    fixed={
                        "n_cells": s["streaming_cells"],
                        "n_items": s["streaming_items"],
                    },
                ),
                repeats=repeats,
                derived=streaming_throughput,
            ),
            BenchCase(
                name="sweep_resume",
                spec=SweepSpec(
                    name="bench-sweep-resume",
                    task=sweep_resume_trial,
                    grid={"resilient": [False, True]},
                    runs=1,
                    seeding="offset",
                    fixed={
                        "n_cells": s["resume_cells"],
                        "n_items": s["resume_items"],
                    },
                ),
                repeats=repeats,
                derived=resume_overhead,
            ),
        ]
    )
