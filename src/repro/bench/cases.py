"""The default benchmark cases.

Each task function is a module-level callable (so it pickles into pool
workers) that builds its own simulator from its seed and returns::

    {"counters": {...deterministic...}, "timing": {...wall seconds...}}

Representative workloads covered:

* ``scheduler_drain`` — the event-queue hot path: schedule / cancel /
  drain, both handle-carrying and ``call_fixed`` entries.
* ``commit_mix`` — a 2PC / 3PC / QTP commit mix through a mid-run
  partition episode (the paper's protocol spread, E17-flavoured).
* ``heavy_workload`` — E18: Poisson traffic through repeated partition
  episodes (:func:`~repro.experiments.workload_study.run_heavy_workload`).
* ``wan_storm`` — E21: 32-site WAN region storms
  (:func:`~repro.workload.scenarios.run_wan_storm`).
* ``skewed_contention`` / ``read_mostly`` / ``cross_region_txn`` /
  ``elastic_join`` — E22–E25: the :class:`~repro.workload.spec.WorkloadSpec`
  scenario drivers (Zipf skew, read-dominated mix, cross-region WAN
  transactions, elastic membership under a partition storm), pinned
  from day one (:mod:`repro.experiments.workload_scenarios`).
* ``net_deliver_fanout`` — A/B microbench of the ``Network`` fan-out
  path: legacy per-message connectivity evaluation vs the
  partition-epoch reachable-peer cache.
* ``wal_append`` — A/B microbench of the WAL append path: the exact
  per-site ``force`` sequences harvested from ``run_heavy_workload``,
  replayed against the legacy scan-per-decision log and the
  group-commit/indexed log.
* ``trace_record`` — A/B microbench of the trace recorder: the legacy
  list-of-dataclasses store vs the columnar/slotted store with lazy
  materialization and indexed queries.
* ``partition_churn`` — A/B microbench of storm-heavy partition plans:
  per-event ``PartitionView`` reconstruction vs interned views.
* ``suite_warm_pool`` — A/B microbench of the sweep executor: a pool
  per sweep vs one persistent warm pool across a campaign of sweeps.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.suite import BenchCase, BenchSuite
from repro.common.errors import QuorumUnreachableError, TransactionAborted
from repro.db.cluster import Cluster
from repro.engine.executor import SweepRunner, run_sweep, worker_cache
from repro.engine.spec import SweepSpec
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer
from repro.storage.wal import WriteAheadLog
from repro.workload.generators import random_catalog, random_partition_groups


def _cluster_counters(cluster: Cluster) -> dict[str, Any]:
    """The deterministic network / WAL / scheduler tallies of a run."""
    net = cluster.network
    return {
        "messages_sent": net.sent,
        "messages_delivered": net.delivered,
        "messages_dropped": net.dropped,
        "events_run": cluster.scheduler.events_run,
        "wal_forced": sum(site.wal.forced for site in cluster.sites.values()),
        "wal_flushes": sum(site.wal.flushes for site in cluster.sites.values()),
    }


# ----------------------------------------------------------------------
# scheduler drain
# ----------------------------------------------------------------------


def scheduler_drain_trial(seed: int, n_events: int = 20_000) -> dict[str, Any]:
    """Schedule ``n_events`` (hash-scattered times), cancel a third,
    add a ``call_fixed`` batch, drain — the PR 1 scheduler mix plus the
    non-cancellable fast entries deliveries now use."""
    sched = Scheduler()
    handles = [
        sched.call_at(float((i * 2654435761 + seed) % 997), _noop) for i in range(n_events)
    ]
    for handle in handles[::3]:
        handle.cancel()
    for i in range(n_events // 2):
        sched.call_fixed(float((i * 40503 + seed) % 997), _noop)
    t0 = time.perf_counter()
    sched.run()
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "events_run": sched.events_run,
            "pending_after": sched.pending,
            "final_now": sched.now,
        },
        "timing": {"wall_s": wall},
    }


def _noop() -> None:
    """Scheduler filler event."""


# ----------------------------------------------------------------------
# commit mix
# ----------------------------------------------------------------------


def commit_mix_trial(seed: int, protocol: str, n_txns: int = 16) -> dict[str, Any]:
    """Drive ``n_txns`` single-item updates through one partition
    episode under ``protocol`` and tally outcomes and traffic."""
    registry = RngRegistry(seed)
    rng = registry.stream("commit-mix")
    catalog = random_catalog(rng, n_sites=6, n_items=4, replication=3)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    groups = random_partition_groups(rng, cluster.network.sites, 2)
    cluster.arm_failures(FailurePlan().partition(25.0, *groups).heal(60.0))

    outcomes: dict[str, str] = {}

    def submit_one(index: int) -> None:
        item = rng.choice(catalog.item_names)
        origin = rng.choice(catalog.sites_of(item))
        if not cluster.sites[origin].alive:
            return
        try:
            handle = cluster.update(origin, {item: index})
        except (QuorumUnreachableError, TransactionAborted):
            outcomes[f"client-{index}"] = "client-aborted"
            return
        outcomes[handle.txn] = "submitted"

    t0 = time.perf_counter()
    for i in range(n_txns):
        cluster.scheduler.call_at(1.0 + i * 5.0, submit_one, i)
    cluster.run()
    wall = time.perf_counter() - t0

    tally = {"commit": 0, "abort": 0, "blocked": 0, "client-aborted": 0}
    for txn, status in outcomes.items():
        if status == "client-aborted":
            tally["client-aborted"] += 1
            continue
        verdict = cluster.outcome(txn).outcome
        tally[verdict] = tally.get(verdict, 0) + 1
    counters = {**tally, **_cluster_counters(cluster)}
    return {"counters": counters, "timing": {"wall_s": wall}}


# ----------------------------------------------------------------------
# E18 heavy workload
# ----------------------------------------------------------------------


def heavy_workload_trial(
    seed: int, protocol: str, n_txns: int = 120, n_sites: int = 12
) -> dict[str, Any]:
    """One E18 heavy-traffic run; counters from the workload result plus
    the cluster probe (network / WAL / scheduler tallies)."""
    from repro.experiments.workload_study import run_heavy_workload

    harvested: dict[str, Any] = {}
    t0 = time.perf_counter()
    result = run_heavy_workload(
        protocol,
        seed=seed,
        n_txns=n_txns,
        n_sites=n_sites,
        probe=lambda cluster: harvested.update(_cluster_counters(cluster)),
    )
    wall = time.perf_counter() - t0
    counters = {
        "submitted": result.submitted,
        "committed": result.committed,
        "client_aborted": result.client_aborted,
        "protocol_aborted": result.protocol_aborted,
        "blocked": result.blocked,
        "serializable": result.serializable,
        **harvested,
    }
    return {"counters": counters, "timing": {"wall_s": wall}}


# ----------------------------------------------------------------------
# E21 WAN region storm
# ----------------------------------------------------------------------


def wan_storm_trial(seed: int, protocol: str, heal: bool) -> dict[str, Any]:
    """One E21 region-storm run at full installation scale."""
    from repro.workload.scenarios import run_wan_storm

    t0 = time.perf_counter()
    scenario = run_wan_storm(protocol, seed=seed, heal=heal)
    wall = time.perf_counter() - t0
    counters = {
        "outcome": scenario.outcome,
        "decided_sites": len(scenario.cluster.tracer.decisions(scenario.txn.txn)),
        **_cluster_counters(scenario.cluster),
    }
    return {"counters": counters, "timing": {"wall_s": wall}}


# ----------------------------------------------------------------------
# E22–E25 workload-spec scenarios
# ----------------------------------------------------------------------


def skewed_contention_trial(
    seed: int, protocol: str, n_txns: int = 80, zipf_s: float = 1.4
) -> dict[str, Any]:
    """One E22 Zipf-contention run (hot-item conflicts are the point)."""
    from repro.experiments.workload_scenarios import run_skewed_contention

    t0 = time.perf_counter()
    counters = run_skewed_contention(protocol, seed=seed, n_txns=n_txns, zipf_s=zipf_s)
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def read_mostly_trial(
    seed: int, protocol: str, n_txns: int = 100, read_fraction: float = 0.8
) -> dict[str, Any]:
    """One E23 read-dominated-mix run."""
    from repro.experiments.workload_scenarios import run_read_mostly

    t0 = time.perf_counter()
    counters = run_read_mostly(
        protocol, seed=seed, n_txns=n_txns, read_fraction=read_fraction
    )
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def cross_region_trial(
    seed: int, protocol: str, n_txns: int = 40, cross_region: float = 0.6
) -> dict[str, Any]:
    """One E24 cross-region WAN-transaction run."""
    from repro.experiments.workload_scenarios import run_cross_region

    t0 = time.perf_counter()
    counters = run_cross_region(
        protocol, seed=seed, n_txns=n_txns, cross_region=cross_region
    )
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


def elastic_join_trial(
    seed: int, protocol: str, n_txns: int = 60, n_joins: int = 3
) -> dict[str, Any]:
    """One E25 elastic-join-under-storm run."""
    from repro.experiments.workload_scenarios import run_elastic_join

    t0 = time.perf_counter()
    counters = run_elastic_join(protocol, seed=seed, n_txns=n_txns, n_joins=n_joins)
    return {"counters": counters, "timing": {"wall_s": time.perf_counter() - t0}}


# ----------------------------------------------------------------------
# Network.deliver fan-out microbench
# ----------------------------------------------------------------------


class _Sink(Node):
    """Minimal node that swallows bench pings."""

    def __init__(self, node_id: int, network: Network) -> None:
        super().__init__(node_id, network)
        self.on("bench.ping", _swallow)


def _swallow(msg: Any) -> None:
    """Bench ping handler."""


def net_fanout_trial(
    seed: int, cached: bool, n_sites: int = 24, rounds: int = 40
) -> dict[str, Any]:
    """Broadcast storms through connected, partitioned and crash phases.

    The ``cached`` grid axis selects the legacy per-message connectivity
    evaluation (``False``) or the partition-epoch reachable-peer cache
    (``True``); counters must be identical on both sides — only the
    wall time may differ.  The phase changes (partition, crash, heal,
    recover) deliberately churn the cache so invalidation cost is part
    of the measurement.
    """
    sched = Scheduler()
    network = Network(
        sched, Tracer(capacity=0), RngRegistry(seed), fanout_cache=cached
    )
    nodes = [_Sink(i, network) for i in range(n_sites)]
    third = n_sites // 3
    everyone = list(range(n_sites))

    def storm() -> None:
        for node in nodes:
            if node.alive:
                node.broadcast(everyone, "bench.ping", "T")
        sched.run()

    t0 = time.perf_counter()
    for _ in range(rounds):
        # phase 1: fully connected fan-out (the common protocol case,
        # weighted double — most protocol traffic runs unpartitioned)
        storm()
        storm()
        # phase 2: two components — cross-component fan-out drops
        network.set_partition([everyone[: 2 * third], everyone[2 * third :]])
        storm()
        # phase 3: crashes + a three-way split mid-flight
        network.crash_site(0)
        network.crash_site(n_sites - 1)
        network.set_partition([everyone[:third], everyone[third : 2 * third], everyone[2 * third :]])
        storm()
        # phase 4: heal and recover — cache busted again
        network.heal()
        network.recover_site(0)
        network.recover_site(n_sites - 1)
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "sent": network.sent,
            "delivered": network.delivered,
            "dropped": network.dropped,
            "events_run": sched.events_run,
            "epochs": network.epoch,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# WAL append microbench
# ----------------------------------------------------------------------


def wal_append_trial(
    seed: int,
    grouped: bool,
    n_txns: int = 260,
    n_sites: int = 8,
    replays: int = 6,
) -> dict[str, Any]:
    """Replay ``run_heavy_workload``'s exact WAL force sequences.

    A heavy E18 run is executed once (deterministic per seed) and every
    site's ``force`` call sequence is harvested from its log; the
    sequences are then replayed ``replays`` times into fresh logs in
    legacy (``grouped=False``) or group-commit/indexed (``True``) mode.
    Only the replay is timed, so the number is the WAL append path
    itself under a real workload's record mix.
    """
    from repro.experiments.workload_study import run_heavy_workload

    sequences: dict[int, list[Any]] = {}

    def harvest(cluster: Cluster) -> None:
        for sid, site in cluster.sites.items():
            sequences[sid] = [(r.txn, r.kind, r.payload) for r in site.wal]

    run_heavy_workload(
        "qtp1", seed=seed, n_txns=n_txns, n_sites=n_sites, probe=harvest
    )
    total_forced = 0
    total_flushes = 0
    kinds: dict[str, int] = {}
    wall = float("inf")
    for _ in range(replays):
        logs = {sid: WriteAheadLog(sid, group_commit=grouped) for sid in sequences}
        t0 = time.perf_counter()
        for sid, seq in sequences.items():
            wal = logs[sid]
            for txn, kind, payload in seq:
                wal.force(txn, kind, **payload)
        # best single replay: GC pauses and scheduler noise hit some
        # replays, not the append path under test
        wall = min(wall, time.perf_counter() - t0)
    for wal in logs.values():
        total_forced += wal.forced
        total_flushes += wal.flushes
        for record in wal:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
    return {
        "counters": {
            "forced": total_forced,
            "flushes": total_flushes,
            "open_txns": sum(len(w.open_txns()) for w in logs.values()),
            **{f"kind_{k}": v for k, v in sorted(kinds.items())},
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# trace recorder microbench
# ----------------------------------------------------------------------

#: message types the synthetic trace mix draws from (protocol-shaped).
_TRACE_MTYPES = (
    "qtp1.vote-req",
    "qtp1.vote",
    "qtp1.prepare",
    "qtp1.ack",
    "qtp1.decision",
    "term.state-req",
    "term.state",
)


def trace_record_trial(
    seed: int,
    columnar: bool,
    n_events: int = 40_000,
    n_sites: int = 24,
    n_txns: int = 48,
    queries: int = 120,
) -> dict[str, Any]:
    """Record a protocol-shaped event mix, then run the analysis queries.

    The ``columnar`` grid axis selects the legacy list-of-frozen-
    dataclasses store (``False``) or the columnar/slotted store
    (``True``).  The mix mirrors a commit run — mostly sends and
    delivers with txn ids, a tail of state transitions, decisions and
    quorum checks — and the query phase asks what the analysis layer
    asks (``where`` by category+site, ``count``, per-txn ``decisions``,
    ``message_counts``).  Counters must be identical on both sides;
    only the wall time may differ.
    """
    rng = RngRegistry(seed).stream("trace-bench")
    tracer = Tracer(columnar=columnar)
    n_mtypes = len(_TRACE_MTYPES)
    t0 = time.perf_counter()
    t = 0.0
    for _ in range(n_events):
        t += 0.25
        kind = rng.randrange(100)
        site = rng.randrange(n_sites)
        txn = f"T{rng.randrange(n_txns)}"
        if kind < 35:
            tracer.record_send(
                t, site, txn, _TRACE_MTYPES[rng.randrange(n_mtypes)], rng.randrange(n_sites)
            )
        elif kind < 65:
            tracer.record_deliver(
                t, site, txn, _TRACE_MTYPES[rng.randrange(n_mtypes)], rng.randrange(n_sites)
            )
        elif kind < 72:
            tracer.record_drop(
                t,
                site,
                txn,
                _TRACE_MTYPES[rng.randrange(n_mtypes)],
                rng.randrange(n_sites),
                "partitioned",
            )
        elif kind < 90:
            tracer.record(t, site, "state", txn, src="W", dst="PC")
        elif kind < 96:
            tracer.record(t, site, "decision", txn, outcome="commit" if kind % 2 else "abort")
        else:
            tracer.record(t, site, "quorum", txn, ok=bool(kind % 2))
    query_hits = 0
    cats = ("send", "deliver", "decision", "state", "drop")
    for q in range(queries):
        cat = cats[q % len(cats)]
        query_hits += len(tracer.where(category=cat, site=q % n_sites))
        query_hits += tracer.count(cat)
    decided_sites = 0
    for i in range(n_txns):
        decided_sites += len(tracer.decisions(f"T{i}"))
    histogram = tracer.message_counts()
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "records": len(tracer),
            "dropped": tracer.dropped,
            "query_hits": query_hits,
            "decided_sites": decided_sites,
            "mtypes": len(histogram),
            "messages_counted": sum(histogram.values()),
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# partition churn microbench
# ----------------------------------------------------------------------


def partition_churn_trial(
    seed: int,
    intern: bool,
    n_sites: int = 64,
    n_plans: int = 6,
    rounds: int = 120,
) -> dict[str, Any]:
    """Replay a storm plan's partition/heal cycle against live views.

    The ``intern`` grid axis selects per-event ``PartitionView``
    reconstruction (``False``) or the network's interned view cache
    (``True``).  A handful of distinct group layouts recur across many
    rounds — exactly the shape of :func:`region_storm_plan` waves — and
    each partition event also pays its trace record (whose component
    rendering the interned views memoize).  Counters must be identical
    on both sides; only the wall time may differ.
    """
    rng = RngRegistry(seed).stream("churn-bench")
    sched = Scheduler()
    tracer = Tracer()
    network = Network(sched, tracer, RngRegistry(seed), intern_views=intern)
    for i in range(n_sites):
        _Sink(i, network)
    plans = [
        tuple(tuple(g) for g in random_partition_groups(rng, network.sites, 1 + q % 3))
        for q in range(n_plans)
    ]
    checksum = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        for plan in plans:
            network.set_partition(plan)
            view = network.partition
            checksum += len(view.components)
            # the questions termination keeps asking under a storm
            src = (r + len(plan)) % n_sites
            checksum += len(view.component_of(src))
            checksum += view.reachable(src, (src + 7) % n_sites)
        network.heal()
    wall = time.perf_counter() - t0
    return {
        "counters": {
            "epochs": network.epoch,
            "partitions_traced": tracer.count("partition"),
            "heals_traced": tracer.count("heal"),
            "checksum": checksum,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# persistent-pool executor microbench
# ----------------------------------------------------------------------


def _probe_catalog() -> Any:
    """A small pure catalog (no RNG) for the warm-pool probe task."""
    from repro.replication.catalog import CatalogBuilder

    builder = CatalogBuilder()
    for i in range(4):
        builder.replicated_item(f"p{i}", sites=[1, 2, 3], r=2, w=2)
    return builder.build()


def warm_pool_probe(seed: int, n_events: int = 500) -> dict[str, Any]:
    """One small sweep task: a mini scheduler drain over a cached catalog.

    Deliberately light — the ``suite_warm_pool`` case measures executor
    overhead, so per-task work must not drown out pool creation.  The
    catalog goes through :func:`~repro.engine.executor.worker_cache`,
    so a warm worker builds it once across every sweep of the campaign.
    """
    catalog = worker_cache(("bench-probe-catalog",), _probe_catalog)
    sched = Scheduler()
    for i in range(n_events):
        sched.call_fixed(float((i * 2654435761 + seed) % 211), _noop)
    sched.run()
    return {
        "counters": {
            "events_run": sched.events_run,
            "items": len(catalog.item_names),
            "final_now": sched.now,
        },
        "timing": {},
    }


def suite_warm_pool_trial(
    seed: int,
    warm: bool,
    n_sweeps: int = 6,
    runs_per_sweep: int = 8,
    pool_workers: int = 2,
    probe_events: int = 500,
) -> dict[str, Any]:
    """Run a campaign of small sweeps: pool-per-sweep vs one warm pool.

    The ``warm`` grid axis selects the legacy executor (a process pool
    created and torn down inside every ``run_sweep`` call) or a single
    :class:`~repro.engine.executor.SweepRunner` kept alive across the
    whole campaign — the shape of the bench suite itself, whose cases
    all ride one warm pool under ``--persistent-pool``.  Counters must
    be identical on both sides; only the wall time may differ.  In
    environments where pools cannot be created at all (sandboxes,
    nested pools) both arms degrade to serial and stay identical.
    """
    specs = [
        SweepSpec(
            name=f"warm-pool-{i}",
            task=warm_pool_probe,
            grid={},
            runs=runs_per_sweep,
            base_seed=seed * 1009 + i,
            fixed={"n_events": probe_events},
        )
        for i in range(n_sweeps)
    ]
    t0 = time.perf_counter()
    if warm:
        with SweepRunner(workers=pool_workers) as runner:
            outcomes = [runner.run_sweep(spec) for spec in specs]
    else:
        outcomes = [run_sweep(spec, workers=pool_workers) for spec in specs]
    wall = time.perf_counter() - t0
    events = 0
    checksum = 0
    tasks = 0
    for outcome in outcomes:
        for result in outcome.results:
            tasks += 1
            events += result.value["counters"]["events_run"]
            checksum += int(result.value["counters"]["final_now"]) + result.seed % 997
    return {
        "counters": {
            "sweeps": len(outcomes),
            "tasks": tasks,
            "events_run": events,
            "checksum": checksum,
        },
        "timing": {"wall_s": wall},
    }


# ----------------------------------------------------------------------
# the default suite
# ----------------------------------------------------------------------


def ab_speedup(param: str) -> Any:
    """Derived-timing hook: paired legacy/optimized speedup.

    Rows are paired by run index — the same seed, hence the *same*
    workload, on both sides of the A/B axis — and the committed speedup
    is the mean of the per-pair wall-time ratios (the repo's usual
    paired-comparison design; an unpaired min would compare different
    workloads)."""

    def derive(rows: list[dict[str, Any]]) -> dict[str, Any]:
        legacy: dict[int, float] = {}
        optimized: dict[int, float] = {}
        for row in rows:
            bucket = optimized if row["params"][param] else legacy
            run = row["run"]
            # best wall per run across repeats: noise hits some repeats,
            # not the code path under test
            bucket[run] = min(bucket.get(run, float("inf")), row["wall_s"])
        paired = sorted(set(legacy) & set(optimized))
        if not paired:
            return {}
        ratios = [legacy[run] / optimized[run] for run in paired]
        return {
            "legacy_s": sum(legacy[run] for run in paired) / len(paired),
            "optimized_s": sum(optimized[run] for run in paired) / len(paired),
            "speedup": sum(ratios) / len(ratios),
        }

    return derive


#: grid sizes per scale; "quick" keeps the property tests snappy.
_SCALES = {
    "full": {
        "drain_events": 20_000,
        "commit_txns": 16,
        "heavy_txns": 120,
        "heavy_sites": 12,
        "heavy_runs": 2,
        "fanout_rounds": 40,
        "wal_txns": 400,
        "wal_replays": 6,
        "trace_events": 40_000,
        "trace_queries": 120,
        "churn_sites": 64,
        "churn_rounds": 120,
        "warm_sweeps": 6,
        "warm_runs": 8,
        "skewed_txns": 80,
        "read_mostly_txns": 100,
        "cross_region_txns": 40,
        "elastic_txns": 60,
        "repeats": 3,
    },
    "quick": {
        "drain_events": 2_000,
        "commit_txns": 6,
        "heavy_txns": 24,
        "heavy_sites": 6,
        "heavy_runs": 1,
        "fanout_rounds": 3,
        "wal_txns": 40,
        "wal_replays": 1,
        "trace_events": 3_000,
        "trace_queries": 20,
        "churn_sites": 12,
        "churn_rounds": 6,
        "warm_sweeps": 2,
        "warm_runs": 3,
        "skewed_txns": 16,
        "read_mostly_txns": 20,
        "cross_region_txns": 10,
        "elastic_txns": 24,
        "repeats": 1,
    },
}


def default_suite(scale: str = "full") -> BenchSuite:
    """The registered benchmark suite at ``"full"`` (committed
    baselines) or ``"quick"`` (tests) scale."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    s = _SCALES[scale]
    repeats = s["repeats"]
    return BenchSuite(
        [
            BenchCase(
                name="scheduler_drain",
                spec=SweepSpec(
                    name="bench-scheduler-drain",
                    task=scheduler_drain_trial,
                    grid={},
                    runs=2,
                    fixed={"n_events": s["drain_events"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="commit_mix",
                spec=SweepSpec(
                    name="bench-commit-mix",
                    task=commit_mix_trial,
                    grid={"protocol": ["2pc", "3pc", "qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["commit_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="heavy_workload",
                spec=SweepSpec(
                    name="bench-heavy-workload",
                    task=heavy_workload_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=s["heavy_runs"],
                    seeding="offset",
                    fixed={"n_txns": s["heavy_txns"], "n_sites": s["heavy_sites"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="wan_storm",
                spec=SweepSpec(
                    name="bench-wan-storm",
                    task=wan_storm_trial,
                    grid={"protocol": ["qtp1", "qtp2"], "heal": [False, True]},
                    runs=1,
                    seeding="offset",
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="skewed_contention",
                spec=SweepSpec(
                    name="bench-skewed-contention",
                    task=skewed_contention_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["skewed_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="read_mostly",
                spec=SweepSpec(
                    name="bench-read-mostly",
                    task=read_mostly_trial,
                    grid={"protocol": ["2pc", "qtp1"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["read_mostly_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="cross_region_txn",
                spec=SweepSpec(
                    name="bench-cross-region-txn",
                    task=cross_region_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["cross_region_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="elastic_join",
                spec=SweepSpec(
                    name="bench-elastic-join",
                    task=elastic_join_trial,
                    grid={"protocol": ["qtp1", "qtp2"]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["elastic_txns"]},
                ),
                repeats=repeats,
            ),
            BenchCase(
                name="net_deliver_fanout",
                spec=SweepSpec(
                    name="bench-net-deliver-fanout",
                    task=net_fanout_trial,
                    grid={"cached": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={"rounds": s["fanout_rounds"]},
                ),
                repeats=repeats,
                derived=ab_speedup("cached"),
            ),
            BenchCase(
                name="wal_append",
                spec=SweepSpec(
                    name="bench-wal-append",
                    task=wal_append_trial,
                    grid={"grouped": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={"n_txns": s["wal_txns"], "replays": s["wal_replays"]},
                ),
                repeats=repeats,
                derived=ab_speedup("grouped"),
            ),
            BenchCase(
                name="trace_record",
                spec=SweepSpec(
                    name="bench-trace-record",
                    task=trace_record_trial,
                    grid={"columnar": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_events": s["trace_events"],
                        "queries": s["trace_queries"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("columnar"),
            ),
            BenchCase(
                name="partition_churn",
                spec=SweepSpec(
                    name="bench-partition-churn",
                    task=partition_churn_trial,
                    grid={"intern": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_sites": s["churn_sites"],
                        "rounds": s["churn_rounds"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("intern"),
            ),
            BenchCase(
                name="suite_warm_pool",
                spec=SweepSpec(
                    name="bench-suite-warm-pool",
                    task=suite_warm_pool_trial,
                    grid={"warm": [False, True]},
                    runs=2,
                    seeding="offset",
                    fixed={
                        "n_sweeps": s["warm_sweeps"],
                        "runs_per_sweep": s["warm_runs"],
                    },
                ),
                repeats=repeats,
                derived=ab_speedup("warm"),
            ),
        ]
    )
