"""Benchmark cases, the suite registry, and baseline artifacts.

A :class:`BenchCase` wraps a :class:`~repro.engine.spec.SweepSpec`
whose task functions return ``{"counters": {...}, "timing": {...}}``:

* ``counters`` are **deterministic** — a pure function of the seed
  (messages sent/delivered, WAL records forced, commits/aborts, events
  run).  They are the regression gate: any drift against the committed
  baseline fails ``bench diff``.
* ``timing`` rows are wall-clock floats — machine-dependent noise,
  recorded for trend-reading and compared only within a configurable
  ratio.

:class:`BenchSuite` runs cases through the PR 1 sweep engine
(:func:`~repro.engine.executor.run_sweep` — so the whole suite can fan
out over workers, and counters are bit-identical at every worker
count), re-runs each case ``repeats`` times for a
:func:`~repro.experiments.stats.mean_ci` wall-time interval, and
asserts that the deterministic rows agree across repeats.

:class:`BaselineStore` reads/writes the committed ``BENCH_<case>.json``
files at the repo root, canonically encoded so the deterministic
portion is byte-stable (the fixed-point property tests pin this).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import StoreError
from repro.engine.executor import SweepOutcome, SweepRunner, run_sweep
from repro.engine.spec import SweepSpec
from repro.engine.store import jsonable

#: bump when the BENCH_<case>.json layout changes shape.
SCHEMA_VERSION = 1

#: committed baseline filename prefix (repo root).
BASELINE_PREFIX = "BENCH_"


class BenchError(RuntimeError):
    """A benchmark case misbehaved (nondeterminism, bad task contract)."""


class BenchTimeout(BenchError):
    """A benchmark case overran its soft timeout."""


class _CaseWatchdog:
    """Soft per-case timeout: dump stacks and interrupt, don't hang CI.

    A hung case would otherwise eat the whole CI job's
    ``timeout-minutes`` and die without diagnostics.  The watchdog arms
    a daemon timer; on expiry it prints every thread's traceback
    (``faulthandler``) to stderr and raises ``KeyboardInterrupt`` in
    the main thread, which :meth:`BenchSuite.run_case` converts into a
    :class:`BenchTimeout`.  Soft by design — a task stuck in
    uninterruptible C code can still wedge, but every pure-Python or
    pool-waiting hang is caught with a usable stack.
    """

    def __init__(self, case: str, timeout_s: float | None) -> None:
        self.case = case
        self.timeout_s = timeout_s
        self.fired = False
        self._timer: Any = None

    def __enter__(self) -> "_CaseWatchdog":
        if self.timeout_s is not None and self.timeout_s > 0:
            import threading

            self._timer = threading.Timer(self.timeout_s, self._fire)
            self._timer.daemon = True
            self._timer.start()
        return self

    def _fire(self) -> None:
        import _thread
        import faulthandler
        import sys

        self.fired = True
        print(
            f"bench: case {self.case!r} exceeded its {self.timeout_s:g}s soft "
            f"timeout; dumping all thread stacks:",
            file=sys.stderr,
            flush=True,
        )
        faulthandler.dump_traceback(file=sys.stderr)
        _thread.interrupt_main()

    def __exit__(self, *exc: Any) -> None:
        if self._timer is not None:
            self._timer.cancel()


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: a sweep plus timing policy.

    Args:
        name: case identifier; becomes ``BENCH_<name>.json``.
        spec: the deterministic workload.  Task functions must return
            ``{"counters": dict, "timing": dict}`` (timing optional).
        repeats: how many times the sweep is re-run for the wall-time
            confidence interval (counters must agree across repeats).
        derived: optional hook mapping the per-row timing list to extra
            derived timing entries (e.g. a legacy/optimized speedup).
    """

    name: str
    spec: SweepSpec
    repeats: int = 3
    derived: Callable[[list[dict[str, Any]]], dict[str, Any]] | None = None

    def __post_init__(self) -> None:
        bad = set(self.name) - set("abcdefghijklmnopqrstuvwxyz0123456789_-")
        if bad:
            raise ValueError(f"case name {self.name!r} has unsafe characters {sorted(bad)}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")


def _split_value(case: str, value: Any) -> tuple[dict[str, Any], dict[str, Any]]:
    """Validate the task contract and split counters from timing."""
    if not isinstance(value, dict) or "counters" not in value:
        raise BenchError(
            f"case {case!r}: task must return {{'counters': ..., 'timing': ...}}, "
            f"got {type(value).__name__}"
        )
    timing = value.get("timing", {})
    return value["counters"], timing


def deterministic_rows(case: str, outcome: SweepOutcome) -> list[dict[str, Any]]:
    """The counter rows of an executed case sweep (JSON-safe)."""
    rows = []
    for result in outcome.results:
        counters, _timing = _split_value(case, result.value)
        rows.append(
            {
                "params": jsonable(result.params),
                "run": result.run,
                "seed": result.seed,
                "counters": jsonable(counters),
            }
        )
    return rows


def timing_rows(case: str, outcome: SweepOutcome) -> list[dict[str, Any]]:
    """The wall-clock rows of an executed case sweep (JSON-safe)."""
    rows = []
    for result in outcome.results:
        _counters, timing = _split_value(case, result.value)
        rows.append({"params": jsonable(result.params), "run": result.run, **jsonable(timing)})
    return rows


def deterministic_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """A baseline payload with the machine-dependent timing stripped.

    This is the byte-stable portion: two runs of the same suite at any
    worker count encode it identically, and ``bench diff`` compares
    exactly this.
    """
    return {k: v for k, v in payload.items() if k != "timing"}


def encode(payload: dict[str, Any]) -> str:
    """Canonical baseline encoding (sorted keys, fixed indentation)."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


class BenchSuite:
    """Ordered registry of benchmark cases."""

    def __init__(self, cases: Iterable[BenchCase] = ()) -> None:
        self._cases: dict[str, BenchCase] = {}
        for case in cases:
            self.add(case)

    def add(self, case: BenchCase) -> BenchCase:
        """Register a case (duplicate names are a configuration bug)."""
        if case.name in self._cases:
            raise ValueError(f"duplicate bench case {case.name!r}")
        self._cases[case.name] = case
        return case

    def __iter__(self) -> Iterator[BenchCase]:
        return iter(self._cases.values())

    def __len__(self) -> int:
        return len(self._cases)

    @property
    def names(self) -> list[str]:
        """Registered case names, in registration order."""
        return list(self._cases)

    def case(self, name: str) -> BenchCase:
        """Look up one case by name."""
        try:
            return self._cases[name]
        except KeyError:
            raise KeyError(
                f"unknown bench case {name!r}; registered: {self.names}"
            ) from None

    def run_case(
        self,
        name: str,
        workers: int = 1,
        measure_time: bool = True,
        runner: SweepRunner | None = None,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Execute one case; returns its full baseline payload.

        With ``measure_time=False`` the sweep runs once and the payload
        carries no ``timing`` key at all — that is the byte-stable form
        the fixed-point property tests exercise.  With a ``runner``,
        the case's sweeps execute on that persistent warm pool (and
        ``workers`` is ignored in favour of the runner's) — counters
        are identical either way.

        ``timeout_s`` arms a soft per-case watchdog (covering *all*
        repeats): on expiry the case fails fast as a
        :class:`BenchTimeout` with every thread's stack dumped to
        stderr, instead of silently eating the CI job's
        ``timeout-minutes``.

        Raises:
            BenchError: when the deterministic rows differ between
                repeats — a case leaking nondeterminism must fail loudly
                rather than commit an unstable baseline.
            BenchTimeout: the case overran ``timeout_s``.
        """
        case = self.case(name)
        repeats = case.repeats if measure_time else 1
        walls: list[float] = []
        rows: list[dict[str, Any]] | None = None
        t_rows: list[dict[str, Any]] = []
        watchdog = _CaseWatchdog(case.name, timeout_s)
        try:
            with watchdog:
                for repeat in range(repeats):
                    t0 = time.perf_counter()
                    if runner is not None:
                        outcome = runner.run_sweep(case.spec)
                    else:
                        outcome = run_sweep(case.spec, workers=workers)
                    walls.append(time.perf_counter() - t0)
                    fresh = deterministic_rows(case.name, outcome)
                    if rows is None:
                        rows = fresh
                    elif rows != fresh:
                        raise BenchError(
                            f"case {case.name!r}: deterministic counters differ between "
                            "repeats — the workload is leaking nondeterminism"
                        )
                    if measure_time:
                        # every repeat contributes timing samples, so derived
                        # numbers (the committed speedups) are not a single
                        # last-repeat measurement
                        for row in timing_rows(case.name, outcome):
                            t_rows.append({**row, "repeat": repeat})
        except KeyboardInterrupt:
            if not watchdog.fired:
                raise  # a real Ctrl-C, not the watchdog
            raise BenchTimeout(
                f"case {case.name!r} overran its {timeout_s:g}s soft timeout "
                f"({len(walls)}/{repeats} repeats finished; thread stacks were "
                "dumped to stderr)"
            ) from None
        payload: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "case": case.name,
            "spec": case.spec.summary(),
            "rows": rows,
        }
        if measure_time:
            payload["timing"] = {
                "wall_s": _summarize(walls),
                "rows": t_rows,
                "derived": case.derived(t_rows) if case.derived is not None else {},
            }
        return payload

    def run(
        self,
        names: Iterable[str] | None = None,
        workers: int = 1,
        measure_time: bool = True,
        runner: SweepRunner | None = None,
        timeout_s: float | None = None,
    ) -> dict[str, dict[str, Any]]:
        """Execute several cases (default: all), in registration order.

        Pass a :class:`~repro.engine.executor.SweepRunner` to run every
        case's sweeps on one warm pool (the ``--persistent-pool`` CLI
        mode): seventeen cases × three repeats then cost one pool, not 51.
        ``timeout_s`` applies *per case*, not to the whole run.
        """
        picked = list(names) if names is not None else self.names
        return {
            name: self.run_case(
                name,
                workers=workers,
                measure_time=measure_time,
                runner=runner,
                timeout_s=timeout_s,
            )
            for name in picked
        }


def _summarize(walls: list[float]) -> dict[str, Any]:
    """Mean and t-interval of the repeat wall times (stats.mean_ci)."""
    from repro.experiments.stats import mean_ci

    ci = mean_ci(walls)
    return {"mean": ci.mean, "low": ci.low, "high": ci.high, "n": ci.n}


class BaselineStore:
    """The committed ``BENCH_<case>.json`` files under one root."""

    def __init__(self, root: str | Path = ".") -> None:
        self.root = Path(root)

    def path_for(self, case: str) -> Path:
        """The baseline path of a case."""
        return self.root / f"{BASELINE_PREFIX}{case}.json"

    def save(self, payload: dict[str, Any]) -> Path:
        """Write one case's baseline; returns its path."""
        path = self.path_for(payload["case"])
        self.root.mkdir(parents=True, exist_ok=True)
        path.write_text(encode(payload))
        return path

    def load(self, case: str) -> dict[str, Any]:
        """Read a committed baseline back.

        Raises:
            FileNotFoundError: no baseline for that case.
            StoreError: the baseline's schema version does not match
                this library's — stale baselines must be regenerated
                with ``bench update``, never silently reinterpreted.
        """
        payload = json.loads(self.path_for(case).read_text())
        found = payload.get("schema")
        if found != SCHEMA_VERSION:
            raise StoreError(
                f"baseline {case!r} has schema {found!r}, this library "
                f"writes {SCHEMA_VERSION}; regenerate it with "
                "`python -m repro.bench update`"
            )
        return payload

    def known_cases(self) -> list[str]:
        """Case names with a committed baseline, sorted."""
        return sorted(
            p.name[len(BASELINE_PREFIX) : -len(".json")]
            for p in self.root.glob(f"{BASELINE_PREFIX}*.json")
        )
