"""Comparing fresh bench runs against committed baselines.

The contract mirrors the suite's split of every case into a
deterministic part and a timing part:

* **counters, spec, schema, row layout** — compared exactly.  Any
  difference is a hard failure (:attr:`CaseDiff.errors`): either a
  genuine regression (a protocol now sends more messages, a workload
  commits fewer transactions) or an intentional change that must be
  re-baselined with ``bench update`` and reviewed in the diff of the
  committed ``BENCH_*.json``.
* **wall time** — machine-dependent; the fresh mean is compared to the
  committed mean within a configurable ratio and reported as a warning
  (:attr:`CaseDiff.warnings`) when it strays outside.  Warnings never
  fail ``--check`` unless ``--strict-time`` asks them to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.bench.suite import (
    BaselineStore,
    BenchSuite,
    deterministic_payload,
)
from repro.common.errors import StoreError

#: how far the fresh wall-time mean may stray from the committed one
#: (in either direction) before a warning is raised.
DEFAULT_TIME_TOLERANCE = 5.0

#: cap on per-row mismatch listings so a wholesale drift stays readable.
MAX_ROW_REPORTS = 12


@dataclass
class CaseDiff:
    """The comparison verdict for one case."""

    case: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    speedup: float | None = None
    base_speedup: float | None = None
    base_wall: float | None = None
    fresh_wall: float | None = None

    @property
    def ok(self) -> bool:
        """True when no hard failure was found."""
        return not self.errors

    def describe(self) -> str:
        """Multi-line human-readable report."""
        status = "ok" if self.ok else "DRIFT"
        lines = [f"{self.case}: {status}"]
        lines.extend(f"  error: {e}" for e in self.errors)
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def compare_case(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> CaseDiff:
    """Compare one fresh payload against its committed baseline."""
    name = fresh.get("case", baseline.get("case", "?"))
    diff = CaseDiff(case=name)
    base_det = deterministic_payload(baseline)
    fresh_det = deterministic_payload(fresh)
    if base_det.get("schema") != fresh_det.get("schema"):
        diff.errors.append(
            f"schema mismatch: baseline {base_det.get('schema')!r} vs "
            f"fresh {fresh_det.get('schema')!r} — regenerate with bench update"
        )
        return diff
    if base_det.get("spec") != fresh_det.get("spec"):
        diff.errors.append(
            "sweep spec changed (grid/runs/seeding/task differ from the "
            "committed baseline) — re-baseline with bench update"
        )
        return diff
    _compare_rows(diff, base_det.get("rows", []), fresh_det.get("rows", []))
    _compare_timing(diff, baseline.get("timing"), fresh.get("timing"), time_tolerance)
    diff.base_wall = _wall_mean(baseline.get("timing"))
    diff.fresh_wall = _wall_mean(fresh.get("timing"))
    derived = (fresh.get("timing") or {}).get("derived") or {}
    if "speedup" in derived:
        diff.speedup = derived["speedup"]
    base_derived = (baseline.get("timing") or {}).get("derived") or {}
    if "speedup" in base_derived:
        diff.base_speedup = base_derived["speedup"]
    return diff


def _wall_mean(timing: dict[str, Any] | None) -> float | None:
    """The mean wall time of a payload's timing block, if recorded."""
    if not timing:
        return None
    return (timing.get("wall_s") or {}).get("mean")


def _compare_rows(
    diff: CaseDiff, base_rows: list[dict[str, Any]], fresh_rows: list[dict[str, Any]]
) -> None:
    """Exact comparison of the deterministic counter rows."""
    if len(base_rows) != len(fresh_rows):
        diff.errors.append(
            f"row count changed: baseline {len(base_rows)} vs fresh {len(fresh_rows)}"
        )
        return
    reported = 0
    for index, (base, new) in enumerate(zip(base_rows, fresh_rows)):
        if base == new:
            continue
        if reported >= MAX_ROW_REPORTS:
            diff.errors.append("... further row drift suppressed")
            return
        for key in ("params", "run", "seed"):
            if base.get(key) != new.get(key):
                diff.errors.append(
                    f"row {index}: {key} changed {base.get(key)!r} -> {new.get(key)!r}"
                )
                reported += 1
        base_counters = base.get("counters", {})
        new_counters = new.get("counters", {})
        for counter in sorted(set(base_counters) | set(new_counters)):
            old_value = base_counters.get(counter, "<absent>")
            new_value = new_counters.get(counter, "<absent>")
            if old_value != new_value:
                diff.errors.append(
                    f"row {index} ({_cell_label(base)}): counter {counter!r} "
                    f"drifted {old_value!r} -> {new_value!r}"
                )
                reported += 1


def _cell_label(row: dict[str, Any]) -> str:
    params = row.get("params", {})
    cell = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{cell or 'single cell'}, run {row.get('run')}"


def _compare_timing(
    diff: CaseDiff,
    base_timing: dict[str, Any] | None,
    fresh_timing: dict[str, Any] | None,
    tolerance: float,
) -> None:
    """Ratio check on the mean wall time (noise-tolerant, warning only)."""
    if tolerance <= 0 or not base_timing or not fresh_timing:
        return
    base_mean = (base_timing.get("wall_s") or {}).get("mean")
    fresh_mean = (fresh_timing.get("wall_s") or {}).get("mean")
    if not base_mean or not fresh_mean:
        return
    ratio = fresh_mean / base_mean
    if ratio > tolerance or ratio < 1.0 / tolerance:
        diff.warnings.append(
            f"wall time {fresh_mean:.3f}s is {ratio:.2f}x the committed "
            f"{base_mean:.3f}s (tolerance {tolerance:g}x) — investigate or "
            "re-baseline"
        )


def _compare_to_baseline(
    name: str,
    fresh: dict[str, Any],
    store: BaselineStore,
    time_tolerance: float,
) -> CaseDiff:
    """Load one committed baseline and compare a fresh payload to it."""
    try:
        baseline = store.load(name)
    except FileNotFoundError:
        return CaseDiff(
            case=name,
            errors=[
                f"no committed baseline {store.path_for(name)} — "
                "create it with bench update"
            ],
        )
    except StoreError as exc:
        return CaseDiff(case=name, errors=[str(exc)])
    return compare_case(baseline, fresh, time_tolerance)


def diff_against_baselines(
    suite: BenchSuite,
    store: BaselineStore,
    names: Iterable[str] | None = None,
    workers: int = 1,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    runner: Any | None = None,
    timeout_s: float | None = None,
) -> list[CaseDiff]:
    """Run the suite fresh and compare each case to its baseline.

    ``runner`` (a :class:`~repro.engine.executor.SweepRunner`) executes
    every case on one persistent warm pool — the ``--persistent-pool``
    CLI mode.
    """
    picked = list(names) if names is not None else suite.names
    return [
        _compare_to_baseline(
            name,
            suite.run_case(name, workers=workers, runner=runner, timeout_s=timeout_s),
            store,
            time_tolerance,
        )
        for name in picked
    ]


def markdown_summary(results: list[CaseDiff]) -> str:
    """A before/after table of the diff, in GitHub-flavoured markdown.

    The CI bench job appends this to the Actions step summary: one row
    per case with the counter verdict, the committed vs fresh wall
    times, their ratio, and — for A/B cases — the committed and fresh
    legacy/optimized speedups.
    """
    lines = [
        "### Benchmark diff",
        "",
        "| case | counters | baseline wall (s) | fresh wall (s) | ratio | committed speedup | fresh speedup |",
        "| --- | --- | ---: | ---: | ---: | ---: | ---: |",
    ]

    def fmt(value: float | None, suffix: str = "") -> str:
        return f"{value:.3f}{suffix}" if value is not None else "—"

    for result in results:
        ratio = (
            result.fresh_wall / result.base_wall
            if result.fresh_wall is not None and result.base_wall
            else None
        )
        lines.append(
            "| {case} | {verdict} | {base} | {fresh} | {ratio} | {base_sp} | {fresh_sp} |".format(
                case=f"`{result.case}`",
                verdict="ok" if result.ok else "**DRIFT**",
                base=fmt(result.base_wall),
                fresh=fmt(result.fresh_wall),
                ratio=fmt(ratio, "x"),
                base_sp=fmt(result.base_speedup, "x"),
                fresh_sp=fmt(result.speedup, "x"),
            )
        )
    drifted = [r.case for r in results if not r.ok]
    lines.append("")
    if drifted:
        lines.append(
            f"**{len(drifted)} case(s) drifted:** " + ", ".join(f"`{c}`" for c in drifted)
        )
    else:
        lines.append(f"{len(results)} case(s) clean — deterministic counters match the baselines.")
    return "\n".join(lines) + "\n"


def diff_stored_payloads(
    fresh_store: BaselineStore,
    baseline_store: BaselineStore,
    names: Iterable[str],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> list[CaseDiff]:
    """Compare already-written fresh artifacts against the baselines.

    The CI path: ``bench run --out DIR`` executes the suite once and
    uploads DIR; this diffs those exact payloads, so the gate and the
    uploaded artifacts come from the same run.
    """
    out: list[CaseDiff] = []
    for name in names:
        try:
            fresh = fresh_store.load(name)
        except FileNotFoundError:
            out.append(
                CaseDiff(
                    case=name,
                    errors=[
                        f"no fresh artifact {fresh_store.path_for(name)} — "
                        "run `bench run --out` first"
                    ],
                )
            )
            continue
        except StoreError as exc:
            out.append(CaseDiff(case=name, errors=[str(exc)]))
            continue
        out.append(_compare_to_baseline(name, fresh, baseline_store, time_tolerance))
    return out
