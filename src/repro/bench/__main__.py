"""``python -m repro.bench`` — the benchmark-regression CLI.

Subcommands:

* ``list``   — show registered cases and their sweep shapes.
* ``run``    — execute the suite and write fresh ``BENCH_*.json`` files
  to ``--out`` (CI uploads these as workflow artifacts).
* ``diff``   — execute the suite and compare against the committed
  baselines at ``--root``; ``--check`` exits non-zero on counter drift.
* ``update`` — rewrite the committed baselines (then commit the result;
  the diff of the JSON is the reviewable performance record).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.bench.cases import default_suite
from repro.bench.diff import (
    DEFAULT_TIME_TOLERANCE,
    diff_against_baselines,
    diff_stored_payloads,
    markdown_summary,
)
from repro.bench.suite import BaselineStore, BenchSuite
from repro.engine.executor import SweepRunner


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--case",
        action="append",
        dest="cases",
        metavar="NAME",
        help="restrict to one case (repeatable; default: all)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the sweep engine (default 1; counters are "
        "identical at every worker count)",
    )
    parser.add_argument(
        "--scale",
        choices=["full", "quick"],
        default="full",
        help="workload scale (quick is for smoke runs; committed baselines "
        "are always full scale)",
    )
    parser.add_argument(
        "--persistent-pool",
        action="store_true",
        help="run every case's sweeps on one warm worker pool instead of a "
        "pool per sweep (needs --workers > 1; counters are identical "
        "either way)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=900.0,
        metavar="SECONDS",
        help="soft per-case timeout: a case exceeding it fails fast with all "
        "thread stacks dumped to stderr instead of hanging the job "
        "(default 900; 0 disables)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="benchmark-regression harness over the committed BENCH_*.json baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered cases")

    run = sub.add_parser("run", help="run the suite, write fresh artifacts")
    _add_common(run)
    run.add_argument(
        "--out",
        default="bench-out",
        help="directory for fresh BENCH_*.json artifacts (default: bench-out)",
    )

    diff = sub.add_parser("diff", help="compare a fresh run against committed baselines")
    _add_common(diff)
    diff.add_argument(
        "--root", default=".", help="directory of committed baselines (default: .)"
    )
    diff.add_argument(
        "--time-tolerance",
        type=float,
        default=DEFAULT_TIME_TOLERANCE,
        help="allowed wall-time ratio either way before a warning "
        f"(default {DEFAULT_TIME_TOLERANCE:g}; <= 0 disables the time check)",
    )
    diff.add_argument(
        "--fresh",
        metavar="DIR",
        help="compare the BENCH_*.json already written to DIR by `run --out` "
        "instead of re-executing the suite (the gate and the uploaded "
        "artifacts then come from the same run)",
    )
    diff.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on counter drift (the CI gate)",
    )
    diff.add_argument(
        "--strict-time",
        action="store_true",
        help="escalate wall-time warnings to failures under --check",
    )
    diff.add_argument(
        "--summary",
        metavar="FILE",
        help="append a markdown before/after table to FILE (CI passes "
        "$GITHUB_STEP_SUMMARY)",
    )

    update = sub.add_parser("update", help="rewrite the committed baselines")
    _add_common(update)
    update.add_argument(
        "--root", default=".", help="directory of committed baselines (default: .)"
    )
    return parser


def _cmd_list(suite: BenchSuite) -> int:
    for case in suite:
        spec = case.spec
        grid = {k: list(v) for k, v in spec.grid.items()}
        print(f"{case.name}: grid={grid} runs={spec.runs} repeats={case.repeats}")
    return 0


def _runner_for(args: argparse.Namespace) -> SweepRunner | None:
    """A persistent warm pool when ``--persistent-pool`` asks for one."""
    if getattr(args, "persistent_pool", False) and args.workers > 1:
        return SweepRunner(workers=args.workers)
    return None


def _timeout_for(args: argparse.Namespace) -> float | None:
    """The per-case soft timeout, with 0 (or less) meaning disabled."""
    timeout = getattr(args, "timeout_s", None)
    return timeout if timeout is not None and timeout > 0 else None


def _cmd_run(suite: BenchSuite, args: argparse.Namespace) -> int:
    store = BaselineStore(args.out)
    runner = _runner_for(args)
    try:
        payloads = suite.run(
            args.cases,
            workers=args.workers,
            runner=runner,
            timeout_s=_timeout_for(args),
        )
    finally:
        if runner is not None:
            runner.close()
    for name, payload in payloads.items():
        path = store.save(payload)
        print(f"{name}: wrote {path} ({_timing_note(payload)})")
    return 0


def _cmd_diff(suite: BenchSuite, args: argparse.Namespace) -> int:
    if args.fresh:
        results = diff_stored_payloads(
            BaselineStore(args.fresh),
            BaselineStore(args.root),
            names=args.cases or suite.names,
            time_tolerance=args.time_tolerance,
        )
    else:
        runner = _runner_for(args)
        try:
            results = diff_against_baselines(
                suite,
                BaselineStore(args.root),
                names=args.cases,
                workers=args.workers,
                time_tolerance=args.time_tolerance,
                runner=runner,
                timeout_s=_timeout_for(args),
            )
        finally:
            if runner is not None:
                runner.close()
    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(markdown_summary(results))
    counter_drift = False
    time_failures = False
    for result in results:
        print(result.describe())
        if result.speedup is not None:
            print(f"  speedup: {result.speedup:.2f}x")
        if result.errors:
            counter_drift = True
        if args.strict_time and result.warnings:
            time_failures = True
    if counter_drift:
        print("bench diff: DRIFT — deterministic counters changed; either fix the")
        print("regression or re-baseline with `python -m repro.bench update`.")
    elif time_failures:
        print("bench diff: wall-time drift beyond tolerance (--strict-time); the")
        print("deterministic counters are clean — check machine load before")
        print("touching the baselines.")
    else:
        print(f"bench diff: {len(results)} case(s) clean")
    if counter_drift or time_failures:
        return 1 if args.check else 0
    return 0


def _cmd_update(suite: BenchSuite, args: argparse.Namespace) -> int:
    store = BaselineStore(args.root)
    runner = _runner_for(args)
    try:
        payloads = suite.run(
            args.cases,
            workers=args.workers,
            runner=runner,
            timeout_s=_timeout_for(args),
        )
    finally:
        if runner is not None:
            runner.close()
    for name, payload in payloads.items():
        path = store.save(payload)
        print(f"{name}: baselined {path} ({_timing_note(payload)})")
    print("commit the rewritten BENCH_*.json files with your change.")
    return 0


def _timing_note(payload: dict[str, Any]) -> str:
    timing = payload.get("timing") or {}
    mean = (timing.get("wall_s") or {}).get("mean")
    note = f"wall {mean:.3f}s" if mean is not None else "untimed"
    derived = timing.get("derived") or {}
    if "speedup" in derived:
        note += f", speedup {derived['speedup']:.2f}x"
    return note


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(default_suite())
    suite = default_suite(args.scale)
    if args.command == "run":
        return _cmd_run(suite, args)
    if args.command == "diff":
        return _cmd_diff(suite, args)
    if args.command == "update":
        return _cmd_update(suite, args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
