"""Per-site durable storage substrate (system S4).

Commit protocols are meaningless without a notion of what survives a
crash.  Each site owns:

* a :class:`~repro.storage.wal.WriteAheadLog` — an append-only list of
  forced records; everything written before a crash survives it;
* a :class:`~repro.storage.store.ReplicaStore` — the versioned copies
  of data items this site hosts (Gifford's scheme identifies the most
  recent copy by version number);
* :func:`~repro.storage.recovery.recover_protocol_states` — replays the
  WAL after a crash to rebuild each in-flight transaction's durable
  protocol state (the paper's sites log votes, PC/PA entry, and
  decisions so they can rejoin termination after recovery).
"""

from repro.storage.store import ReplicaStore, VersionedValue
from repro.storage.wal import LogRecord, WriteAheadLog
from repro.storage.recovery import recover_protocol_states

__all__ = [
    "LogRecord",
    "ReplicaStore",
    "VersionedValue",
    "WriteAheadLog",
    "recover_protocol_states",
]
