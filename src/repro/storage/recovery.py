"""Crash recovery from the write-ahead log.

After a crash, a site reconstructs two things:

1. **Data** — committed writes are replayed from ``apply`` records into
   the replica store (idempotently: a replayed version that is not newer
   than the stored one is skipped, since the store may already hold it).
2. **Protocol state** — for each transaction with a ``begin`` but no
   decision, the last logged protocol record determines the durable
   local state the site recovers into: ``begin`` -> Q (it never voted,
   so by the paper's termination rules it is safe to treat as initial
   and abort-leaning), ``vote yes`` -> W, ``pc`` -> PC, ``pa`` -> PA.
   A site that recovers in W/PC/PA rejoins the termination protocol.
"""

from __future__ import annotations

from repro.protocols.states import TxnState
from repro.storage.store import ReplicaStore
from repro.storage.wal import WriteAheadLog


def replay_data(wal: WriteAheadLog, store: ReplicaStore) -> int:
    """Re-install committed writes into the store; returns replay count."""
    replayed = 0
    for record in wal:
        if record.kind != "apply":
            continue
        item = record.payload["item"]
        version = record.payload["version"]
        if not store.hosts(item):
            continue
        if store.read(item).version < version:
            store.write(item, record.payload["value"], version)
            replayed += 1
    return replayed


def recover_protocol_states(wal: WriteAheadLog) -> dict[str, TxnState]:
    """Durable local state of every undecided transaction on this site.

    Returns:
        Mapping txn id -> recovered :class:`TxnState` (one of Q, W, PC,
        PA; decided transactions are not in the map).
    """
    states: dict[str, TxnState] = {}
    for txn in wal.open_txns():
        anchor = wal.last_protocol_record(txn)
        if anchor is None:  # pragma: no cover - open_txns guarantees a begin
            continue
        if anchor.kind == "begin":
            states[txn] = TxnState.Q
        elif anchor.kind == "vote":
            states[txn] = TxnState.W if anchor.payload.get("vote") == "yes" else TxnState.Q
        elif anchor.kind == "pc":
            states[txn] = TxnState.PC
        elif anchor.kind == "pa":
            states[txn] = TxnState.PA
    return states
