"""Crash recovery from the write-ahead log.

After a crash, a site reconstructs two things:

1. **Data** — committed writes are replayed from ``apply`` records into
   the replica store (idempotently: a replayed version that is not newer
   than the stored one is skipped, since the store may already hold it).
   The replay rides the WAL's per-item newest-``apply`` index
   (:meth:`~repro.storage.wal.WriteAheadLog.latest_applies`): only the
   newest version of each touched item is considered, O(items touched)
   instead of O(len(wal)) — heavy-traffic logs hold thousands of
   records but touch a handful of items.  A legacy
   (``group_commit=False``) log has no index, so the replay falls back
   to the historical full scan; ``full_scan=True`` forces that path for
   A/B measurement (the ``recovery_replay`` bench case) and for the
   equivalence regression tests.  Both paths install the same versions
   and leave the store byte-identical; only the *count* of installs can
   differ (the full scan may walk one item through several successive
   versions where the index jumps straight to the newest).
2. **Protocol state** — for each transaction with a ``begin`` but no
   decision, the last logged protocol record determines the durable
   local state the site recovers into: ``begin`` -> Q (it never voted,
   so by the paper's termination rules it is safe to treat as initial
   and abort-leaning), ``vote yes`` -> W, ``pc`` -> PC, ``pa`` -> PA.
   A site that recovers in W/PC/PA rejoins the termination protocol.
"""

from __future__ import annotations

from repro.protocols.states import TxnState
from repro.storage.store import ReplicaStore
from repro.storage.wal import WriteAheadLog


def replay_data(wal: WriteAheadLog, store: ReplicaStore, full_scan: bool = False) -> int:
    """Re-install committed writes into the store; returns install count.

    Uses the WAL's per-item newest-``apply`` index when it exists (see
    module docstring); ``full_scan=True`` — or a legacy unindexed log —
    replays every ``apply`` record in LSN order instead.  Final store
    state is identical either way.
    """
    latest = None if full_scan else wal.latest_applies()
    replayed = 0
    if latest is not None:
        for item, (version, value) in latest.items():
            if not store.hosts(item):
                continue
            if store.read(item).version < version:
                store.write(item, value, version)
                replayed += 1
        return replayed
    for record in wal:
        if record.kind != "apply":
            continue
        item = record.payload["item"]
        version = record.payload["version"]
        if not store.hosts(item):
            continue
        if store.read(item).version < version:
            store.write(item, record.payload["value"], version)
            replayed += 1
    return replayed


def recover_protocol_states(wal: WriteAheadLog) -> dict[str, TxnState]:
    """Durable local state of every undecided transaction on this site.

    Returns:
        Mapping txn id -> recovered :class:`TxnState` (one of Q, W, PC,
        PA; decided transactions are not in the map).
    """
    states: dict[str, TxnState] = {}
    for txn in wal.open_txns():
        anchor = wal.last_protocol_record(txn)
        if anchor is None:  # pragma: no cover - open_txns guarantees a begin
            continue
        if anchor.kind == "begin":
            states[txn] = TxnState.Q
        elif anchor.kind == "vote":
            states[txn] = TxnState.W if anchor.payload.get("vote") == "yes" else TxnState.Q
        elif anchor.kind == "pc":
            states[txn] = TxnState.PC
        elif anchor.kind == "pa":
            states[txn] = TxnState.PA
    return states
