"""Write-ahead log.

The log is the only thing a site keeps across a crash.  Records are
appended with :meth:`WriteAheadLog.force` — named after the classical
"force-write" that must hit stable storage before the protocol takes
its next step (Gray's notes [9], Lampson & Sturgis [11]).

Record kinds used by the commit protocols:

=============  =====================================================
kind           meaning
=============  =====================================================
``begin``      site became a participant of txn (payload: writeset)
``vote``       site voted yes/no (payload: vote)
``pc``         site entered the PC (prepare-to-commit) state
``pa``         site entered the PA (prepare-to-abort) state
``commit``     site committed the transaction (irrevocable)
``abort``      site aborted the transaction (irrevocable)
``apply``      a committed write was applied (payload: item, value,
               version) — replayed by recovery into the replica store
=============  =====================================================

Hot-path notes: heavy-traffic runs append thousands of records per
site, and the commit protocols interrogate the log constantly
(``decision`` on every decision force and throughout termination,
``for_txn`` per in-doubt transaction per connectivity change).  The
log therefore keeps per-transaction indexes — ``decision`` and
``for_txn`` are O(1)/O(k) instead of a full reverse scan — plus a
per-*item* newest-``apply`` index (:meth:`WriteAheadLog.latest_applies`)
so crash recovery replays O(items touched) instead of rescanning the
whole log (see :func:`~repro.storage.recovery.replay_data`) — and
models stable-storage writes with a *group-commit buffer*: ``begin`` and
``apply`` records accumulate in the open batch, and a single flush is
charged when a record the protocol answers on (``vote``/``pc``/``pa``/
``commit``/``abort`` — all of which must hit stable storage before the
site replies to anyone) closes it.  :attr:`flushes` vs :attr:`forced` exposes
the batching to the benchmark harness.  ``group_commit=False``
restores the legacy behaviour — one flush per force and linear scans —
and is kept for A/B measurement by the ``wal_append`` bench case; the
record sequence and every query answer are identical in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.errors import StorageError

_VALID_KINDS = {"begin", "vote", "pc", "pa", "commit", "abort", "apply"}
_DECISION_KINDS = ("commit", "abort")
#: records a protocol step *answers on* — they must be on stable storage
#: before the site replies, so forcing one closes the group-commit batch.
#: ``begin`` and ``apply`` ride the batch: a begin is only acted on once
#: the vote it precedes is flushed, and applies are re-derivable from
#: the decision + writeset on recovery.
_FLUSH_KINDS = frozenset({"vote", "pc", "pa", "commit", "abort"})


@dataclass(frozen=True)
class LogRecord:
    """One durable log record."""

    lsn: int
    txn: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        body = f" {self.payload}" if self.payload else ""
        return f"[{self.lsn}] {self.txn} {self.kind}{body}"


class WriteAheadLog:
    """Append-only, crash-surviving log for one site."""

    def __init__(self, site: int, group_commit: bool = True) -> None:
        self.site = site
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._group_commit = group_commit
        # per-txn indexes (maintained only in group-commit mode)
        self._by_txn: dict[str, list[LogRecord]] = {}
        self._decisions: dict[str, str] = {}
        self._begin_order: list[str] = []
        self._has_begin: set[str] = set()
        # item -> (version, value) of the newest apply record, so
        # recovery replays per item touched, not per log record.
        self._applies: dict[str, tuple[int, Any]] = {}
        # group-commit accounting: records in the open batch, and how
        # many stable-storage flushes have been charged so far.
        self._unflushed = 0
        self.flushes = 0

    @property
    def forced(self) -> int:
        """Total records appended (the deterministic bench counter)."""
        return len(self._records)

    def force(self, txn: str, kind: str, **payload: Any) -> LogRecord:
        """Append a record and (conceptually) force it to stable storage.

        In group-commit mode the append joins the open batch; any
        record the protocol replies on (vote/pc/pa/commit/abort) closes
        the batch with a single flush covering everything buffered
        before it — the classical group commit, which preserves the
        paper's durability discipline while batching begins and applies
        behind the next protocol answer.  Legacy mode charges one flush
        per record.

        Raises:
            StorageError: on an unknown record kind, or on an attempt to
                log a second, different decision for the same transaction
                — decisions are irrevocable (paper §1), and the log is
                where that irrevocability lives.
        """
        if kind not in _VALID_KINDS:
            raise StorageError(f"unknown log record kind {kind!r}")
        is_decision = kind in _DECISION_KINDS
        if is_decision:
            prior = (
                self._decisions.get(txn)
                if self._group_commit
                else self._scan_decision(txn)
            )
            if prior is not None and prior != kind:
                raise StorageError(
                    f"site {self.site}: txn {txn} already logged {prior}; "
                    f"cannot log {kind}"
                )
        # the **payload kwargs dict is freshly built per call, so the
        # record can take ownership outright — no defensive re-copy.
        record = LogRecord(self._next_lsn, txn, kind, payload)
        self._next_lsn += 1
        self._records.append(record)
        if not self._group_commit:
            self.flushes += 1
            return record
        bucket = self._by_txn.get(txn)
        if bucket is None:
            bucket = self._by_txn[txn] = []
        bucket.append(record)
        if kind == "begin" and txn not in self._has_begin:
            self._has_begin.add(txn)
            self._begin_order.append(txn)
        self._unflushed += 1
        if is_decision and txn not in self._decisions:
            self._decisions[txn] = kind
        elif kind == "apply" and "item" in record.payload:
            # synthetic tests may force bare applies; only well-formed
            # records (the protocol always writes item/value/version)
            # enter the recovery index
            item = record.payload["item"]
            version = record.payload.get("version", 0)
            prior = self._applies.get(item)
            if prior is None or version > prior[0]:
                self._applies[item] = (version, record.payload.get("value"))
        if kind in _FLUSH_KINDS:
            self.flush()
        return record

    def flush(self) -> int:
        """Close the open group-commit batch; returns its record count.

        A no-op (and no flush charged) when nothing is buffered.
        """
        batch = self._unflushed
        if batch:
            self.flushes += 1
            self._unflushed = 0
        return batch

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def for_txn(self, txn: str) -> list[LogRecord]:
        """All records for one transaction, in LSN order."""
        if self._group_commit:
            return list(self._by_txn.get(txn, ()))
        return [r for r in self._records if r.txn == txn]

    def decision(self, txn: str) -> str | None:
        """The logged decision ("commit"/"abort") for txn, if any."""
        if self._group_commit:
            return self._decisions.get(txn)
        return self._scan_decision(txn)

    def _scan_decision(self, txn: str) -> str | None:
        """Legacy full reverse scan for the decision record."""
        for record in reversed(self._records):
            if record.txn == txn and record.kind in _DECISION_KINDS:
                return record.kind
        return None

    def latest_applies(self) -> dict[str, tuple[int, Any]] | None:
        """Newest ``apply`` per item: ``item -> (version, value)``.

        The recovery index: :func:`~repro.storage.recovery.replay_data`
        re-installs at most one version per item from this map instead
        of scanning every log record.  ``None`` in legacy
        (``group_commit=False``) mode, where no indexes are maintained
        — callers must fall back to the full scan.  The returned dict
        is the live index; treat it as read-only.
        """
        if self._group_commit:
            return self._applies
        return None

    def last_protocol_record(self, txn: str) -> LogRecord | None:
        """The most recent non-``apply`` record for txn (recovery anchor)."""
        records = self._by_txn.get(txn, ()) if self._group_commit else self._records
        for record in reversed(records):
            if record.txn == txn and record.kind != "apply":
                return record
        return None

    def open_txns(self) -> list[str]:
        """Transactions with a ``begin`` but no decision, in first-seen order."""
        if self._group_commit:
            decided = self._decisions
            return [t for t in self._begin_order if t not in decided]
        seen: list[str] = []
        decided_set: set[str] = set()
        for record in self._records:
            if record.kind == "begin" and record.txn not in seen:
                seen.append(record.txn)
            elif record.kind in _DECISION_KINDS:
                decided_set.add(record.txn)
        return [t for t in seen if t not in decided_set]
