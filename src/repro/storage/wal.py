"""Write-ahead log.

The log is the only thing a site keeps across a crash.  Records are
appended with :meth:`WriteAheadLog.force` — named after the classical
"force-write" that must hit stable storage before the protocol takes
its next step (Gray's notes [9], Lampson & Sturgis [11]).

Record kinds used by the commit protocols:

=============  =====================================================
kind           meaning
=============  =====================================================
``begin``      site became a participant of txn (payload: writeset)
``vote``       site voted yes/no (payload: vote)
``pc``         site entered the PC (prepare-to-commit) state
``pa``         site entered the PA (prepare-to-abort) state
``commit``     site committed the transaction (irrevocable)
``abort``      site aborted the transaction (irrevocable)
``apply``      a committed write was applied (payload: item, value,
               version) — replayed by recovery into the replica store
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.errors import StorageError

_VALID_KINDS = {"begin", "vote", "pc", "pa", "commit", "abort", "apply"}


@dataclass(frozen=True)
class LogRecord:
    """One durable log record."""

    lsn: int
    txn: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        body = f" {self.payload}" if self.payload else ""
        return f"[{self.lsn}] {self.txn} {self.kind}{body}"


class WriteAheadLog:
    """Append-only, crash-surviving log for one site."""

    def __init__(self, site: int) -> None:
        self.site = site
        self._records: list[LogRecord] = []
        self._next_lsn = 1

    def force(self, txn: str, kind: str, **payload: Any) -> LogRecord:
        """Append a record and (conceptually) force it to stable storage.

        Raises:
            StorageError: on an unknown record kind, or on an attempt to
                log a second, different decision for the same transaction
                — decisions are irrevocable (paper §1), and the log is
                where that irrevocability lives.
        """
        if kind not in _VALID_KINDS:
            raise StorageError(f"unknown log record kind {kind!r}")
        if kind in ("commit", "abort"):
            prior = self.decision(txn)
            if prior is not None and prior != kind:
                raise StorageError(
                    f"site {self.site}: txn {txn} already logged {prior}; "
                    f"cannot log {kind}"
                )
        record = LogRecord(self._next_lsn, txn, kind, dict(payload))
        self._next_lsn += 1
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def for_txn(self, txn: str) -> list[LogRecord]:
        """All records for one transaction, in LSN order."""
        return [r for r in self._records if r.txn == txn]

    def decision(self, txn: str) -> str | None:
        """The logged decision ("commit"/"abort") for txn, if any."""
        for record in reversed(self._records):
            if record.txn == txn and record.kind in ("commit", "abort"):
                return record.kind
        return None

    def last_protocol_record(self, txn: str) -> LogRecord | None:
        """The most recent non-``apply`` record for txn (recovery anchor)."""
        for record in reversed(self._records):
            if record.txn == txn and record.kind != "apply":
                return record
        return None

    def open_txns(self) -> list[str]:
        """Transactions with a ``begin`` but no decision, in first-seen order."""
        seen: list[str] = []
        decided: set[str] = set()
        for record in self._records:
            if record.kind == "begin" and record.txn not in seen:
                seen.append(record.txn)
            elif record.kind in ("commit", "abort"):
                decided.add(record.txn)
        return [t for t in seen if t not in decided]
