"""Versioned replica store.

Each site hosts *copies* of some data items.  Gifford's weighted-voting
scheme [8] identifies the most recent copy in a read quorum by version
number, so every copy carries one.  The store is deliberately simple —
a dict of item -> (value, version) — because all the interesting
machinery (votes, quorums, locks) lives above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.common.errors import StorageError


@dataclass(frozen=True)
class VersionedValue:
    """A copy's current value and version number."""

    value: Any
    version: int

    def __str__(self) -> str:
        return f"{self.value!r}@v{self.version}"


class ReplicaStore:
    """The copies hosted by one site."""

    def __init__(self, site: int) -> None:
        self.site = site
        self._copies: dict[str, VersionedValue] = {}

    def host(self, item: str, value: Any = None, version: int = 0) -> None:
        """Start hosting a copy of ``item`` with an initial value."""
        if item in self._copies:
            raise StorageError(f"site {self.site} already hosts a copy of {item!r}")
        self._copies[item] = VersionedValue(value, version)

    def hosts(self, item: str) -> bool:
        """True when this site holds a copy of ``item``."""
        return item in self._copies

    def read(self, item: str) -> VersionedValue:
        """Read the local copy (value + version)."""
        try:
            return self._copies[item]
        except KeyError:
            raise StorageError(f"site {self.site} hosts no copy of {item!r}") from None

    def write(self, item: str, value: Any, version: int) -> None:
        """Install a new value at an explicit version.

        Versions must strictly increase — a stale write reaching a copy
        indicates a broken quorum intersection somewhere above, so it is
        an error here, not a silent no-op.  This sits on the commit hot
        path (every ``apply`` lands here), so the current copy comes
        from a direct dict probe rather than the exception-wrapping
        :meth:`read`; the error messages are identical.
        """
        current = self._copies.get(item)
        if current is None:
            raise StorageError(f"site {self.site} hosts no copy of {item!r}")
        if version <= current.version:
            raise StorageError(
                f"site {self.site}: stale write of {item!r} "
                f"v{version} over v{current.version}"
            )
        self._copies[item] = VersionedValue(value, version)

    def items(self) -> Iterator[tuple[str, VersionedValue]]:
        """Iterate ``(item, versioned_value)`` pairs, sorted by item."""
        for item in sorted(self._copies):
            yield item, self._copies[item]

    def snapshot(self) -> dict[str, VersionedValue]:
        """A shallow copy of the current contents (for assertions)."""
        return dict(self._copies)

    def __len__(self) -> int:
        return len(self._copies)

    def __contains__(self, item: str) -> bool:
        return item in self._copies
