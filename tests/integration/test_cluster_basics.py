"""Integration tests: cluster construction and the failure-free path."""

import pytest

from repro import (
    CatalogBuilder,
    Cluster,
    ConfigurationError,
    PROTOCOL_NAMES,
    QuorumUnreachableError,
)


class TestConstruction:
    def test_unknown_protocol_rejected(self, simple_catalog):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            Cluster(simple_catalog, protocol="paxos")

    def test_sites_host_their_copies(self, paper_catalog):
        cluster = Cluster(paper_catalog)
        assert cluster.sites[1].store.hosts("x")
        assert not cluster.sites[1].store.hosts("y")
        assert cluster.sites[5].store.hosts("y")

    def test_extra_sites_host_nothing(self, simple_catalog):
        cluster = Cluster(simple_catalog, extra_sites=[9])
        assert len(cluster.sites[9].store) == 0

    def test_T_reflects_delay_model(self, simple_catalog):
        from repro import FixedDelay

        cluster = Cluster(simple_catalog, delay_model=FixedDelay(2.5))
        assert cluster.T == 2.5


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
class TestFailureFreeCommit:
    def test_commits_everywhere(self, paper_catalog, protocol):
        cluster = Cluster(paper_catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 11, "y": 22})
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "commit"
        assert report.atomic and report.fully_terminated
        assert set(report.committed_sites) == set(range(1, 9))

    def test_values_installed_with_version(self, paper_catalog, protocol):
        cluster = Cluster(paper_catalog, protocol=protocol)
        cluster.update(origin=1, writes={"x": 11})
        cluster.run()
        for site in (1, 2, 3, 4):
            assert cluster.sites[site].store.read("x").value == 11
            assert cluster.sites[site].store.read("x").version == 1

    def test_locks_released_after_commit(self, paper_catalog, protocol):
        cluster = Cluster(paper_catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 11})
        cluster.run()
        for site in (1, 2, 3, 4):
            assert cluster.sites[site].locks.held_by(txn.txn) == []

    def test_sequential_updates_bump_versions(self, paper_catalog, protocol):
        cluster = Cluster(paper_catalog, protocol=protocol)
        cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        cluster.update(origin=2, writes={"x": 2})
        cluster.run()
        assert cluster.read(3, "x").value == 2
        assert cluster.read(3, "x").version == 2

    def test_no_illegal_transitions(self, paper_catalog, protocol):
        cluster = Cluster(paper_catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 11, "y": 22})
        cluster.run()
        assert cluster.outcome(txn.txn).illegal_transitions == 0


class TestVoteNoPath:
    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_lock_conflict_aborts(self, paper_catalog, protocol):
        """A participant that cannot lock a copy votes no; everyone aborts."""
        cluster = Cluster(paper_catalog, protocol=protocol)
        # a foreign lock on site 2's copy of x forces a no vote there
        from repro.concurrency.locks import LockMode

        cluster.sites[2].locks.acquire("intruder", "x", LockMode.EXCLUSIVE)
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "abort"
        assert report.atomic
        # the no-voter released nothing it did not hold
        assert cluster.sites[2].locks.held_by("intruder") == ["x"]

    def test_aborted_txn_leaves_values_untouched(self, paper_catalog):
        from repro.concurrency.locks import LockMode

        cluster = Cluster(paper_catalog, protocol="qtp1")
        cluster.sites[2].locks.acquire("intruder", "x", LockMode.EXCLUSIVE)
        cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        assert cluster.sites[3].store.read("x").value == 0
        assert cluster.sites[3].store.read("x").version == 0


class TestRead:
    def test_read_returns_latest(self, paper_catalog):
        cluster = Cluster(paper_catalog)
        cluster.update(origin=1, writes={"y": 7})
        cluster.run()
        assert cluster.read(6, "y").value == 7

    def test_read_blocked_by_partition(self, paper_catalog):
        cluster = Cluster(paper_catalog)
        cluster.network.set_partition([[1], [2, 3, 4, 5, 6, 7, 8]])
        with pytest.raises(QuorumUnreachableError):
            cluster.read(1, "x")

    def test_read_sees_enough_votes_in_majority_side(self, paper_catalog):
        cluster = Cluster(paper_catalog)
        cluster.network.set_partition([[1], [2, 3, 4, 5, 6, 7, 8]])
        assert cluster.read(2, "x").version == 0

    def test_concurrent_nonconflicting_txns(self, paper_catalog):
        cluster = Cluster(paper_catalog, protocol="qtp2")
        t1 = cluster.update(origin=1, writes={"x": 1})
        t2 = cluster.update(origin=5, writes={"y": 2})
        cluster.run()
        assert cluster.outcome(t1.txn).outcome == "commit"
        assert cluster.outcome(t2.txn).outcome == "commit"
