"""Integration tests for the election machinery."""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan


@pytest.fixture
def catalog():
    return CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()


class TestElections:
    def test_highest_reachable_becomes_coordinator(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run()
        coordinators = {
            r.site for r in cluster.tracer.where(category="coordinator", txn=txn.txn)
        }
        assert coordinators == {4}

    def test_each_partition_elects_its_own(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.arm_failures(
            FailurePlan().crash(1.5, 1).partition(1.5, [2, 3], [4])
        )
        cluster.run()
        coordinators = {
            r.site for r in cluster.tracer.where(category="coordinator", txn=txn.txn)
        }
        assert 3 in coordinators  # highest in {2,3}
        assert 4 in coordinators  # alone in {4}

    def test_lower_sites_defer(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run()
        # sites 2 and 3 started elections but deferred to 4
        coordinators = {
            r.site for r in cluster.tracer.where(category="coordinator", txn=txn.txn)
        }
        assert 2 not in coordinators and 3 not in coordinators

    def test_death_of_winner_triggers_reelection(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        # site 4 wins the first election (~t=6) and dies mid-termination
        cluster.arm_failures(FailurePlan().crash(1.5, 1).crash(6.5, 4))
        cluster.run()
        coordinators = {
            r.site for r in cluster.tracer.where(category="coordinator", txn=txn.txn)
        }
        assert 3 in coordinators
        report = cluster.outcome(txn.txn)
        assert report.atomic
        # sites 2,3 hold r(x)=2 votes -> termination aborts
        assert set(report.aborted_sites) >= {2, 3}

    def test_election_rounds_are_bounded(self, catalog):
        """A deferring site whose higher peer can never conclude must
        give up after a bounded number of election rounds, not livelock.

        Setup: every termination state reply and blocked notice is
        lost, so the elected coordinator (site 4) silently blocks on an
        empty poll, while sites 2 and 3 keep deferring to it, retrying,
        and eventually exhausting their round budget.
        """
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.network.add_filter(
            lambda m: m.mtype.endswith(".t.state") or m.mtype.endswith(".t.blocked")
        )
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run()  # must terminate (give-up guard)
        gave_up = cluster.tracer.where(
            category="blocked",
            txn=txn.txn,
            pred=lambda r: r.detail.get("reason") == "election-rounds-exhausted",
        )
        assert gave_up  # at least one site hit the guard
        assert cluster.outcome(txn.txn).atomic

    def test_decided_site_shares_outcome_with_inquirer(self, catalog):
        """An election inquiry to a decided site is answered with the
        decision itself."""
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        # cut site 2 off after the votes (t=2) but before it can enter
        # PC; sites 1,3,4 hold w(x)=3 votes and commit early; after the
        # heal, site 2's election inquiry reaches decided sites, which
        # reply with the decision.
        cluster.arm_failures(
            FailurePlan().partition(2.5, [2], [1, 3, 4]).heal(30.0)
        )
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "commit"
        assert 2 in report.committed_sites
