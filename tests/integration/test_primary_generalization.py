"""Tests for the §5 generalization: termination over primary copies."""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.common.errors import ConfigurationError
from repro.experiments.sweeps import modelcheck
from repro.protocols.base import Decision
from repro.protocols.qtp.generalized import PrimaryTerminationRule
from repro.protocols.states import TxnState
from repro.replication.primary import PrimaryCopyStrategy
from repro.workload.scenarios import example1_catalog

W, PA, PC, A, C, Q = (
    TxnState.W,
    TxnState.PA,
    TxnState.PC,
    TxnState.A,
    TxnState.C,
    TxnState.Q,
)


class TestStrategy:
    @pytest.fixture
    def strategy(self):
        return PrimaryCopyStrategy(example1_catalog(), {"x": 2, "y": 6})

    def test_defaults_to_lowest_host(self):
        strategy = PrimaryCopyStrategy(example1_catalog())
        assert strategy.primary_of("x") == 1
        assert strategy.primary_of("y") == 5

    def test_primary_must_host_a_copy(self):
        with pytest.raises(ConfigurationError, match="hosts no copy"):
            PrimaryCopyStrategy(example1_catalog(), {"x": 7})

    def test_unknown_item(self, strategy):
        with pytest.raises(ConfigurationError, match="unknown item"):
            strategy.primary_of("ghost")

    def test_predicates(self, strategy):
        assert strategy.holds_primary("x", [2, 3])
        assert not strategy.holds_primary("x", [3, 4])
        assert strategy.holds_all_primaries(["x", "y"], [2, 6])
        assert not strategy.holds_all_primaries(["x", "y"], [2, 5])
        assert strategy.holds_some_primary(["x", "y"], [6])
        assert not strategy.holds_some_primary(["x", "y"], [3, 7])
        assert not strategy.holds_all_primaries([], [2, 6])  # vacuous no


class TestPrimaryRule:
    @pytest.fixture
    def rule(self):
        return PrimaryTerminationRule(
            PrimaryCopyStrategy(example1_catalog(), {"x": 2, "y": 6})
        )

    ITEMS = ["x", "y"]

    def test_commit_when_all_primaries_in_pc(self, rule):
        assert rule.evaluate(self.ITEMS, {2: PC, 6: PC}) is Decision.COMMIT

    def test_no_commit_on_partial_primaries(self, rule):
        assert rule.evaluate(self.ITEMS, {2: PC, 5: PC}) is not Decision.COMMIT

    def test_abort_when_some_primary_in_pa(self, rule):
        assert rule.evaluate(self.ITEMS, {2: PA, 3: W}) is Decision.ABORT

    def test_try_abort_with_reachable_primary(self, rule):
        assert rule.evaluate(self.ITEMS, {2: W, 3: W}) is Decision.TRY_ABORT

    def test_block_without_any_primary(self, rule):
        assert rule.evaluate(self.ITEMS, {3: W, 4: W, 5: PC}) is Decision.BLOCK

    def test_try_commit_needs_pc_and_all_primaries(self, rule):
        assert rule.evaluate(self.ITEMS, {2: W, 5: PC, 6: W}) is Decision.TRY_COMMIT

    def test_rounds(self, rule):
        assert rule.commit_round_ok(self.ITEMS, {2, 6})
        assert not rule.commit_round_ok(self.ITEMS, {2})
        assert rule.abort_round_ok(self.ITEMS, {6})
        assert not rule.abort_round_ok(self.ITEMS, {3, 7})

    def test_q_and_c_dominance(self, rule):
        assert rule.evaluate(self.ITEMS, {2: Q, 6: PC}) is Decision.ABORT
        assert rule.evaluate(self.ITEMS, {3: C}) is Decision.COMMIT


class TestPrimaryEngineEndToEnd:
    def test_fig3_partitions_with_primaries_terminate(self):
        cluster = Cluster(
            example1_catalog(), protocol="qtpp", primaries={"x": 2, "y": 6}
        )
        cluster.network.add_filter(
            lambda m: m.mtype.endswith(".prepare") and m.dst != 5
        )
        txn = cluster.update(origin=1, writes={"x": 1, "y": 2})
        cluster.arm_failures(
            FailurePlan().crash(3.5, 1).partition(3.5, [1, 2, 3], [4, 5], [6, 7, 8])
        )
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        states = cluster.states(txn.txn)
        assert states[2] == "A" and states[3] == "A"  # G1 holds x's primary
        assert states[6] == "A"  # G3 holds y's primary
        assert states[4] == "W" and states[5] == "PC"  # G2 blocked

    def test_early_commit_on_primary_acks(self):
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4, 5], r=2, w=4).build()
        cluster = Cluster(catalog, protocol="qtpp", primaries={"x": 2})
        # only the primary's ack arrives
        cluster.network.add_filter(
            lambda m: m.mtype == "qtpp.ack" and m.src != 2
        )
        txn = cluster.update(origin=1, writes={"x": 9})
        cluster.run()
        assert cluster.outcome(txn.txn).outcome == "commit"
        early = cluster.tracer.where(category="coord-early-commit", txn=txn.txn)
        assert early and early[0].detail["ackers"] == [2]

    def test_modelcheck_qtpp_atomic(self):
        result = modelcheck("qtpp", runs=40, base_seed=300)
        assert result.theorem_holds, result.seeds_with_violation