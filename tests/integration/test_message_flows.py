"""Golden message-flow tests: exact failure-free histograms per family.

With FixedDelay the failure-free run of each protocol is fully
deterministic; these tests pin the message histogram and the decision
timing so any accidental change to a protocol's wire behaviour shows
up immediately.
"""

import pytest

from repro import CatalogBuilder, Cluster

N = 4


def run(protocol, **kwargs):
    catalog = CatalogBuilder().replicated_item("x", sites=list(range(1, N + 1)), r=2, w=3).build()
    cluster = Cluster(catalog, protocol=protocol, **kwargs)
    txn = cluster.update(origin=1, writes={"x": 1})
    cluster.run()
    decisions = cluster.tracer.where(category="coord-decision", txn=txn.txn)
    return cluster.message_counts(), decisions[0].time


class TestGoldenFlows:
    def test_2pc(self):
        counts, decided = run("2pc")
        assert counts == {
            "2pc.vote-req": N,
            "2pc.vote": N,
            "2pc.commit": N,
        }
        assert decided == 2.0  # one round trip of T=1

    def test_3pc(self):
        counts, decided = run("3pc")
        assert counts == {
            "3pc.vote-req": N,
            "3pc.vote": N,
            "3pc.prepare": N,
            "3pc.ack": N,
            "3pc.commit": N,
        }
        assert decided == 4.0  # two round trips

    def test_skq(self):
        counts, decided = run("skq")
        assert counts == {
            "skq.vote-req": N,
            "skq.vote": N,
            "skq.prepare": N,
            "skq.ack": N,
            "skq.commit": N,
        }
        assert decided == 4.0

    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2"])
    def test_qtp_same_wire_shape_as_3pc(self, protocol):
        counts, decided = run(protocol)
        assert counts == {
            f"{protocol}.vote-req": N,
            f"{protocol}.vote": N,
            f"{protocol}.prepare": N,
            f"{protocol}.ack": N,
            f"{protocol}.commit": N,
        }
        # with uniform delays all acks land together; the early-commit
        # condition is met at the same instant 3PC's all-acks is
        assert decided == 4.0

    def test_qtpp(self):
        counts, decided = run("qtpp")
        assert counts == {
            "qtpp.vote-req": N,
            "qtpp.vote": N,
            "qtpp.prepare": N,
            "qtpp.ack": N,
            "qtpp.commit": N,
        }
        # the primary (site 1 = the coordinator's own site) acks at the
        # instant the prepare is self-delivered: one round earlier
        assert decided == 2.0

    def test_failure_free_runs_are_identical_across_seeds(self):
        """FixedDelay runs are seed-independent (no randomness drawn)."""
        a, __ = run("qtp1", seed=0)
        b, __ = run("qtp1", seed=999)
        assert a == b


class TestVoteNoFlow:
    def test_abort_flow_2pc(self):
        from repro.concurrency.locks import LockMode

        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()
        cluster = Cluster(catalog, protocol="2pc")
        cluster.sites[2].locks.acquire("intruder", "x", LockMode.EXCLUSIVE)
        cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        counts = cluster.message_counts()
        assert counts["2pc.abort"] == 3
        assert "2pc.commit" not in counts