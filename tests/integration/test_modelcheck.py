"""Randomized model-checking of atomic commitment (Theorem 1).

Hundreds of random fault schedules per protocol; the safe protocols
must never mix COMMIT and ABORT.  3PC is *expected* to violate — its
termination protocol predates partition tolerance — which doubles as
a sanity check that the harness can actually detect violations.
"""

import pytest

from repro.experiments.sweeps import modelcheck, reenterability_storm


class TestTheorem1:
    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2"])
    def test_quorum_protocols_always_atomic(self, protocol):
        result = modelcheck(protocol, runs=60, base_seed=100)
        assert result.theorem_holds, f"violations at seeds {result.seeds_with_violation}"

    def test_skeen_always_atomic(self):
        result = modelcheck("skq", runs=40, base_seed=100)
        assert result.theorem_holds

    def test_twopc_always_atomic(self):
        """2PC blocks rather than violates."""
        result = modelcheck("2pc", runs=40, base_seed=100)
        assert result.theorem_holds

    def test_threepc_violates_under_partitions(self):
        """The detector works: 3PC termination really is inconsistent."""
        result = modelcheck("3pc", runs=40, base_seed=100)
        assert not result.theorem_holds
        assert result.mixed_runs > 0

    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2"])
    def test_atomic_without_heal_too(self, protocol):
        """Safety must not depend on the network ever healing."""
        result = modelcheck(protocol, runs=40, base_seed=500, heal=False)
        assert result.theorem_holds


class TestReenterability:
    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2"])
    def test_storms_reenter_and_stay_consistent(self, protocol):
        result = reenterability_storm(protocol, runs=10, base_seed=7, waves=3)
        assert result.all_consistent

    def test_storms_actually_reenter(self):
        """The storm must exercise repeated termination attempts."""
        result = reenterability_storm("qtp1", runs=10, base_seed=7, waves=3)
        assert result.total_term_attempts > result.runs

    def test_storm_terminates_after_final_heal(self):
        result = reenterability_storm("qtp1", runs=10, base_seed=7, waves=2)
        assert result.terminated_runs == result.runs
