"""Lemmas 1 and 2, checked in vivo over a randomized corpus.

Lemma 1: if the first participant that terminates TR commits it, every
other participant commits or blocks.  Lemma 2: symmetric for abort.
Together they give Theorem 1; here each lemma is checked *separately*
against the ordered decision stream of every run in a corpus, rather
than only via the aggregate mixed-outcome test.
"""

import pytest

from repro.analysis.consistency import first_decision_consistency
from repro.db.cluster import Cluster
from repro.sim.rng import RngRegistry
from repro.workload.generators import random_catalog, random_fault_plan, random_update


def corpus(protocol: str, runs: int = 40, base_seed: int = 9000):
    for i in range(runs):
        seed = base_seed + i
        rng = RngRegistry(seed).stream("lemmas")
        catalog = random_catalog(rng, n_sites=7, n_items=3, replication=3)
        origin, writes = random_update(rng, catalog, max_items=2)
        cluster = Cluster(catalog, protocol=protocol, seed=seed)
        txn = cluster.update(origin, writes)
        plan = random_fault_plan(
            rng,
            cluster.network.sites,
            origin,
            crash_coordinator=rng.random() < 0.8,
            n_groups=rng.choice([2, 3]),
            heal_at=rng.uniform(30.0, 60.0) if rng.random() < 0.5 else None,
        )
        cluster.arm_failures(plan)
        cluster.run()
        yield cluster, txn


@pytest.mark.parametrize("protocol", ["qtp1", "qtp2", "qtpp"])
class TestLemmas:
    def test_every_decision_matches_the_first(self, protocol):
        """The per-run form of Lemmas 1 + 2."""
        for cluster, txn in corpus(protocol):
            assert first_decision_consistency(cluster.tracer, txn.txn)

    def test_lemma1_first_commit_no_later_abort(self, protocol):
        """Runs whose first terminator commits contain zero aborts."""
        commit_first = 0
        for cluster, txn in corpus(protocol):
            decisions = cluster.tracer.where(category="decision", txn=txn.txn)
            if decisions and decisions[0].detail["outcome"] == "commit":
                commit_first += 1
                outcomes = {d.detail["outcome"] for d in decisions}
                assert outcomes == {"commit"}
        assert commit_first > 0  # the corpus exercised the lemma

    def test_lemma2_first_abort_no_later_commit(self, protocol):
        abort_first = 0
        for cluster, txn in corpus(protocol):
            decisions = cluster.tracer.where(category="decision", txn=txn.txn)
            if decisions and decisions[0].detail["outcome"] == "abort":
                abort_first += 1
                outcomes = {d.detail["outcome"] for d in decisions}
                assert outcomes == {"abort"}
        assert abort_first > 0
