"""Tests of the vote-assignment study harness."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.vote_study import _policy_catalog, vote_assignment_study


class TestPolicyCatalogs:
    def test_uniform_majority(self):
        catalog = _policy_catalog("uniform-majority", [1, 2, 3, 4, 5])
        assert catalog.w("x") == 3
        assert catalog.v("x") == 5

    def test_read_one(self):
        catalog = _policy_catalog("read-one", [1, 2, 3, 4])
        assert catalog.r("x") == 1
        assert catalog.w("x") == 4

    def test_primary_weighted(self):
        catalog = _policy_catalog("primary-weighted", [1, 2, 3, 4])
        assert catalog.votes("x", [1]) == 3
        assert catalog.v("x") == 6
        # Gifford constraints still hold (validated at build)
        assert catalog.r("x") + catalog.w("x") > catalog.v("x")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            _policy_catalog("anarchy", [1, 2])


class TestStudy:
    def test_rows_and_determinism(self):
        a = vote_assignment_study(runs=6)
        b = vote_assignment_study(runs=6)
        assert [r.policy for r in a] == list(
            ("uniform-majority", "read-one", "primary-weighted")
        )
        for ra, rb in zip(a, b):
            assert ra == rb

    def test_no_violations_anywhere(self):
        for row in vote_assignment_study(runs=6):
            assert row.violations == 0
