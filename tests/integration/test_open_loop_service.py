"""Integration tests for the E26 open-loop service and its SLO ramp."""

import pytest

from repro.experiments.service_study import discover_ceiling, run_open_loop_service

PROTOCOLS = ("2pc", "qtp1", "qtp2")


class TestOpenLoopService:
    def test_accounting_holds_through_a_partition_episode(self):
        result = run_open_loop_service("qtp1", seed=0, rate=1.5, duration=60.0)
        assert result.offered == (
            result.admitted + result.shed_backpressure + result.shed_unreachable
        )
        assert result.admitted == (
            result.committed
            + result.reads_committed
            + result.client_aborted
            + result.protocol_aborted
            + result.unresolved
        )

    def test_ramp_sanity_at_short_duration(self):
        result = discover_ceiling("qtp1", seed=0, rates=(0.5, 1.5), duration=20.0)
        assert 1 <= len(result.steps) <= 2
        if result.tripped is None:
            assert result.ceiling == 1.5
        else:
            assert result.tripped in ("latency_knee", "abort_rate")
            # the ceiling is the last untripped rate, or None if even
            # the first step tripped
            assert result.ceiling in (None, 0.5)


@pytest.mark.slow
class TestDeepRampDiscovery:
    """Weekly deep run: open-loop SLO ramps across seeds × protocols at
    full service duration — every discovered ceiling must be a pure
    function of the seed, and the ramp trajectory must stay coherent
    (monotone rate schedule, trip only at the final step)."""

    RATES = (0.5, 1.0, 2.0, 4.0, 8.0)

    def test_ceilings_deterministic_across_seeds_and_protocols(self):
        for seed in range(4):
            for protocol in PROTOCOLS:
                first = discover_ceiling(protocol, seed=seed, rates=self.RATES)
                again = discover_ceiling(protocol, seed=seed, rates=self.RATES)
                assert first.counters() == again.counters(), (protocol, seed)

                # structural coherence of the trajectory itself
                assert 1 <= len(first.steps) <= len(self.RATES), (protocol, seed)
                if first.tripped is None:
                    assert first.ceiling == self.RATES[-1], (protocol, seed)
                    assert len(first.steps) == len(self.RATES)
                else:
                    assert first.tripped in ("latency_knee", "abort_rate")
                    tripped_at = len(first.steps) - 1
                    expected = self.RATES[tripped_at - 1] if tripped_at else None
                    assert first.ceiling == expected, (protocol, seed)
                for step, rate in zip(first.steps, self.RATES):
                    assert step.rate == rate, (protocol, seed)

    def test_offered_stream_is_protocol_independent_per_step(self):
        """Paired comparison: at one seed every protocol's ramp must see
        the identical offered arrival stream step for step — admission
        outcomes may differ, the load may not."""
        for seed in range(2):
            ramps = [discover_ceiling(p, seed=seed, rates=self.RATES) for p in PROTOCOLS]
            common = min(len(r.steps) for r in ramps)
            for i in range(common):
                offered = {r.steps[i].offered for r in ramps}
                assert len(offered) == 1, (seed, i)
