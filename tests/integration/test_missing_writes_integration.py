"""Integration tests for the missing-writes read fast path (E15)."""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan, QuorumUnreachableError


@pytest.fixture
def cluster():
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    return Cluster(catalog, protocol="qtp1")


class TestFastPath:
    def test_failure_free_reads_consult_one_copy(self, cluster):
        cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        cluster.sync_missing_writes()
        value, consulted = cluster.fast_read(2, "x")
        assert value == 5
        assert consulted == 1

    def test_quorum_read_would_consult_r_copies(self, cluster):
        cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        assert len(cluster.read(2, "x").quorum) == 2  # r(x)

    @staticmethod
    def _commit_without_site4(cluster):
        """Partition site 4 away, commit x=5 on the write quorum
        {1,2,3}, then heal — leaving site 4's copy stale at v0."""
        cluster.network.set_partition([[1, 2, 3], [4]])
        cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        cluster.network.heal()
        cluster.run()
        assert cluster.sites[4].store.read("x").version == 0

    def test_stale_copy_disables_fast_path(self, cluster):
        self._commit_without_site4(cluster)
        cluster.sync_missing_writes()
        assert not cluster.missing_writes.read_one_allowed("x")
        value, consulted = cluster.fast_read(2, "x")
        assert value == 5
        assert consulted == 2  # fell back to the quorum

    def test_repair_reenables_fast_path(self, cluster):
        self._commit_without_site4(cluster)
        cluster.sync_missing_writes()
        refreshed = cluster.repair("x")
        assert refreshed == 1
        assert cluster.sites[4].store.read("x").value == 5
        __, consulted = cluster.fast_read(2, "x")
        assert consulted == 1

    def test_fast_read_never_returns_stale(self, cluster):
        """The fast path only engages when every copy is current, so a
        single-copy read can never observe an old version."""
        self._commit_without_site4(cluster)
        cluster.sync_missing_writes()
        # even reading "at" the stale site falls back to a quorum
        value, consulted = cluster.fast_read(4, "x")
        assert value == 5
        assert consulted >= 2

    def test_fast_read_blocked_everywhere_raises(self, cluster):
        cluster.sync_missing_writes()
        cluster.network.set_partition([[1], [2, 3, 4]])
        # site 1 alone still serves the fast path (its copy is current)
        value, consulted = cluster.fast_read(1, "x")
        assert consulted == 1
        # but a site with no reachable current copy cannot
        empty = (
            CatalogBuilder().replicated_item("y", sites=[2, 3], r=2, w=2).build()
        )
        isolated = Cluster(empty, protocol="qtp1", extra_sites=[9])
        isolated.network.set_partition([[9], [2, 3]])
        isolated.sync_missing_writes()
        with pytest.raises(QuorumUnreachableError):
            isolated.fast_read(9, "y")

    def test_repair_with_all_hosts_down(self, cluster):
        for site in (1, 2, 3, 4):
            cluster.network.crash_site(site)
        assert cluster.repair("x") == 0
