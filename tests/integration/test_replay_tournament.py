"""Tests of the trace-record → replay engine (`repro.replay`).

The load-bearing contract is the record→replay *fixed point*: replaying
config C's recording under config C must reproduce the recorded
deterministic counters exactly.  Everything else — artifact round-trips,
what-if overrides, the tournament sweep — is layered on that guarantee.
"""

import gzip
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StoreError
from repro.replay import (
    DEFAULT_CONFIGS,
    RecordedTrace,
    TournamentConfig,
    derive_catalog,
    fixed_point_ok,
    record_heavy_workload,
    record_wan_storm,
    replay_trace,
    run_tournament,
)

#: one small E18 recording shared across the read-only tests.
_TRACE_CACHE: dict[str, RecordedTrace] = {}


def small_trace() -> RecordedTrace:
    if "heavy" not in _TRACE_CACHE:
        _TRACE_CACHE["heavy"] = record_heavy_workload(
            "qtp1", seed=3, n_txns=20, n_sites=6, n_items=5
        )
    return _TRACE_CACHE["heavy"]


class TestFixedPoint:
    def test_heavy_workload_replay_reproduces_counters(self):
        trace = small_trace()
        row = replay_trace(trace)
        assert fixed_point_ok(trace, row), (trace.counters, row)

    def test_wan_storm_replay_reproduces_counters(self):
        trace = record_wan_storm("qtp1", seed=1, n_regions=3, sites_per_region=4)
        row = replay_trace(trace)
        assert fixed_point_ok(trace, row), (trace.counters, row)

    def test_replay_matches_recorded_tallies(self):
        trace = small_trace()
        row = replay_trace(trace)
        assert row["submitted"] == len(trace.ops)
        assert row["committed"] == trace.result["committed"]
        assert row["protocol"] == trace.protocol

    @given(st.integers(0, 2**16), st.sampled_from(["2pc", "3pc", "qtp1", "qtp2"]))
    @settings(max_examples=6, deadline=None)
    def test_fixed_point_across_seeds_and_protocols(self, seed, protocol):
        trace = record_heavy_workload(protocol, seed=seed, n_txns=10, n_sites=5, n_items=4)
        assert fixed_point_ok(trace, replay_trace(trace))


class TestArtifact:
    def test_roundtrip_preserves_fixed_point(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl.gz"
        trace.save(path)
        loaded = RecordedTrace.load(path)
        assert fixed_point_ok(loaded, replay_trace(loaded))

    def test_encoding_is_byte_stable(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl.gz"
        trace.save(path)
        loaded = RecordedTrace.load(path)
        assert trace.encode() == loaded.encode()
        # saving the reloaded trace reproduces the artifact byte-for-byte
        again = tmp_path / "again.jsonl.gz"
        loaded.save(again)
        assert path.read_bytes() == again.read_bytes()

    def test_truncated_artifact_rejected(self):
        lines = small_trace().to_lines()
        with pytest.raises(StoreError):
            RecordedTrace.from_lines(lines[:-2] + [lines[-1]])
        with pytest.raises(StoreError):
            RecordedTrace.from_lines(lines[:-1])

    def test_corrupt_gzip_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl.gz"
        path.write_bytes(b"not a gzip stream at all")
        with pytest.raises(StoreError):
            RecordedTrace.load(path)

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("{this is not json\n")
        with pytest.raises(StoreError):
            RecordedTrace.load(path)

    def test_schema_mismatch_rejected(self):
        lines = small_trace().to_lines()
        header = dict(lines[0], schema=99)
        with pytest.raises(StoreError):
            RecordedTrace.from_lines([header] + lines[1:])

    def test_wrong_kind_rejected(self):
        lines = small_trace().to_lines()
        header = dict(lines[0], kind="something-else")
        with pytest.raises(StoreError):
            RecordedTrace.from_lines([header] + lines[1:])


class TestWhatIfConfigs:
    def test_protocol_override_changes_engine_not_stream(self):
        trace = small_trace()
        row = replay_trace(trace, TournamentConfig("as-2pc", protocol="2pc"))
        assert row["protocol"] == "2pc"
        assert row["submitted"] == len(trace.ops)
        assert row["skipped_ops"] == 0

    def test_smaller_cluster_skips_unhosted_ops(self):
        trace = small_trace()
        row = replay_trace(trace, TournamentConfig("shrunk", drop_sites=2))
        # the projection is the oracle for what must be skipped
        catalog = derive_catalog(trace.catalog, drop_sites=2)
        expected = trace.workload().project(catalog)
        assert row["skipped_ops"] == expected.skipped_ops
        assert row["submitted"] == len(trace.ops) - expected.skipped_ops
        assert row["serializable"]

    def test_replay_survives_termination_race(self):
        # regression: replaying this exact stream under 3PC used to
        # crash with "already logged abort; cannot log commit" — the
        # coordinator's original round, fed late PC-acks across a
        # partition, raced its own termination attempt's abort.  The
        # stale round must stand down, not contradict the log.
        trace = record_heavy_workload("qtp1", seed=0, n_txns=24)
        row = replay_trace(trace, TournamentConfig("as-3pc", protocol="3pc"))
        total = (
            row["committed"] + row["client_aborted"]
            + row["protocol_aborted"] + row["blocked"]
        )
        assert total == row["submitted"]
        assert row["serializable"]

    def test_coordinator_crash_hurts_commits(self):
        trace = small_trace()
        baseline = replay_trace(trace)
        crashed = replay_trace(trace, TournamentConfig("crash", crash_origin_at=0.5))
        assert crashed["committed"] < baseline["committed"]

    def test_invalid_config_rejected(self):
        with pytest.raises(StoreError):
            TournamentConfig("bad", quorum="no-such-policy")
        with pytest.raises(StoreError):
            TournamentConfig("bad", drop_sites=-1)


class TestTournament:
    def test_diff_covers_all_default_configs(self):
        rows = run_tournament(small_trace())
        assert [r["config"] for r in rows] == [c.name for c in DEFAULT_CONFIGS]
        assert len(rows) >= 3
        assert fixed_point_ok(small_trace(), rows[0])

    @given(st.integers(0, 2**10))
    @settings(max_examples=3, deadline=None)
    def test_serial_and_parallel_tournaments_byte_identical(self, seed):
        trace = record_heavy_workload("qtp1", seed=seed, n_txns=10, n_sites=5, n_items=4)
        serial = run_tournament(trace, workers=1)
        parallel = run_tournament(trace, workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)


@pytest.mark.slow
class TestDeepTournament:
    """Full-scale E18 harvest replayed across the whole default matrix."""

    def test_full_scale_matrix(self):
        trace = record_heavy_workload("qtp1", seed=0)
        rows = run_tournament(trace)
        assert fixed_point_ok(trace, rows[0])
        by_name = {r["config"]: r for r in rows}
        assert set(by_name) == {c.name for c in DEFAULT_CONFIGS}
        for row in rows:
            assert row["committed"] + row["client_aborted"] + row[
                "protocol_aborted"
            ] + row["blocked"] == row["submitted"]
