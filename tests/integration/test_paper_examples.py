"""Integration tests: the paper's Examples 1-4, asserted end to end.

Each test replays the exact scenario from the paper's text (via the
shared scenario runners) and asserts the claims the paper makes about
it.  These are the reproduction's anchor tests.
"""

import pytest

from repro.experiments.examples import (
    run_example1,
    run_example2,
    run_example3,
    run_example4,
)
from repro.workload.scenarios import run_example1_scenario


class TestExample1:
    """Skeen's protocol [16] blocks TR in all three partitions."""

    @pytest.fixture(scope="class")
    def verdict(self):
        return run_example1()

    def test_matches_paper(self, verdict):
        assert verdict.matches_paper

    def test_transaction_blocked(self, verdict):
        assert verdict.outcome == "blocked"

    def test_all_partitions_blocked(self, verdict):
        assert verdict.blocked_in_all_partitions

    def test_x_inaccessible_even_with_read_votes_in_g1(self, verdict):
        """G1 holds r(x)=2 unlocked-able votes, yet x stays locked."""
        assert not verdict.x_readable_in_g1

    def test_y_inaccessible_even_with_write_votes_in_g3(self, verdict):
        assert not verdict.y_writable_in_g3


class TestExample2:
    """3PC's termination protocol terminates TR inconsistently."""

    @pytest.fixture(scope="class")
    def verdict(self):
        return run_example2()

    def test_matches_paper(self, verdict):
        assert verdict.matches_paper

    def test_g2_commits(self, verdict):
        assert verdict.committed_sites == [4, 5]

    def test_g1_and_g3_abort(self, verdict):
        assert verdict.aborted_sites == [2, 3, 6, 7, 8]

    def test_atomicity_violated(self, verdict):
        assert verdict.outcome == "mixed"


class TestExample3:
    """Two coordinators: the PC/PA ignore rules are load-bearing."""

    def test_broken_variant_is_inconsistent(self):
        verdict = run_example3(enforce_ignore_rules=False)
        assert verdict.matches_paper
        assert verdict.outcome == "mixed"

    def test_enforced_variant_is_consistent(self):
        verdict = run_example3(enforce_ignore_rules=True)
        assert verdict.matches_paper
        assert verdict.atomic

    def test_enforced_variant_actually_ignored_something(self):
        """The consistency is *because* a prepare was ignored, not
        because the race never happened."""
        verdict = run_example3(enforce_ignore_rules=True)
        assert verdict.ignored_messages >= 1


class TestExample4:
    """Termination protocol 1 restores availability in G1 and G3."""

    @pytest.fixture(scope="class")
    def verdict(self):
        return run_example4()

    def test_matches_paper(self, verdict):
        assert verdict.matches_paper

    def test_g1_and_g3_aborted(self, verdict):
        assert verdict.g1_aborted and verdict.g3_aborted

    def test_g2_remains_blocked(self, verdict):
        """G2 = {4, 5} has site 5 in PC and no quorum either way."""
        assert verdict.g2_blocked

    def test_x_now_readable_in_g1(self, verdict):
        assert verdict.x_readable_in_g1

    def test_x_still_not_writable_in_g1(self, verdict):
        """Site 1 (one x vote) is down: only 3 of 4 votes exist, but 2
        are in G1 — enough for r(x)=2, short of w(x)=3."""
        assert not verdict.x_writable_in_g1

    def test_y_updatable_in_g3(self, verdict):
        assert verdict.y_writable_in_g3

    def test_scenario_is_atomic(self, verdict):
        assert verdict.outcome in ("abort", "blocked")


class TestScenarioDeterminism:
    def test_same_seed_same_trace_length(self):
        a = run_example1_scenario("qtp1", seed=3)
        b = run_example1_scenario("qtp1", seed=3)
        assert len(a.cluster.tracer) == len(b.cluster.tracer)
        assert a.states() == b.states()

    def test_examples_stable_across_seeds(self):
        """The paper scenarios are failure-deterministic: the seed only
        affects random delays, which FixedDelay does not use."""
        for seed in (0, 1, 99):
            assert run_example4(seed=seed).matches_paper
