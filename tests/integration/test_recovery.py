"""Integration tests for crash recovery of sites."""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.protocols.states import TxnState


@pytest.fixture
def catalog():
    return CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()


class TestParticipantRecovery:
    def test_recovered_participant_learns_commit(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(2.5, 3).recover(40.0, 3))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert 3 in report.committed_sites
        assert cluster.sites[3].store.read("x").value == 5

    def test_recovered_state_comes_from_wal(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        # crash site 3 after it voted yes (t=1) but before prepare (t=3)
        cluster.arm_failures(FailurePlan().crash(2.0, 3))
        cluster.run_until(10.0)
        cluster.network.recover_site(3)
        record = cluster.sites[3].engine.record(txn.txn)
        assert record is not None
        assert record.state is TxnState.W

    def test_recovered_participant_relocks_writeset(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(2.0, 3))
        cluster.run_until(10.0)
        assert cluster.sites[3].locks.held_by(txn.txn) == []  # lost in crash
        cluster.network.recover_site(3)
        assert cluster.sites[3].locks.held_by(txn.txn) == ["x"]

    def test_committed_data_survives_crash(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        cluster.network.crash_site(2)
        cluster.network.recover_site(2)
        assert cluster.sites[2].store.read("x").value == 5
        assert cluster.sites[2].store.read("x").version == 1

    def test_double_crash_recover_cycles(self, catalog):
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        plan = (
            FailurePlan()
            .crash(2.0, 3)
            .recover(20.0, 3)
            .crash(21.0, 3)
            .recover(40.0, 3)
        )
        cluster.arm_failures(plan)
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert 3 in (report.committed_sites + report.aborted_sites)


class TestWholeClusterCrash:
    def test_everyone_crashes_and_recovers(self, catalog):
        """Total failure after the prepare round; on recovery the
        termination protocol commits (all were in PC)."""
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        plan = FailurePlan()
        for site in (1, 2, 3):
            plan.crash(3.6, site)
            plan.recover(30.0 + site, site)
        cluster.arm_failures(plan)
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert report.outcome == "commit"
        assert set(report.committed_sites) == {1, 2, 3}
