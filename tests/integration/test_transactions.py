"""Integration tests for the interactive transaction API."""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan, QuorumUnreachableError, TransactionAborted
from repro.common.errors import ConfigurationError, ProtocolError
from repro.concurrency.serializability import ConflictGraph
from repro.db.transactions import TxnPhase


@pytest.fixture
def catalog():
    return (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3], r=2, w=2)
        .replicated_item("y", sites=[1, 2, 3], r=2, w=2)
        .build()
    )


@pytest.fixture
def cluster(catalog):
    return Cluster(catalog, protocol="qtp1")


class TestReadPath:
    def test_read_returns_current_value(self, cluster):
        txn = cluster.transaction(origin=1)
        assert txn.read("x") == 0

    def test_read_takes_shared_locks_on_quorum(self, cluster):
        txn = cluster.transaction(origin=1)
        txn.read("x")
        locked = [
            s for s in (1, 2, 3) if txn.txn in cluster.sites[s].locks.holder_modes("x")
        ]
        assert len(locked) == 2  # r(x) = 2 copies

    def test_two_readers_coexist(self, cluster):
        a = cluster.transaction(origin=1)
        b = cluster.transaction(origin=2)
        assert a.read("x") == 0
        assert b.read("x") == 0

    def test_reread_served_locally(self, cluster):
        txn = cluster.transaction(origin=1)
        txn.read("x")
        before = cluster.network.sent
        txn.read("x")
        assert cluster.network.sent == before

    def test_read_your_own_write(self, cluster):
        txn = cluster.transaction(origin=1)
        txn.write("x", 77)
        assert txn.read("x") == 77

    def test_read_conflicting_with_writer_aborts(self, cluster):
        writer = cluster.transaction(origin=1)
        writer.read("x")
        writer.write("x", 1)
        writer.submit()  # X locks taken at vote time (t=0 self-send is pending)
        cluster.run()
        # now start a reader while a *new* writer holds X locks
        w2 = cluster.transaction(origin=1)
        w2.write("x", 2)
        w2.submit()  # locks not yet taken (vote-req in flight)...
        cluster.run_until(cluster.scheduler.now + 1.5)  # ...now they are
        reader = cluster.transaction(origin=2)
        with pytest.raises(TransactionAborted, match="read lock conflict"):
            reader.read("x")
        assert reader.phase is TxnPhase.ABORTED

    def test_aborted_reader_leaves_no_locks(self, cluster):
        # same setup as above, then check lock tables are clean
        w = cluster.transaction(origin=1)
        w.write("x", 2)
        w.submit()
        cluster.run_until(1.5)
        reader = cluster.transaction(origin=2)
        reader_txn = reader.txn
        with pytest.raises(TransactionAborted):
            reader.read("x")
        for site in cluster.sites.values():
            assert site.locks.held_by(reader_txn) == []

    def test_read_without_quorum_raises_but_txn_survives(self, cluster):
        cluster.network.set_partition([[1], [2, 3]])
        txn = cluster.transaction(origin=1)
        with pytest.raises(QuorumUnreachableError):
            txn.read("x")
        assert txn.phase is TxnPhase.ACTIVE  # caller may still abort cleanly
        txn.abort()


class TestWriteAndSubmit:
    def test_update_commits_and_installs(self, cluster):
        txn = cluster.transaction(origin=1)
        value = txn.read("x")
        txn.write("x", value + 5)
        handle = txn.submit()
        cluster.run()
        assert cluster.outcome(handle.txn).outcome == "commit"
        assert cluster.read(2, "x").value == 5

    def test_unknown_item_rejected(self, cluster):
        txn = cluster.transaction(origin=1)
        with pytest.raises(ConfigurationError, match="unknown item"):
            txn.write("ghost", 1)

    def test_participants_include_read_only_sites(self, catalog):
        """A site read-locked but hosting no written item joins the
        protocol so its S locks are released by the decision."""
        wide = (
            CatalogBuilder()
            .replicated_item("x", sites=[1, 2, 3], r=2, w=2)
            .replicated_item("z", sites=[4, 5, 6], r=2, w=2)
            .build()
        )
        cluster = Cluster(wide, protocol="qtp1")
        txn = cluster.transaction(origin=4)
        txn.read("z")  # locks two of 4,5,6
        txn.write("x", 1)  # hosts: 1,2,3
        handle = txn.submit()
        assert set(handle.participants) > {1, 2, 3}
        cluster.run()
        assert cluster.outcome(handle.txn).outcome == "commit"
        for site in (4, 5, 6):
            assert cluster.sites[site].locks.held_by(handle.txn) == []

    def test_version_derived_from_read(self, cluster):
        cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        txn = cluster.transaction(origin=1)
        txn.read("x")
        txn.write("x", 2)
        handle = txn.submit()
        assert handle.writes["x"][1] == 2  # version 1 read -> writes v2

    def test_blind_write_versions_from_quorum(self, cluster):
        cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        txn = cluster.transaction(origin=1)
        txn.write("x", 9)  # no read first
        handle = txn.submit()
        assert handle.writes["x"][1] == 2

    def test_readonly_submit_commits_instantly(self, cluster):
        txn = cluster.transaction(origin=1)
        txn.read("x")
        handle = txn.submit()
        assert txn.phase is TxnPhase.COMMITTED
        assert handle.participants == ()
        for site in cluster.sites.values():
            assert site.locks.held_by(handle.txn) == []

    def test_client_abort_releases_locks(self, cluster):
        txn = cluster.transaction(origin=1)
        txn.read("x")
        txn.abort()
        for site in cluster.sites.values():
            assert site.locks.held_by(txn.txn) == []

    def test_lifecycle_enforced(self, cluster):
        txn = cluster.transaction(origin=1)
        txn.abort()
        with pytest.raises(ProtocolError, match="aborted"):
            txn.read("x")
        with pytest.raises(ProtocolError):
            txn.submit()


class TestSerializabilityEndToEnd:
    def test_sequential_history_is_1sr(self, cluster):
        for i in range(4):
            txn = cluster.transaction(origin=(i % 3) + 1)
            value = txn.read("x")
            txn.write("x", value + 1)
            txn.submit()
            cluster.run()
        history = cluster.committed_history()
        graph = ConflictGraph(history)
        assert graph.is_serializable()
        assert cluster.read(1, "x").value == 4

    def test_interleaved_disjoint_txns_are_1sr(self, cluster):
        a = cluster.transaction(origin=1)
        b = cluster.transaction(origin=2)
        a.write("x", a.read("x") + 1)
        b.write("y", b.read("y") + 1)
        a.submit()
        b.submit()
        cluster.run()
        assert ConflictGraph(cluster.committed_history()).is_serializable()

    def test_conflicting_concurrent_txns_one_aborts(self, cluster):
        """No-wait 2PL: the second writer cannot lock and dies."""
        a = cluster.transaction(origin=1)
        a.write("x", a.read("x") + 1)
        a.submit()
        cluster.run_until(1.5)  # a's X locks are now held at vote time
        b = cluster.transaction(origin=2)
        with pytest.raises(TransactionAborted):
            b.read("x")
        cluster.run()
        history = cluster.committed_history()
        assert len([h for h in history if h.writes]) == 1
        assert ConflictGraph(history).is_serializable()

    def test_cross_partition_writes_cannot_both_commit(self, catalog):
        """w > v/2: two partitions cannot both install writes of x —
        the majority side commits with a write quorum of reachable
        copies; the minority side cannot even assemble one."""
        cluster = Cluster(catalog, protocol="qtp1")
        cluster.network.set_partition([[1, 2], [3]])
        a = cluster.transaction(origin=1)
        a.write("x", 100)
        a.submit()
        cluster.run()
        b = cluster.transaction(origin=3)
        b.write("x", 200)
        with pytest.raises(QuorumUnreachableError):
            b.submit()
        history = [h for h in cluster.committed_history() if h.writes]
        assert len(history) == 1  # only the quorum side committed
        assert cluster.read(1, "x").value == 100
        # site 3's copy is stale; a healed read quorum masks it
        cluster.network.heal()
        assert cluster.read(3, "x").value == 100
