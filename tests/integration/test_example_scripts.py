"""Smoke tests: every example script runs end to end.

The examples are part of the public deliverable; these tests execute
each one in-process (stdout captured by pytest) so a regression in the
library surface breaks the build, not a user's first contact.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_script(path: str, argv: list[str] | None = None):
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExampleScripts:
    def test_quickstart(self):
        run_script(f"{EXAMPLES}/quickstart.py")

    def test_paper_examples(self):
        run_script(f"{EXAMPLES}/paper_examples.py")

    def test_bank_partition(self):
        run_script(f"{EXAMPLES}/bank_partition.py")

    def test_termination_walkthrough(self):
        run_script(f"{EXAMPLES}/termination_walkthrough.py")

    def test_wan_datacenters(self):
        run_script(f"{EXAMPLES}/wan_datacenters.py")

    def test_availability_study_small(self):
        run_script(f"{EXAMPLES}/availability_study.py", ["--runs", "8"])

    def test_elastic_workloads(self):
        run_script(f"{EXAMPLES}/elastic_workloads.py")

    def test_open_loop_service(self):
        run_script(f"{EXAMPLES}/open_loop_service.py")

    def test_rolling_upgrade(self):
        run_script(f"{EXAMPLES}/rolling_upgrade.py")

    def test_parallel_sweep(self, tmp_path, monkeypatch):
        # chdir so the example's ResultStore("results") lands in tmp
        import os

        script = os.path.abspath(f"{EXAMPLES}/parallel_sweep.py")
        monkeypatch.chdir(tmp_path)
        run_script(script)
        assert (tmp_path / "results" / "demo-modelcheck.json").exists()

    @pytest.mark.slow
    def test_regenerate_experiments_small(self):
        run_script(f"{EXAMPLES}/regenerate_experiments.py", ["--runs", "10"])

    @pytest.mark.slow
    def test_regenerate_experiments_parallel_small(self):
        run_script(
            f"{EXAMPLES}/regenerate_experiments.py",
            ["--runs", "10", "--workers", "2"],
        )
