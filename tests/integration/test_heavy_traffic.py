"""Integration tests of the E18 heavy-traffic workload (extension)."""

from repro.experiments.workload_study import heavy_traffic_study, run_heavy_workload


class TestRunHeavyWorkload:
    def test_tallies_are_complete(self):
        result = run_heavy_workload("qtp1", seed=3, n_txns=40)
        total = (
            result.committed
            + result.client_aborted
            + result.protocol_aborted
            + result.blocked
        )
        assert total == result.submitted
        assert result.submitted > 0

    def test_contention_is_real(self):
        """Poisson arrivals at this rate must actually overlap: some
        transactions lose locks or quorums, or the workload isn't heavy."""
        result = run_heavy_workload("qtp1", seed=0, n_txns=60)
        assert result.client_aborted + result.protocol_aborted > 0
        assert result.committed > 0

    def test_serializable_under_contention(self):
        for seed in range(3):
            assert run_heavy_workload("qtp2", seed=seed, n_txns=40).serializable

    def test_nothing_blocked_after_final_heal(self):
        for protocol in ("qtp1", "qtp2"):
            result = run_heavy_workload(protocol, seed=1, n_txns=40)
            assert result.blocked == 0

    def test_deterministic(self):
        a = run_heavy_workload("qtp1", seed=5, n_txns=30)
        b = run_heavy_workload("qtp1", seed=5, n_txns=30)
        assert a.txn_outcomes == b.txn_outcomes

    def test_multiple_episodes_scheduled(self):
        """With episodes=3 the run must survive three partition/heal
        cycles and still satisfy the correctness bar."""
        result = run_heavy_workload("qtp1", seed=2, n_txns=50, episodes=3)
        assert result.serializable
        assert result.blocked == 0


class TestHeavyTrafficStudy:
    def test_protocols_see_same_seeds(self):
        rows = heavy_traffic_study(("qtp1", "qtp2"), runs=2, n_txns=30)
        assert rows[0].submitted == rows[1].submitted

    def test_parallel_matches_serial(self):
        serial = heavy_traffic_study(("qtp1",), runs=2, n_txns=30, workers=1)
        parallel = heavy_traffic_study(("qtp1",), runs=2, n_txns=30, workers=2)
        assert serial == parallel

    def test_every_run_serializable(self):
        for row in heavy_traffic_study(runs=2, n_txns=30):
            assert row.serializable
