"""Integration tests for the E22–E25 WorkloadSpec scenario drivers."""

import pytest

from repro.experiments.workload_scenarios import (
    run_cross_region,
    run_elastic_join,
    run_read_mostly,
    run_skewed_contention,
)
from repro.experiments.workload_study import run_heavy_workload
from repro.workload.spec import WorkloadSpec


class TestSkewedContention:
    def test_zipf_opens_contention_uniform_cannot_reach(self):
        """The whole point of the regime: the same harness under Zipf
        popularity collides far more often than under uniform."""
        skewed = run_skewed_contention("qtp1", seed=0, n_txns=60, zipf_s=1.6)
        uniform = run_heavy_workload("qtp1", seed=0, n_txns=60, mean_spacing=1.2)
        assert skewed["client_aborted"] > 2 * uniform.client_aborted
        assert skewed["submitted"] == 60
        assert skewed["serializable"]

    def test_hot_item_draws_the_stream(self):
        out = run_skewed_contention("2pc", seed=1, n_txns=60, zipf_s=1.6)
        # among the transactions that made it past the no-wait client
        # (most hot-item ones abort right there), the rank-1 item still
        # draws far more than the uniform 1/n_items share
        protocol_txns = out["committed"] + out["protocol_aborted"] + out["blocked"]
        assert out["hot_txns"] > protocol_txns * 0.25


class TestReadMostly:
    def test_reads_ride_the_fast_path(self):
        out = run_read_mostly("qtp1", seed=0, n_txns=60, read_fraction=0.8)
        # ~80% of the stream is read-only; under contention a share of
        # those no-wait reads abort on conflicting update locks
        assert out["reads_committed"] > 20
        assert out["reads_committed"] > out["committed"]
        assert out["committed"] > 0  # the update tail still commits
        assert out["serializable"]

    def test_zero_read_fraction_degenerates_to_heavy_workload(self):
        spec = WorkloadSpec(n_txns=30, read_fraction=0.0, mean_spacing=1.0)
        via_spec = run_heavy_workload("qtp1", seed=3, workload=spec)
        direct = run_heavy_workload("qtp1", seed=3, n_txns=30, mean_spacing=1.0)
        assert via_spec.txn_outcomes == direct.txn_outcomes


class TestCrossRegion:
    def test_spanning_slice_originates_remotely(self):
        out = run_cross_region("qtp1", seed=0, n_txns=30, cross_region=1.0)
        assert out["cross_origin"] > 20  # nearly every op is cross-region
        assert out["submitted"] == 30

    def test_region_partition_refuses_remote_quorums(self):
        cut = run_cross_region("qtp1", seed=0, n_txns=30, cross_region=1.0)
        calm = run_cross_region(
            "qtp1", seed=0, n_txns=30, cross_region=1.0,
            partition_window=(1000.0, 1001.0),  # effectively never
        )
        assert cut["refused"] > calm["refused"]

    def test_home_traffic_still_commits(self):
        out = run_cross_region("qtp1", seed=2, n_txns=30, cross_region=0.3)
        assert out["committed"] > 0


class TestElasticJoin:
    def test_joins_apply_and_enlist_participants(self):
        out = run_elastic_join("qtp1", seed=0, n_txns=60, n_joins=3)
        assert out["joins_applied"] == 3
        assert out["joined_hosting"] == 3 * 2  # every joiner hosts both hot items
        assert out["participants_with_joined"] > 0
        assert out["serializable"]

    def test_consistent_across_protocols(self):
        for protocol in ("qtp1", "qtp2", "2pc"):
            out = run_elastic_join(protocol, seed=1, n_txns=40, n_joins=2)
            assert out["joins_applied"] == 2
            assert out["serializable"], protocol

    def test_deterministic_in_seed(self):
        a = run_elastic_join("qtp1", seed=5)
        b = run_elastic_join("qtp1", seed=5)
        assert a == b


@pytest.mark.slow
class TestScenarioDeepSweep:
    """Weekly deep run: every driver across many seeds and protocols —
    1SR must hold in every single run, and elastic joins must always
    land cleanly."""

    def test_serializable_across_seeds_and_protocols(self):
        for seed in range(8):
            for protocol in ("2pc", "qtp1", "qtp2"):
                skewed = run_skewed_contention(protocol, seed=seed, n_txns=40)
                assert skewed["serializable"], (protocol, seed)
                mixed = run_read_mostly(protocol, seed=seed, n_txns=40)
                assert mixed["serializable"], (protocol, seed)
                elastic = run_elastic_join(protocol, seed=seed, n_txns=40)
                assert elastic["serializable"], (protocol, seed)
                assert elastic["joins_applied"] == 3, (protocol, seed)

    def test_cross_region_never_pins_locks_forever(self):
        """A stranded cross-region coordinator may leave a transaction
        undecided (no participant ever durably joined), but after the
        final heal nothing may stay blocked *holding locks*."""
        for seed in range(8):
            out = run_cross_region("qtp1", seed=seed, n_txns=30)
            assert out["blocked_holding_locks"] == 0, seed
