"""Integration tests: blocking behaviour and termination protocols.

These tests drive the classic failure windows:

* coordinator crash between votes and decision (2PC's blocking window);
* coordinator crash after the prepare round (3PC/QTP recovery window);
* partitions during each window.
"""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan, PROTOCOL_NAMES


@pytest.fixture
def catalog():
    """x at sites 1-3, r=2, w=2 (v=3; constraints hold)."""
    return CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()


class TestTwoPCBlocking:
    def test_coordinator_crash_in_window_blocks(self, catalog):
        """Crash after yes votes are cast but before the decision: every
        surviving participant must block (the paper's §1 motivation)."""
        cluster = Cluster(catalog, protocol="2pc")
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "blocked"
        assert cluster.live_undecided(txn.txn) == [2, 3]
        # locks are still held -> x is unavailable in the (whole) component
        assert not cluster.availability().row({1, 2, 3}, "x").readable

    def test_blocked_until_coordinator_recovers(self, catalog):
        cluster = Cluster(catalog, protocol="2pc")
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 1).recover(50.0, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        # the recovered coordinator site is polled (state W after its
        # logged yes vote... it never voted: crash at 1.5 is before its
        # self vote-req reply? site 1 votes at t=0 via self-send, so W)
        assert report.atomic
        assert not cluster.live_undecided(txn.txn)

    def test_termination_aborts_if_someone_never_voted(self, catalog):
        """A reachable participant in Q lets 2PC terminate with abort."""
        cluster = Cluster(catalog, protocol="2pc")
        # site 3 never receives the vote-req
        cluster.network.add_filter(
            lambda m: m.mtype == "2pc.vote-req" and m.dst == 3
        )
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "abort"
        assert 2 in report.aborted_sites


@pytest.mark.parametrize("protocol", ["3pc", "skq", "qtp1", "qtp2"])
class TestNonblockingUnderSiteFailure:
    def test_coordinator_crash_before_prepare_aborts(self, catalog, protocol):
        """Crash in the vote window: survivors hold only W states; the
        three-phase families all reach abort (no committable state)."""
        cluster = Cluster(catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert not cluster.live_undecided(txn.txn)
        assert report.outcome == "abort"

    def test_coordinator_crash_after_prepare_commits(self, catalog, protocol):
        """Crash after every participant entered PC: termination commits."""
        cluster = Cluster(catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(3.5, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert report.outcome == "commit"
        assert set(report.committed_sites) >= {2, 3}

    def test_recovered_coordinator_learns_outcome(self, catalog, protocol):
        cluster = Cluster(catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(3.5, 1).recover(60.0, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert set(report.committed_sites) == {1, 2, 3}
        assert cluster.sites[1].store.read("x").value == 5


class TestMinorityPartitionBlocks:
    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2", "skq"])
    def test_isolated_prepared_site_blocks(self, catalog, protocol):
        """One PC site alone cannot commit (no w quorum) nor abort (its
        own vote is in PC), so it must block — and stay safe."""
        cluster = Cluster(catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 5})
        plan = FailurePlan().crash(3.5, 1).partition(3.5, [2], [3])
        cluster.arm_failures(plan)
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic  # nobody decided anything contradictory

    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2", "skq"])
    def test_heal_unblocks(self, catalog, protocol):
        cluster = Cluster(catalog, protocol=protocol)
        txn = cluster.update(origin=1, writes={"x": 5})
        plan = FailurePlan().crash(3.5, 1).partition(3.5, [2], [3]).heal(40.0)
        cluster.arm_failures(plan)
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert report.outcome == "commit"  # both were in PC
        assert not cluster.live_undecided(txn.txn)


class TestQuorumExclusivity:
    def test_commit_quorum_blocks_remote_abort(self):
        """Once CP1 secures w(x) PC-ACK votes, no other partition can
        ever abort — Lemma 1 case 1 in vivo."""
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4, 5], r=2, w=4).build()
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 9})
        # partition right after the prepare round completes at t=4:
        # sites 1-4 keep w votes; site 5 is cut off in W or PC
        cluster.network.add_filter(
            lambda m: m.mtype == "qtp1.prepare" and m.dst == 5
        )
        cluster.arm_failures(FailurePlan().partition(4.5, [1, 2, 3, 4], [5]))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert 5 not in report.aborted_sites
        assert set(report.committed_sites) >= {1, 2, 3, 4}

    def test_abort_quorum_blocks_remote_commit(self):
        """Symmetric: once r(x) votes sit in PA, a commit quorum is
        impossible anywhere — Lemma 2 case 2 in vivo."""
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
        cluster = Cluster(catalog, protocol="qtp1")
        # nobody gets the prepare: coordinator crashes first
        cluster.network.add_filter(lambda m: m.mtype == "qtp1.prepare")
        txn = cluster.update(origin=1, writes={"x": 9})
        plan = (
            FailurePlan()
            .crash(2.5, 1)
            .partition(2.5, [2, 3], [4])
            .heal(60.0)
            .recover(80.0, 1)
        )
        cluster.arm_failures(plan)
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert report.outcome == "abort"
        assert set(report.aborted_sites) == {1, 2, 3, 4}
