"""Integration tests specific to the Fig. 9 quorum commit protocols.

The distinguishing behaviour: the coordinator sends COMMIT before all
PC-ACKs have arrived — after ``w(x)`` votes for every item (CP1) or
``r(x)`` votes for some item (CP2).
"""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan


def catalog_5(r=2, w=4):
    return CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4, 5], r=r, w=w).build()


class TestEarlyCommit:
    def test_cp1_commits_after_w_votes(self):
        """With site 5's ack severed, CP1 still commits: sites 1-4 hold
        w(x)=4 votes."""
        cluster = Cluster(catalog_5(), protocol="qtp1")
        cluster.network.add_filter(
            lambda m: m.mtype == "qtp1.ack" and m.src == 5
        )
        txn = cluster.update(origin=1, writes={"x": 9})
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "commit"
        early = cluster.tracer.where(category="coord-early-commit", txn=txn.txn)
        assert early
        assert 5 not in early[0].detail["ackers"]

    def test_cp1_does_not_commit_below_w_votes(self):
        """Two severed acks leave 3 < w(x)=4 votes: CP1 must not commit
        from the acks alone; termination decides instead."""
        cluster = Cluster(catalog_5(), protocol="qtp1")
        cluster.network.add_filter(
            lambda m: m.mtype == "qtp1.ack" and m.src in (4, 5)
        )
        txn = cluster.update(origin=1, writes={"x": 9})
        cluster.run()
        assert not cluster.tracer.where(category="coord-early-commit", txn=txn.txn)
        # the transaction still terminates consistently via termination
        assert cluster.outcome(txn.txn).atomic

    def test_cp2_commits_after_r_votes_of_some_item(self):
        """CP2 needs only r(x)=2 PC-ACK votes: sever three acks and it
        still commits early."""
        cluster = Cluster(catalog_5(), protocol="qtp2")
        cluster.network.add_filter(
            lambda m: m.mtype == "qtp2.ack" and m.src in (3, 4, 5)
        )
        txn = cluster.update(origin=1, writes={"x": 9})
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "commit"
        early = cluster.tracer.where(category="coord-early-commit", txn=txn.txn)
        assert early
        assert len(early[0].detail["ackers"]) == 2

    def test_cp2_multi_item_needs_only_one_item_covered(self):
        """"r(x) votes for *some* data item x in the write set"."""
        catalog = (
            CatalogBuilder()
            .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
            .replicated_item("y", sites=[5, 6, 7, 8], r=2, w=3)
            .build()
        )
        cluster = Cluster(catalog, protocol="qtp2")
        # all y-hosting acks are severed; x acks alone reach r(x)
        cluster.network.add_filter(
            lambda m: m.mtype == "qtp2.ack" and m.src in (5, 6, 7, 8)
        )
        txn = cluster.update(origin=1, writes={"x": 1, "y": 2})
        cluster.run()
        assert cluster.outcome(txn.txn).outcome == "commit"
        assert cluster.tracer.where(category="coord-early-commit", txn=txn.txn)

    def test_cp1_multi_item_needs_every_item_covered(self):
        catalog = (
            CatalogBuilder()
            .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
            .replicated_item("y", sites=[5, 6, 7, 8], r=2, w=3)
            .build()
        )
        cluster = Cluster(catalog, protocol="qtp1")
        cluster.network.add_filter(
            lambda m: m.mtype == "qtp1.ack" and m.src in (5, 6, 7, 8)
        )
        txn = cluster.update(origin=1, writes={"x": 1, "y": 2})
        cluster.run()
        assert not cluster.tracer.where(category="coord-early-commit", txn=txn.txn)
        assert cluster.outcome(txn.txn).atomic


class TestEarlyCommitSafety:
    def test_commit_then_total_partition_stays_safe(self):
        """CP1 commits early; the unacked site partitions away in W; its
        partition must block or commit — never abort (Lemma 1)."""
        cluster = Cluster(catalog_5(), protocol="qtp1")
        cluster.network.add_filter(
            lambda m: m.mtype in ("qtp1.ack", "qtp1.prepare") and 5 in (m.src, m.dst)
        )
        txn = cluster.update(origin=1, writes={"x": 9})
        cluster.arm_failures(FailurePlan().partition(4.2, [1, 2, 3, 4], [5]).heal(50.0))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert report.outcome == "commit"
        assert 5 in report.committed_sites  # learned after heal

    def test_ack_timeout_falls_back_to_termination(self):
        """No early quorum and the window closes: the coordinator
        re-enters via the termination protocol, not a unilateral call."""
        cluster = Cluster(catalog_5(), protocol="qtp1")
        cluster.network.add_filter(lambda m: m.mtype == "qtp1.ack" and m.src != 1)
        txn = cluster.update(origin=1, writes={"x": 9})
        cluster.run()
        assert cluster.tracer.where(category="coord-ack-timeout", txn=txn.txn)
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert not cluster.live_undecided(txn.txn)
