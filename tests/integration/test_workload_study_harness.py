"""Tests of the live-workload study harness (E17)."""

import pytest

from repro.experiments.workload_study import run_workload, workload_study


class TestRunWorkload:
    def test_tallies_are_complete(self):
        result = run_workload("qtp1", n_txns=12, seed=3)
        total = (
            result.committed
            + result.client_aborted
            + result.protocol_aborted
            + result.blocked
        )
        assert total == result.submitted
        assert result.submitted > 0

    def test_every_run_serializable(self):
        for seed in range(4):
            assert run_workload("qtp2", n_txns=12, seed=seed).serializable

    def test_deterministic(self):
        a = run_workload("qtp1", n_txns=12, seed=5)
        b = run_workload("qtp1", n_txns=12, seed=5)
        assert a.txn_outcomes == b.txn_outcomes

    def test_partition_actually_causes_friction(self):
        """With the partition window covering the whole run, some
        transactions must fail to commit (otherwise the episode tested
        nothing)."""
        result = run_workload("qtp1", n_txns=16, seed=1, partition_window=(2.0, 200.0))
        assert result.committed < result.submitted

    def test_outcomes_vocabulary(self):
        result = run_workload("2pc", n_txns=10, seed=2)
        assert set(result.txn_outcomes.values()) <= {
            "commit",
            "abort",
            "blocked",
            "client-aborted",
        }


class TestStudy:
    def test_aggregation(self):
        rows = workload_study(("qtp1",), runs=2, n_txns=8)
        assert rows[0].submitted > 0
        assert rows[0].serializable

    def test_protocols_see_same_seeds(self):
        rows = workload_study(("qtp1", "qtp2"), runs=2, n_txns=8)
        assert rows[0].submitted == rows[1].submitted
