"""E27/E28 integration: rolling upgrades, flash crowds, gray failures.

The drivers are deterministic counter machines like every other
experiment; these tests pin the semantics the bench baselines cannot
express — waves complete, the controller moves, the gray episode shows
up in the right counters and *only* the right counters.
"""

import pytest

from repro.engine.resilience import RetryPolicy
from repro.experiments.resilience_study import (
    gray_failure_plan,
    rolling_upgrade_plan,
    run_flash_crowd,
    run_gray_failure,
    run_rolling_upgrade,
)
from repro.sim.rng import RngRegistry
from repro.traffic import AdaptiveWindow
from repro.workload.generators import random_catalog


class TestRollingUpgrade:
    def test_every_wave_completes_and_restores(self):
        result = run_rolling_upgrade("qtp2", seed=3, n_txns=50, waves=3)
        assert result["leaves_applied"] == 3
        assert result["joins_applied"] == 3
        assert result["sites_restored"] == 3
        assert result["serializable"] is True
        assert result["committed"] > 0

    def test_retries_absorb_upgrade_aborts(self):
        result = run_rolling_upgrade("qtp2", seed=3, n_txns=50, waves=3)
        assert result["retry_attempts"] > 0
        # re-submissions inflate the submitted count past the op count
        assert result["submitted"] >= 50

    def test_deterministic(self):
        first = run_rolling_upgrade("qtp1", seed=7, n_txns=40, waves=2)
        second = run_rolling_upgrade("qtp1", seed=7, n_txns=40, waves=2)
        assert first == second

    def test_plan_needs_a_surviving_anchor(self):
        rng = RngRegistry(0).stream("anchor")
        catalog = random_catalog(rng, n_sites=5, n_items=4, replication=3)
        sites = sorted(catalog.all_sites())
        with pytest.raises(ValueError, match="anchor"):
            rolling_upgrade_plan(catalog, sites, len(sites), 10.0, 10.0, 5.0)


class TestFlashCrowd:
    def test_controller_reacts_to_the_surge(self):
        result = run_flash_crowd("qtp2", seed=3)
        # the default target sits below the contended tail: the surge
        # drives the controller down the shedding arm
        assert result["window_narrowed"] >= 1
        assert result["window_final"] < 4
        assert result["shed_backpressure"] > 0

    def test_surge_offers_more_than_quiet_baseline(self):
        crowd = run_flash_crowd("qtp2", seed=3)
        quiet = run_flash_crowd("qtp2", seed=3, surge_rate=1.0)
        assert crowd["offered"] > quiet["offered"]

    def test_custom_controller_passes_through(self):
        result = run_flash_crowd(
            "qtp2", seed=3,
            adapt=AdaptiveWindow(target_p99=100.0, low=1, high=12, interval=10.0),
        )
        assert result["window_narrowed"] == 0

    def test_deterministic(self):
        assert run_flash_crowd("2pc", seed=5) == run_flash_crowd("2pc", seed=5)


class TestGrayFailure:
    def test_episode_fattens_the_tail_without_killing_anyone(self):
        quiet = run_gray_failure("qtp2", seed=3, factor=1.0)
        gray = run_gray_failure("qtp2", seed=3, factor=12.0)
        # nothing is ever down: unreachable-shedding stays at the quiet
        # run's value, the damage shows up as timed-out decisions
        assert gray["shed_unreachable"] == quiet["shed_unreachable"]
        assert gray["protocol_aborted"] > quiet["protocol_aborted"]
        assert gray["committed"] < quiet["committed"]

    def test_explicit_plan_overrides_the_default_episode(self):
        plan = gray_failure_plan(10.0, 20.0, slow_site=None, factor=2.0,
                                 flap_src=None, flap_dst=None)
        # a plan naming nonexistent sites must fail loudly, not silently
        with pytest.raises(ValueError, match="unknown site"):
            run_gray_failure("qtp2", seed=3, failures=plan)

    def test_deterministic(self):
        assert run_gray_failure("qtp1", seed=9) == run_gray_failure("qtp1", seed=9)


@pytest.mark.slow
class TestDeepRollingUpgradeSweep:
    """Waves x protocols x seeds, each run twice: the upgrade driver is
    a fixed point everywhere, every wave completes, and churn never
    costs one-copy serializability.  Minutes, not seconds — runs in the
    weekly slow suite."""

    def test_waves_by_protocol_deterministic_across_seeds(self):
        for protocol in ("2pc", "qtp1", "qtp2"):
            for waves in (1, 2, 3):
                for seed in range(3):
                    first = run_rolling_upgrade(
                        protocol, seed=seed, n_txns=60, waves=waves
                    )
                    second = run_rolling_upgrade(
                        protocol, seed=seed, n_txns=60, waves=waves
                    )
                    assert first == second, (
                        f"diverged at {protocol} waves={waves} seed={seed}"
                    )
                    assert first["leaves_applied"] == waves
                    assert first["joins_applied"] == waves
                    assert first["sites_restored"] == waves
                    assert first["serializable"] is True
