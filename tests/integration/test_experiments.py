"""Tests of the experiment harness itself (flows, sweeps, ablations)."""

import math

import pytest

from repro.experiments.ablations import pairing_ablation, timeout_ablation
from repro.experiments.flows import format_flow, latency_sweep, measure_commit
from repro.experiments.sweeps import availability_sweep


class TestMeasureCommit:
    def test_metrics_shape(self):
        metrics = measure_commit("qtp1", n_sites=4)
        assert metrics.outcome == "commit"
        assert metrics.total_messages > 0
        assert not math.isnan(metrics.decision_time)
        assert metrics.decision_time <= metrics.quiescence_time

    def test_jitter_is_seed_deterministic(self):
        a = measure_commit("qtp2", n_sites=5, seed=3, jitter=True)
        b = measure_commit("qtp2", n_sites=5, seed=3, jitter=True)
        assert a.decision_time == b.decision_time

    def test_format_flow_renders(self):
        text = format_flow(measure_commit("2pc", 3))
        assert "2pc.vote-req" in text


class TestLatencySweep:
    def test_rows_cover_protocols(self):
        rows = latency_sweep(("3pc", "qtp2"), n_sites=5, runs=10)
        assert [r.protocol for r in rows] == ["3pc", "qtp2"]
        for row in rows:
            assert row.runs == 10
            assert 0 < row.p50 <= row.p95

    def test_ordering_claim_small(self):
        rows = latency_sweep(n_sites=5, runs=20, r=2, w=4)
        by = {r.protocol: r.mean for r in rows}
        assert by["qtp2"] <= by["qtp1"] <= by["3pc"] + 1e-9


class TestAvailabilitySweep:
    def test_fractions_bounded(self):
        rows = availability_sweep(("skq", "qtp1"), runs=8)
        for row in rows:
            assert 0.0 <= row.readable_fraction <= 1.0
            assert 0.0 <= row.writable_fraction <= 1.0
            assert row.violation_runs == 0

    def test_same_seed_same_rows(self):
        a = availability_sweep(("qtp1",), runs=6, base_seed=5)[0]
        b = availability_sweep(("qtp1",), runs=6, base_seed=5)[0]
        assert a.readable_fraction == b.readable_fraction
        assert a.blocked_runs == b.blocked_runs


class TestAblations:
    def test_pairing_matrix(self):
        results = {(r.commit_protocol, r.termination_rule): r for r in pairing_ablation()}
        assert results[("qtp2", "qtp-termination-1")].atomic is False
        safe = [v for k, v in results.items() if k != ("qtp2", "qtp-termination-1")]
        assert all(r.atomic for r in safe)

    @pytest.mark.parametrize("scale", [1.0, 0.25])
    def test_timeouts_never_break_safety(self, scale):
        rows = timeout_ablation(scales=(scale,), runs=8)
        assert rows[0].violations == 0
