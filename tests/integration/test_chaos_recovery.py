"""Integration tests for sweep-engine fault tolerance under the chaos
harness: worker-process death, sink I/O faults with resume, and
quarantine manifests — each pinned against the byte-identity invariant
(every recovery path converges to the uninterrupted artifact)."""

import random

import pytest

from repro.engine import (
    ChaosPlan,
    FailureManifest,
    JsonlSink,
    RetryPolicy,
    SweepSpec,
    WorkerCrashError,
    run_sweep,
)
from repro.engine.resilience import InjectedSinkError


def cell_task(seed: int, width: int = 3) -> dict:
    rng = random.Random(seed)
    return {"votes": [rng.randrange(100) for _ in range(width)], "seed": seed}


def _spec(task, runs: int = 12) -> SweepSpec:
    return SweepSpec(
        name="chaos-study",
        task=task,
        grid={"width": [2, 4]},
        runs=runs,
        seeding="offset",
    )


def _reference_bytes(plan_dir, path, runs: int = 12, **sweep_kwargs) -> bytes:
    """The uninterrupted artifact for a chaos-wrapped spec: same wrapped
    task (same artifact header), every fault pre-claimed so none fire."""
    plan = ChaosPlan(plan_dir)
    run_sweep(_spec(plan.wrap(cell_task), runs), sink=JsonlSink(path), **sweep_kwargs)
    return path.read_bytes()


class TestWorkerCrashRecovery:
    def test_killed_worker_is_respawned_and_rows_converge(self, tmp_path):
        reference = _reference_bytes(tmp_path / "ref-state", tmp_path / "ref.jsonl.gz")

        plan = ChaosPlan(tmp_path / "state").kill_worker(5)
        path = tmp_path / "rows.jsonl.gz"
        outcome = run_sweep(
            _spec(plan.wrap(cell_task)),
            workers=3,
            sink=JsonlSink(path),
            on_error="retry",
        )
        assert outcome.resilience["respawns"] >= 1
        assert outcome.resilience["completed"] == 24
        assert path.read_bytes() == reference

    def test_multiple_kills_within_budget(self, tmp_path):
        reference = _reference_bytes(tmp_path / "ref-state", tmp_path / "ref.jsonl.gz")

        plan = ChaosPlan(tmp_path / "state").kill_worker(2).kill_worker(17)
        path = tmp_path / "rows.jsonl.gz"
        outcome = run_sweep(
            _spec(plan.wrap(cell_task)),
            workers=2,
            sink=JsonlSink(path),
            on_error=RetryPolicy(max_attempts=2, backoff=0.0, respawn_limit=4),
        )
        assert 1 <= outcome.resilience["respawns"] <= 4
        assert path.read_bytes() == reference

    def test_respawn_budget_exhaustion_raises_worker_crash_error(self, tmp_path):
        plan = ChaosPlan(tmp_path / "state")
        for index in range(8):
            plan.kill_worker(index)
        with pytest.raises(WorkerCrashError, match="respawn"):
            run_sweep(
                _spec(plan.wrap(cell_task)),
                workers=2,
                on_error=RetryPolicy(max_attempts=1, respawn_limit=0),
            )


class TestSinkFaultResume:
    def test_sink_fault_then_resume_converges_to_reference(self, tmp_path):
        reference = _reference_bytes(tmp_path / "ref-state", tmp_path / "ref.jsonl.gz")

        path = tmp_path / "rows.jsonl.gz"
        crash_plan = ChaosPlan(tmp_path / "state").fail_sink(7)
        spec = _spec(crash_plan.wrap(cell_task))
        with pytest.raises(InjectedSinkError):
            run_sweep(spec, sink=crash_plan.wrap_sink(JsonlSink(path)), on_error="retry")
        # the interrupted artifact is detectably partial...
        assert path.read_bytes() != reference
        # ...and one resumed run rewrites it to the uninterrupted bytes
        outcome = run_sweep(spec, resume_from=path, on_error="retry")
        assert outcome.resilience["resumed"] == 7
        assert outcome.resilience["completed"] == 24
        assert path.read_bytes() == reference

    def test_resume_after_worker_kill_composes(self, tmp_path):
        reference = _reference_bytes(tmp_path / "ref-state", tmp_path / "ref.jsonl.gz")

        path = tmp_path / "rows.jsonl.gz"
        plan = ChaosPlan(tmp_path / "state").fail_sink(3).kill_worker(9)
        spec = _spec(plan.wrap(cell_task))
        with pytest.raises(InjectedSinkError):
            run_sweep(
                spec,
                workers=2,
                sink=plan.wrap_sink(JsonlSink(path)),
                on_error="retry",
            )
        outcome = run_sweep(
            spec,
            workers=2,
            sink=plan.wrap_sink(JsonlSink(path)),
            resume_from=path,
            on_error="retry",
        )
        assert outcome.resilience["resumed"] >= 1
        assert path.read_bytes() == reference

    def test_resume_from_nonexistent_path_is_a_plain_run(self, tmp_path):
        reference = _reference_bytes(tmp_path / "ref-state", tmp_path / "ref.jsonl.gz")
        path = tmp_path / "fresh.jsonl.gz"
        plan = ChaosPlan(tmp_path / "state")
        outcome = run_sweep(_spec(plan.wrap(cell_task)), resume_from=path)
        assert outcome.resilience["resumed"] == 0
        assert path.read_bytes() == reference


class TestQuarantineManifest:
    def test_poison_cells_survive_a_manifest_roundtrip(self, tmp_path):
        plan = ChaosPlan(tmp_path / "state").fail_task(4, attempts=5).fail_task(11, attempts=5)
        outcome = run_sweep(
            _spec(plan.wrap(cell_task)),
            workers=2,
            on_error=RetryPolicy(max_attempts=2, backoff=0.0, quarantine=True),
        )
        assert outcome.resilience["quarantined"] == [4, 11]
        manifest = FailureManifest(sweep=outcome.name, records=outcome.failures)
        loaded = FailureManifest.load(manifest.save(tmp_path / "failures.json"))
        assert loaded.indices() == [4, 11]
        assert all(r.error == "InjectedFault" for r in loaded.records)
        assert all(r.attempts == 2 for r in loaded.records)

    def test_quarantined_artifact_resumes_the_gaps_too(self, tmp_path):
        # quarantined cells heal after their scheduled fault count: a
        # resume re-executes only the gap indices and the artifact
        # converges to the fault-free reference
        reference = _reference_bytes(tmp_path / "ref-state", tmp_path / "ref.jsonl.gz")

        path = tmp_path / "rows.jsonl.gz"
        plan = ChaosPlan(tmp_path / "state").fail_task(6, attempts=1).fail_sink(10)
        spec = _spec(plan.wrap(cell_task))
        with pytest.raises(InjectedSinkError):
            run_sweep(
                spec,
                sink=plan.wrap_sink(JsonlSink(path)),
                on_error=RetryPolicy(max_attempts=1, quarantine=True),
            )
        outcome = run_sweep(spec, resume_from=path, on_error="retry")
        assert outcome.resilience["quarantined"] == []
        assert path.read_bytes() == reference
