"""Tests of the canned paper scenarios themselves."""

import pytest

from repro.workload.scenarios import (
    EXAMPLE1_GROUPS,
    FAILURE_TIME,
    example1_catalog,
    example3_catalog,
    run_example1_scenario,
    run_example3_scenario,
)


class TestCatalogs:
    def test_example1_layout(self):
        catalog = example1_catalog()
        assert catalog.sites_of("x") == [1, 2, 3, 4]
        assert catalog.sites_of("y") == [5, 6, 7, 8]
        assert (catalog.r("x"), catalog.w("x")) == (2, 3)
        assert (catalog.r("y"), catalog.w("y")) == (2, 3)

    def test_example3_layout(self):
        catalog = example3_catalog()
        assert catalog.sites_of("x") == [2, 3, 4, 5]
        assert catalog.sites_of("y") == [2, 3, 4, 5]


class TestExample1Scenario:
    def test_snapshot_state_is_fig3(self):
        """At the failure instant, site 5 is in PC and every other
        active participant is in W — exactly Fig. 3."""
        result = run_example1_scenario("qtp1", run_to=FAILURE_TIME)
        states = result.states()
        assert states[5] == "PC"
        for site in (2, 3, 4, 6, 7, 8):
            assert states[site] == "W"

    def test_partition_groups_applied(self):
        result = run_example1_scenario("skq")
        components = result.cluster.network.partition.components
        expected = {frozenset(g) for g in EXAMPLE1_GROUPS}
        assert {frozenset(c) for c in components} == expected

    def test_coordinator_is_down(self):
        result = run_example1_scenario("skq")
        assert not result.cluster.sites[1].alive

    @pytest.mark.parametrize("protocol", ["2pc", "3pc", "skq", "qtp1", "qtp2"])
    def test_runs_to_quiescence_for_all_protocols(self, protocol):
        result = run_example1_scenario(protocol)
        assert result.cluster.scheduler.pending == 0

    def test_qtp2_blocks_everywhere_here(self):
        """Fig. 8's abort threshold (w of every item) is out of reach in
        every Fig. 3 partition, so TP2 blocks — the documented trade-off
        against TP1."""
        result = run_example1_scenario("qtp2")
        assert result.outcome == "blocked"


class TestExample3Scenario:
    def test_two_coordinators_polled(self):
        result = run_example3_scenario(enforce_ignore_rules=True)
        coordinators = {
            r.site
            for r in result.cluster.tracer.where(
                category="term-phase1", txn=result.txn.txn
            )
        }
        assert {2, 5} <= coordinators

    def test_broken_run_shows_conflicting_commands(self):
        result = run_example3_scenario(enforce_ignore_rules=False)
        assert result.report.conflicts + (not result.report.atomic) >= 1

    def test_seed_determinism(self):
        a = run_example3_scenario(True, seed=1)
        b = run_example3_scenario(True, seed=1)
        assert a.states() == b.states()
        assert a.outcome == b.outcome
