"""Integration tests of the E21 WAN partition-storm scenario (32+ sites)."""

import pytest

from repro.experiments.sweeps import wan_partition_storm, wan_storm_run
from repro.workload.generators import region_storm_plan, wan_catalog, wan_regions
from repro.workload.scenarios import run_wan_storm
from repro.sim.rng import RngRegistry


class TestWanGenerators:
    def test_regions_tile_the_site_space(self):
        regions = wan_regions(4, 8)
        flat = [s for r in regions for s in r]
        assert flat == list(range(1, 33))

    def test_catalog_replicates_across_distinct_regions(self):
        rng = RngRegistry(1).stream("t")
        catalog = wan_catalog(rng, n_regions=4, sites_per_region=8, n_items=6)
        regions = wan_regions(4, 8)

        def region_of(site):
            return next(i for i, r in enumerate(regions) if site in r)

        for item in catalog.item_names:
            copies = catalog.sites_of(item)
            assert len({region_of(s) for s in copies}) == len(copies) == 3

    def test_over_replication_rejected(self):
        rng = RngRegistry(0).stream("t")
        with pytest.raises(ValueError, match="region_replication"):
            wan_catalog(rng, n_regions=2, region_replication=3)

    def test_storm_plan_waves_partition_every_site_exactly_once(self):
        rng = RngRegistry(3).stream("t")
        regions = wan_regions(4, 8)
        plan = region_storm_plan(rng, regions, waves=5)
        partitions = [a for a in plan.actions if hasattr(a, "groups")]
        assert len(partitions) == 5
        for action in partitions:
            flat = sorted(s for g in action.groups for s in g)
            assert flat == list(range(1, 33))

    def test_storm_plan_heal_flag(self):
        rng = RngRegistry(3).stream("t")
        regions = wan_regions(2, 4)
        healed = region_storm_plan(rng, regions, waves=2, heal=True)
        rng = RngRegistry(3).stream("t")
        unhealed = region_storm_plan(rng, regions, waves=2, heal=False)
        assert len(healed.actions) == len(unhealed.actions) + 1


class TestWanStormScenario:
    def test_installation_scale(self):
        result = run_wan_storm("qtp1", seed=0)
        assert len(result.cluster.sites) == 32

    def test_deterministic(self):
        a = run_wan_storm("qtp1", seed=5)
        b = run_wan_storm("qtp1", seed=5)
        assert a.outcome == b.outcome
        assert a.cluster.scheduler.events_run == b.cluster.scheduler.events_run

    def test_unhealed_storm_leaves_partial_availability(self):
        """Ending partitioned, some region must have lost quorum access
        to something — full availability would mean the storm was inert."""
        sample = [wan_storm_run(seed, "qtp1") for seed in range(4)]
        assert any(readable < 1.0 for readable, *_ in sample)

    @pytest.mark.parametrize("protocol", ["qtp1", "qtp2"])
    def test_healed_storm_terminates_consistently(self, protocol):
        for seed in range(3):
            result = run_wan_storm(protocol, seed=seed, heal=True)
            assert result.report.atomic
            assert not result.cluster.live_undecided(result.txn.txn)

    def test_safety_at_scale(self):
        """Theorem 1 at 32 sites: no atomicity violation, healed or not."""
        for seed in range(3):
            for heal in (False, True):
                assert run_wan_storm("qtp1", seed=seed, heal=heal).report.atomic


class TestWanSweep:
    def test_rows_cover_protocols_and_aggregate(self):
        rows = wan_partition_storm(("qtp1", "qtp2"), runs=3)
        assert [r.protocol for r in rows] == ["qtp1", "qtp2"]
        for row in rows:
            assert row.runs == 3
            assert 0.0 <= row.readable_fraction <= 1.0
            assert row.violation_runs == 0

    def test_parallel_matches_serial(self):
        serial = wan_partition_storm(("qtp1",), runs=4, workers=1)
        parallel = wan_partition_storm(("qtp1",), runs=4, workers=3)
        assert serial == parallel
